//! Vendored offline shim for the `criterion` API subset the bench crate
//! uses: [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkId`]-keyed inputs, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark body runs a short calibration pass to
//! pick an iteration count (enough work to dwarf timer resolution), then a
//! timed pass, and prints the mean wall-clock ns/iter. There are no
//! statistical outlier passes, HTML reports, or comparison baselines —
//! downstream gates in this workspace parse printed means with their own
//! tooling, which is all the upstream dependency was used for here.

#![deny(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimiser from deleting a
/// benchmarked computation or its inputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs a closure repeatedly and records the mean time per iteration.
pub struct Bencher {
    iters_cap: u64,
    /// Mean ns/iter of the last [`Bencher::iter`] call, read by the
    /// harness after the benchmark body returns.
    last_mean_ns: Option<f64>,
}

impl Bencher {
    /// Measure `f`: calibrate an iteration count, then time a full batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: grow the batch until it takes >= ~10 ms, so timer
        // resolution is a rounding error on the mean.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            if start.elapsed() >= Duration::from_millis(10) || n >= self.iters_cap {
                break;
            }
            n = (n * 4).min(self.iters_cap);
        }
        // Timed pass.
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.last_mean_ns = Some(start.elapsed().as_nanos() as f64 / n as f64);
    }
}

/// Benchmark identifier: a function name plus an optional parameter, shown
/// as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Id `name/parameter`.
    pub fn new<P: Display>(name: impl Into<String>, parameter: P) -> BenchmarkId {
        BenchmarkId { text: format!("{}/{}", name.into(), parameter) }
    }

    /// Id consisting of the parameter alone (the group supplies the name).
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { text: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The benchmark manager handed to each `criterion_group!` target.
pub struct Criterion {
    iters_cap: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters_cap: 10_000_000 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.iters_cap, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A set of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's calibration ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.criterion.iters_cap, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.iters_cap, |b| f(b, input));
        self
    }

    /// Finish the group (upstream flushes reports here; the shim prints
    /// per-benchmark, so this is a no-op kept for API shape).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters_cap: u64, mut f: F) {
    // Warm-up pass keeps one-time setup (allocator growth, page faults,
    // lazy statics) out of the measurement.
    let mut warm = Bencher { iters_cap: iters_cap.min(1024), last_mean_ns: None };
    f(&mut warm);

    let mut b = Bencher { iters_cap, last_mean_ns: None };
    f(&mut b);
    match b.last_mean_ns {
        Some(ns) => println!("{name:<50} time: {ns:>12.1} ns/iter"),
        None => println!("{name:<50} time: (body never called Bencher::iter)"),
    }
}

/// Declare a benchmark group: a function invoking each listed target with
/// a default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_positive_mean() {
        let mut b = Bencher { iters_cap: 1 << 20, last_mean_ns: None };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        let ns = b.last_mean_ns.expect("iter records a mean");
        assert!(ns > 0.0 && ns.is_finite());
    }

    #[test]
    fn group_api_shape_works_end_to_end() {
        let mut c = Criterion::default();
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        g.finish();
    }
}
