//! Vendored offline shim for the `rand 0.8` API subset this workspace
//! uses: a deterministic seeded generator (`rngs::StdRng`), uniform range
//! sampling (`Rng::gen_range`), Bernoulli draws (`Rng::gen_bool`), and
//! Fisher–Yates shuffling (`seq::SliceRandom::shuffle`).
//!
//! The generator is SplitMix64 — deterministic and well distributed, but
//! **not** the upstream ChaCha12 stream: seeds reproduce results against
//! this shim, not against crates.io `rand`.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range. Panics on an empty range.
    fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + ((self.end - self.start) as f64 * unit_f64(rng)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + ((hi - lo) as f64 * unit_f64(rng)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive, int or float).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<G: RngCore> Rng for G {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never stays sorted");
    }
}
