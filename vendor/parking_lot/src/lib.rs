//! Vendored offline shim for the `parking_lot 0.12` API subset this
//! workspace uses: [`Mutex`] and [`Condvar`] with parking_lot's calling
//! conventions — no lock poisoning (`lock()` returns the guard directly)
//! and `Condvar::wait(&mut guard)` re-using one guard binding across the
//! wait — implemented over `std::sync`.
//!
//! Poisoning is deliberately swallowed: a panic while holding a lock must
//! not wedge every other thread, matching parking_lot semantics (and the
//! runtime's reliance on them in panic-carrying task bodies).

#![deny(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a locked [`Mutex`]; unlocks on drop.
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can move it out
/// and back through a `&mut` borrow (parking_lot's signature).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired. Never poisons: a panic in a
    /// previous holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard in use by a condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard in use by a condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed wait: did it return because the timeout elapsed?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` wait signature.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically unlock the guard's mutex and block until notified; the
    /// lock is re-acquired (in the same guard) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// [`Condvar::wait`] with an upper bound on the blocked time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already waiting");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken; parking_lot
        // callers in this workspace ignore the return value.
        false
    }

    /// Wake every waiter.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock stays usable after a holder panicked");
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        let t0 = Instant::now();
        let res = pair.1.wait_for(&mut g, Duration::from_millis(30));
        assert!(res.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(25));
        // Guard still usable after the wait.
        let _: &() = &g;
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
    }
}
