//! The [`Strategy`] trait and the strategy implementations/combinators the
//! workspace's property tests use.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::{ArbitraryValue, TestRng};

/// A recipe for sampling values of `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Sample a value, build a second strategy from it, sample that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe sampling, the representation behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy producing `T`.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Strategy that clones a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy behind [`crate::any`].
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between alternatives — the engine of
/// [`crate::prop_oneof!`].
pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

impl<T> OneOf<T> {
    /// Choose uniformly among `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(arms)
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.0.len());
        self.0[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + ((self.end - self.start) as f64 * rng.unit_f64()) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + ((hi - lo) as f64 * rng.unit_f64()) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// The regex-class subset this workspace uses as string strategies:
/// `"[chars]{min,max}"`, where the class may contain literal characters
/// and `a-z`-style ranges (e.g. `"[a-z.]{0,12}"`, `"[ -~]{0,24}"`).
fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pattern.chars().collect();
    assert!(
        chars.first() == Some(&'['),
        "string strategy {pattern:?}: only [class]{{m,n}} patterns are supported"
    );
    let close = chars
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| panic!("string strategy {pattern:?}: unterminated class"));
    let mut set = Vec::new();
    let mut i = 1;
    while i < close {
        if i + 2 < close && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "string strategy {pattern:?}: inverted range");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "string strategy {pattern:?}: empty class");
    let rest: String = chars[close + 1..].iter().collect();
    if rest.is_empty() {
        return (set, 1, 1);
    }
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("string strategy {pattern:?}: expected {{m,n}} after class"));
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = counts.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(lo <= hi, "string strategy {pattern:?}: inverted count");
    (set, lo, hi)
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (set, lo, hi) = parse_class_pattern(self);
        let len = lo + rng.index(hi - lo + 1);
        (0..len).map(|_| set[rng.index(set.len())]).collect()
    }
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9, K / 10),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9, K / 10, L / 11),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_patterns_parse_ranges_and_literals() {
        let (set, lo, hi) = parse_class_pattern("[a-z.]{0,12}");
        assert_eq!(set.len(), 27);
        assert!(set.contains(&'.') && set.contains(&'a') && set.contains(&'z'));
        assert_eq!((lo, hi), (0, 12));
        let (set, lo, hi) = parse_class_pattern("[ -~]{0,24}");
        assert_eq!(set.len(), 95, "printable ASCII");
        assert_eq!((lo, hi), (0, 24));
        let (set, _, _) = parse_class_pattern("[a-z_]{1,12}");
        assert!(set.contains(&'_'));
    }

    #[test]
    fn string_strategy_respects_class_and_length() {
        let mut rng = TestRng::for_test("s");
        for _ in 0..500 {
            let s = "[a-f]{2,5}".sample(&mut rng);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='f').contains(&c)), "{s:?}");
        }
    }
}
