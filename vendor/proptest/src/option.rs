//! `Option` strategies.

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy yielding `None` some of the time (1 in 4) and `Some(inner)`
/// otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.index(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_both_variants() {
        let mut rng = TestRng::for_test("o");
        let draws: Vec<Option<u32>> = (0..200).map(|_| of(0u32..5).sample(&mut rng)).collect();
        assert!(draws.iter().any(|d| d.is_none()));
        assert!(draws.iter().any(|d| d.is_some()));
        assert!(draws.iter().flatten().all(|&v| v < 5));
    }
}
