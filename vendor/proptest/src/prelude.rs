//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    TestCaseError, TestRng,
};

/// The conventional `prop::` alias for the crate's strategy modules.
pub mod prop {
    pub use crate::{collection, option, strategy};
}
