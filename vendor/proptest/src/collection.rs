//! Collection strategies: vectors, sets, and maps of sampled elements.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::TestRng;

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample_len(self, rng: &mut TestRng) -> usize {
        self.lo + rng.index(self.hi - self.lo + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet`s. Duplicate draws are retried a bounded number
/// of times, so tiny element domains may yield sets smaller than asked.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample_len(rng);
        let mut out = BTreeSet::new();
        let mut tries = 0;
        while out.len() < target && tries < 100 * (target + 1) {
            out.insert(self.element.sample(rng));
            tries += 1;
        }
        out
    }
}

/// Strategy for `BTreeMap`s; duplicate keys collapse like repeated
/// `insert`s, with the same bounded-retry rule as [`btree_set`].
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size: size.into() }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample_len(rng);
        let mut out = BTreeMap::new();
        let mut tries = 0;
        while out.len() < target && tries < 100 * (target + 1) {
            out.insert(self.key.sample(rng), self.value.sample(rng));
            tries += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collections_respect_size_bands() {
        let mut rng = TestRng::for_test("c");
        for _ in 0..200 {
            let v = vec(0u8..5, 2..7).sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s = btree_set(0u32..1000, 3..=3).sample(&mut rng);
            assert!(s.len() <= 3 && !s.is_empty());
            let m = btree_map(0u64..1000, 0u8..3, 1..4).sample(&mut rng);
            assert!(!m.is_empty() && m.len() < 4);
        }
    }

    #[test]
    fn tiny_domains_saturate_without_hanging() {
        let mut rng = TestRng::for_test("d");
        // Only 2 possible elements but 4 requested: returns the whole
        // domain instead of looping forever.
        let s = btree_set(0u8..2, 4..=4).sample(&mut rng);
        assert_eq!(s.len(), 2);
    }
}
