//! Vendored offline shim for the `proptest 1` API subset this workspace
//! uses: the [`proptest!`] / [`prop_assert!`] / [`prop_oneof!`] macros,
//! range and regex-class strategies, `prop_map`/`prop_flat_map`/`boxed`
//! combinators, and the `collection`/`option` strategy modules.
//!
//! Semantics: each test samples `ProptestConfig::cases` random inputs from
//! its strategies with a generator seeded deterministically from the test
//! name, and runs the body on each. There is **no shrinking** — a failing
//! case panics with the assertion message (include inputs in the message
//! when it matters). That trades minimised counterexamples for zero
//! dependencies, which is the point of the shim.

#![deny(missing_docs)]

use std::fmt;

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;

/// Deterministic test-case generator (SplitMix64), seeded from the test
/// name so every run of a given test replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for the named test: same name, same case stream.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name, so sibling tests draw distinct streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty set");
        (self.next_u64() % n as u64) as usize
    }
}

/// Per-test configuration. Only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps the single-core CI budget
        // sane while still sweeping each property meaningfully.
        ProptestConfig { cases: 64 }
    }
}

impl fmt::Display for ProptestConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProptestConfig(cases={})", self.cases)
    }
}

/// Strategy producing any representative value of `T` — the engine behind
/// [`any`].
pub trait ArbitraryValue: Sized {
    /// Sample one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix magnitudes without manufacturing NaN/Inf: sign × mantissa ×
        // 10^[-9, 9].
        let exp = (rng.next_u64() % 19) as i32 - 9;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.unit_f64() * 10f64.powi(exp)
    }
}

impl ArbitraryValue for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// The strategy for "any value of `T`": `any::<u64>()` etc.
pub fn any<T: ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// A failed property case. `prop_assert!` family macros return this via
/// `Err`, so helper functions can propagate failures with `?`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Define property tests: each `fn` inside runs its body over
/// `ProptestConfig::cases` sampled inputs.
///
/// The `#[test]` in the example is consumed by the macro itself (it
/// re-emits real test functions), so the doctest lint about inert test
/// attributes does not apply.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property {} failed on case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Property assertion; fails the case by returning
/// `Err(`[`TestCaseError`]`)` when false, so it also works in helper
/// functions returning `Result<(), TestCaseError>`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Property inequality assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Pick uniformly between alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any_stay_in_bounds(
            a in 10u64..20,
            b in -3i64..=3,
            f in 0.5f64..1.5,
            _any in any::<u32>(),
        ) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((-3..=3).contains(&b));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u8..10, 2..6),
            s in "[a-z]{1,4}",
            opt in crate::option::of(0u32..3),
            mapped in (0u32..4).prop_map(|x| x * 2),
            flat in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..9, n..=n)),
            choice in prop_oneof![Just(1u8), Just(2u8), 5u8..7],
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            if let Some(x) = opt {
                prop_assert!(x < 3);
            }
            prop_assert_eq!(mapped % 2, 0);
            prop_assert!(!flat.is_empty() && flat.len() < 4);
            prop_assert!(matches!(choice, 1 | 2 | 5 | 6));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]
        #[test]
        fn config_literal_with_update_syntax(x in 0u8..8) {
            prop_assert!(x < 8);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let mut c = crate::TestRng::for_test("u");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
