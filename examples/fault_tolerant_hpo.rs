//! Fault-tolerant HPO: run the paper's grid on a virtual 4-node cluster
//! where one node dies mid-run and several tasks crash — "for long running
//! applications such as HPO, its important to ensure continuity in case of
//! failure" (paper §3).
//!
//! ```sh
//! cargo run --release --example fault_tolerant_hpo
//! ```

use cluster::{Cluster, FailureInjector, NodeSpec};
use hpo::prelude::*;
use rcompss::{Runtime, RuntimeConfig};

fn main() {
    // 4 small nodes; node 2 dies at t = 90 s; every task attempt also has
    // a 10 % chance of crashing (seeded, reproducible).
    let cluster = Cluster::homogeneous(4, NodeSpec::new("n", 8, vec![], 32));
    let failures = FailureInjector::random(2024, 0.10).with_node_failure(90_000_000, 2);
    let rt = Runtime::simulated(RuntimeConfig::on_cluster(cluster).with_failures(failures));

    let space = SearchSpace::paper_grid();
    let runner = HpoRunner::new(
        ExperimentOptions::default()
            .with_constraint(rcompss::Constraint::cpus(8))
            .with_sim_duration(|config| {
                60_000_000 * config.get_int("num_epochs").unwrap_or(20) as u64 / 20
            }),
    );
    let objective: hpo::experiment::Objective = std::sync::Arc::new(|config, _| {
        let epochs = config.get_int("num_epochs").unwrap_or(0) as f64;
        Ok(hpo::experiment::TrialOutcome::with_accuracy(0.7 + epochs / 1000.0))
    });

    let report =
        runner.run(&rt, &mut GridSearch::new(&space), objective).expect("hpo survives failures");

    let stats = rt.stats();
    println!("{}", report.summary());
    println!(
        "runtime stats: {} submitted, {} completed, {} failed attempts (all retried), {} permanently failed",
        stats.submitted, stats.completed, stats.failed_attempts, stats.failed
    );
    println!("virtual makespan: {:.1} min", rt.now_us() as f64 / 60e6);

    // Despite the chaos, the optimisation completed: by default the retry
    // policy gives each task 3 attempts (same node, then another node).
    let completed = report.successes();
    println!("\n{completed}/27 experiments produced results under injected failures");
    assert!(completed >= 24, "fault tolerance should save nearly all trials");
    println!("fault tolerance kept the HPO run alive — no restart-from-scratch needed.");
}
