//! Heterogeneous resource management — the paper's §3: "PyCOMPSs supports
//! heterogeneous resources. As such, for compute intensive deep learning
//! applications, each task can be assigned a number of CPUs and a GPU", and
//! the `@implement` decorator: "declare multiple implementations for the
//! same task (this decorator allows the runtime to choose the most
//! appropriate task considering the resources)".
//!
//! We build a mixed cluster — one CTE-POWER9 GPU node plus two MareNostrum 4
//! CPU nodes — and register an experiment with a GPU-first implementation
//! and a CPU fallback. The scheduler fills the 4 GPUs, then overflows onto
//! CPU nodes, and the virtual makespan shows both kinds at work.
//!
//! ```sh
//! cargo run --release --example heterogeneous_gpu
//! ```

use cluster::{Allocation, Cluster, GpuModel, NodeSpec, TrainingCost};
use paratrace::TraceStats;
use rcompss::{Constraint, Runtime, RuntimeConfig, SubmitOpts, Value};

fn main() {
    let cluster = Cluster::from_nodes(vec![
        NodeSpec::cte_power9(),
        NodeSpec::marenostrum4(),
        NodeSpec::marenostrum4(),
    ]);
    println!(
        "cluster: {} nodes, {} cores, {} GPUs",
        cluster.node_count(),
        cluster.total_cores(),
        cluster.total_gpus()
    );
    let rt = Runtime::simulated(RuntimeConfig::on_cluster(cluster));

    // Primary implementation: 16 cores + 1 GPU. Fallback: 48 CPU cores.
    let experiment = rt
        .register("experiment.gpu", Constraint::cpus(16).with_gpus(1), 1, |ctx, _| {
            Ok(vec![Value::new(format!("node{} gpu{:?}", ctx.node, ctx.gpus))])
        })
        .with_implementation(Constraint::cpus(48), |ctx, _| {
            Ok(vec![Value::new(format!("node{} cpu-only", ctx.node))])
        });

    // CIFAR-class trainings; duration depends on which implementation the
    // scheduler will pick — we submit with the GPU-speed duration and let
    // the experiment show placement (a finer model would pass per-variant
    // durations; the placement behaviour is the point here).
    let gpu_cost =
        TrainingCost::cifar10(20, 64).duration(&Allocation::with_gpu(16, GpuModel::V100));
    let outs: Vec<_> = (0..10)
        .map(|_| {
            rt.submit_with(&experiment, vec![], SubmitOpts { sim_duration_us: Some(gpu_cost) })
                .expect("submit")
                .returns[0]
        })
        .collect();
    rt.barrier();

    let mut gpu_runs = 0;
    let mut cpu_runs = 0;
    for (i, h) in outs.iter().enumerate() {
        let placement = rt.wait_on(h).expect("result");
        let s = placement.downcast_ref::<String>().unwrap();
        if s.contains("gpu") && !s.contains("cpu-only") {
            gpu_runs += 1;
        } else {
            cpu_runs += 1;
        }
        println!("experiment {i:>2}: {s}");
    }
    println!("\nGPU implementation ran {gpu_runs}×, CPU fallback {cpu_runs}×");
    assert!(gpu_runs >= 4, "the 4 V100s should be saturated");
    assert!(cpu_runs >= 1, "overflow uses the CPU nodes");

    let stats = TraceStats::compute(&rt.trace());
    println!(
        "peak parallelism {} | makespan {:.1} min",
        stats.peak_parallelism,
        stats.makespan as f64 / 60e6
    );
}
