//! Quickstart: grid-search HPO over a JSON config, exactly the workflow of
//! the paper's Listing 2 — parse the config, launch one experiment task per
//! combination, wait on all results, print the winner.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use hpo::prelude::*;
use rcompss::{Runtime, RuntimeConfig};
use tinyml::Dataset;

fn main() {
    // 1. The search space arrives as a JSON file (paper Listing 1). Scaled
    //    epochs so the example finishes in seconds.
    let space = SearchSpace::from_json(
        r#"{
            "optimizer": ["Adam", "SGD", "RMSprop"],
            "num_epochs": [2, 5],
            "batch_size": [32, 64]
        }"#,
    )
    .expect("valid config file");
    println!("search space: {} configurations", space.grid_size().unwrap());

    // 2. Start the runtime. One node, as many computing units as this
    //    machine has cores; scaling to more nodes is a config change, not a
    //    code change.
    let cores = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(4);
    let rt = Runtime::threaded(RuntimeConfig::single_node(cores));

    // 3. The objective: really train a small dense net per config.
    let data = Arc::new(Dataset::synthetic_mnist(1_000, 42));
    let objective = hpo::experiment::tinyml_objective(data, vec![32]);

    // 4. Run the grid — every experiment is an independent parallel task.
    let runner = HpoRunner::new(ExperimentOptions::default());
    let report = runner.run(&rt, &mut GridSearch::new(&space), objective).expect("hpo run");

    // 5. Report, like the paper's final plotting task.
    println!("{}", report.summary());
    println!("\nall trials:");
    for t in &report.trials {
        println!("  {}", t.label());
    }
    let best = report.best().expect("at least one success");
    println!("\nbest configuration: {}", best.config.label());
    println!("validation accuracy: {:.3}", best.outcome.accuracy);
}
