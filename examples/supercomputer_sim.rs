//! Simulate the paper's MareNostrum 4 deployment without a supercomputer:
//! the same 27-experiment HPO application on a 28-node virtual cluster,
//! with worker reservation, Paraver trace export and an ASCII timeline.
//!
//! ```sh
//! cargo run --release --example supercomputer_sim
//! ```

use cluster::{Allocation, Cluster, NodeSpec, TrainingCost};
use hpo::prelude::*;
use paratrace::gantt::{render, GanttOptions};
use paratrace::TraceStats;
use rcompss::{Runtime, RuntimeConfig};

fn main() {
    // 28 MareNostrum-4 nodes; node 0 belongs to the COMPSs worker (the
    // paper requests "an extra node for the worker").
    let cluster = Cluster::homogeneous(28, NodeSpec::marenostrum4());
    let rt = Runtime::simulated(RuntimeConfig::on_cluster(cluster).reserve(0, 48));

    // Whole-node experiments (paper: "We assign 48 cores to each task and
    // let Tensorflow take care of internal parallelism").
    let space = SearchSpace::paper_grid();
    let runner = HpoRunner::new(
        ExperimentOptions::default()
            .with_constraint(rcompss::Constraint::cpus(48))
            .with_sim_duration(|config| {
                let epochs = config.get_int("num_epochs").unwrap_or(50) as u32;
                let batch = config.get_int("batch_size").unwrap_or(64) as u32;
                TrainingCost::cifar10(epochs, batch).duration(&Allocation::cpu(48))
            }),
    );

    // The objective itself is trivial here: in the simulation we care about
    // scheduling/time behaviour, not gradients. (See `quickstart` for real
    // training.)
    let objective: hpo::experiment::Objective = std::sync::Arc::new(|config, _| {
        let epochs = config.get_int("num_epochs").unwrap_or(0) as f64;
        Ok(hpo::experiment::TrialOutcome::with_accuracy(0.6 + epochs / 500.0))
    });

    let report = runner.run(&rt, &mut GridSearch::new(&space), objective).expect("hpo run");
    println!("{}", report.summary());
    println!("virtual HPO makespan: {:.1} min", rt.now_us() as f64 / 60e6);

    let records = rt.trace();
    let stats = TraceStats::compute(&records);
    println!(
        "27 experiments, {} started at t=0, peak parallelism {}",
        TraceStats::tasks_started_within(&records, 0),
        stats.peak_parallelism
    );
    println!("\nper-node busy-core timeline (rows = nodes):");
    print!(
        "{}",
        render(&records, &GanttOptions { width: 70, per_node: true, ..Default::default() })
    );
    println!("\nno code changed versus the single-node run — only the cluster config.");
}
