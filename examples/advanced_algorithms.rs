//! The paper's future work, delivered: random search, TPE and successive
//! halving over a mixed discrete/continuous space, with early stopping —
//! "This library will enable the user to perform HPO over any search space
//! by simply calling a function and specifying the algorithm" (§7).
//!
//! ```sh
//! cargo run --release --example advanced_algorithms
//! ```

use std::sync::Arc;

use hpo::algo::hyperband::Bracket;
use hpo::prelude::*;
use rcompss::{Runtime, RuntimeConfig};
use tinyml::Dataset;

fn main() {
    // A richer space than the paper's Listing 1: a continuous learning
    // rate — grid search can't even enumerate this.
    let space = SearchSpace::from_json(
        r#"{
            "optimizer": ["Adam", "SGD", "RMSprop"],
            "num_epochs": [4, 8],
            "batch_size": [32, 64, 128],
            "learning_rate": {"log_uniform": [1e-4, 1e-1]}
        }"#,
    )
    .expect("valid config");

    let cores = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(4);
    let data = Arc::new(Dataset::synthetic_mnist(1_000, 9));

    // --- random search, with across-trial early stopping ---
    let rt = Runtime::threaded(RuntimeConfig::single_node(cores));
    let objective = hpo::experiment::tinyml_objective(Arc::clone(&data), vec![32]);
    let runner =
        HpoRunner::new(ExperimentOptions::default().with_early_stop(EarlyStop::at_accuracy(0.93)));
    let mut opts_small_waves = runner.clone();
    opts_small_waves.opts.wave_size = Some(cores as usize);
    let random = opts_small_waves
        .run(&rt, &mut RandomSearch::new(&space, 16, 7), objective.clone())
        .expect("random run");
    println!("random search : {}", random.summary());

    // --- TPE: model-based, sequential batches ---
    let rt = Runtime::threaded(RuntimeConfig::single_node(cores));
    let runner = HpoRunner::new(ExperimentOptions::default());
    let tpe =
        runner.run(&rt, &mut TpeSearch::new(&space, 16, 7), objective.clone()).expect("tpe run");
    println!("TPE           : {}", tpe.summary());

    // --- successive halving: spend epochs only on survivors ---
    let rt = Runtime::threaded(RuntimeConfig::single_node(cores));
    let runner = HpoRunner::new(ExperimentOptions::default());
    let bracket = Bracket::new(9, 2, 8, 3);
    let sh = runner.run_successive_halving(&rt, &space, objective, &bracket, 13).expect("sh run");
    println!("succ. halving : {}", sh.summary());
    println!(
        "  bracket rungs: {:?} (epoch budget grows only for survivors)",
        bracket.rungs.iter().map(|r| (r.n_configs, r.budget)).collect::<Vec<_>>()
    );

    // Compare winners.
    for (name, report) in [("random", &random), ("tpe", &tpe), ("sh", &sh)] {
        if let Some(best) = report.best() {
            println!("{name:>7} best: {}", best.label());
        }
    }
}
