//! `rcompss-worker` — standalone worker daemon for `--backend distributed`.
//!
//! Thin wrapper over the same code path as `hpo-run worker`: parse the
//! worker flags, register codecs and the experiment task, serve until
//! killed. Run one per node, then point the driver at them:
//!
//! ```text
//! rcompss-worker --listen 127.0.0.1:7077 --name w0 &
//! rcompss-worker --listen 127.0.0.1:7078 --name w1 &
//! hpo-run --config space.json --backend distributed \
//!         --workers 127.0.0.1:7077,127.0.0.1:7078
//! ```

use std::process::ExitCode;

use pycompss_hpo_repro::cli;
use pycompss_hpo_repro::worker;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = raw.iter().map(String::as_str).collect();
    let args = match cli::parse_worker(&refs) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match worker::serve(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
