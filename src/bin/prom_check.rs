//! `prom-check` — validate Prometheus text exposition on stdin.
//!
//! A tiny CI helper: pipe a scraped `/metrics` body (or a `--metrics-out`
//! `.prom` file) in, get exit 0 and a series count out, or exit 1 with
//! the first format violation. Runs the same checker as the exposition
//! proptests ([`runmetrics::validate_exposition`]), so CI scrapes are
//! held to the grammar the exporter is fuzzed against:
//!
//! ```text
//! curl -s http://127.0.0.1:9100/metrics | prom-check
//! ```

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("prom-check: cannot read stdin: {e}");
        return ExitCode::FAILURE;
    }
    match runmetrics::validate_exposition(&text) {
        Ok(series) => {
            println!("prom-check: ok ({series} series)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("prom-check: invalid exposition: {e}");
            ExitCode::FAILURE
        }
    }
}
