//! `rcompss-server` — the long-lived multi-tenant sweep server.
//!
//! Thin wrapper over the same code path as `hpo-run serve`: parse the
//! server flags, gather the worker pool (dial-out and/or dial-in), and
//! serve sweeps to many tenants until killed. Typical small deployment:
//!
//! ```text
//! rcompss-server --listen 127.0.0.1:7070 --expect-workers 2 &
//! rcompss-worker --listen 127.0.0.1:7077 --name w0 --dial 127.0.0.1:7070 &
//! rcompss-worker --listen 127.0.0.1:7078 --name w1 --dial 127.0.0.1:7070 &
//! hpo-run submit --server 127.0.0.1:7070 --tenant acme \
//!         --config space.json --algo random --trials 32 --watch
//! ```

use std::process::ExitCode;

use pycompss_hpo_repro::cli;
use pycompss_hpo_repro::server_cmd;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = raw.iter().map(String::as_str).collect();
    let args = match cli::parse_serve(&refs) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match server_cmd::serve(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
