//! `hpo-run` — the application launcher, analogous to the paper's
//! `runcompss application.py json_file`: take a JSON hyperparameter file,
//! expand it with the chosen algorithm, run one experiment task per config
//! on the chosen backend, and report.

use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use cluster::{Allocation, Cluster, NodeSpec, TrainingCost};
use hpo::dashboard::{leaderboard, Dashboard};
use hpo::prelude::*;
use pycompss_hpo_repro::cli::{self, AlgoChoice, BackendChoice, CliArgs, Command, DatasetChoice};
use pycompss_hpo_repro::worker;
use rcompss::{Constraint, DistributedConfig, Runtime, RuntimeConfig};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = raw.iter().map(String::as_str).collect();
    let cmd = match cli::parse_command(&refs) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &cmd {
        Command::Worker(w) => worker::serve(w),
        Command::Run(args) => run(args),
        Command::Serve(s) => pycompss_hpo_repro::server_cmd::serve(s),
        Command::Client(c) => pycompss_hpo_repro::server_cmd::client(c),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The emergency-flush hook: set while a run is in flight, taken (at most
/// once) by whichever exit path fires first — clean return, panic unwind
/// via [`FlushGuard`], or the SIGINT handler.
static FLUSH_HOOK: Mutex<Option<Box<dyn FnOnce() + Send>>> = Mutex::new(None);

/// Run the armed flush hook, if any. Idempotent: the hook is `take`n.
fn flush_now() {
    let hook = FLUSH_HOOK.lock().ok().and_then(|mut g| g.take());
    if let Some(hook) = hook {
        hook();
    }
}

/// Raw signal registration — the approved dependency set has no signal
/// crate, and all we need is the one POSIX call.
mod sig {
    pub const SIGINT: i32 = 2;
    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

extern "C" fn on_sigint(_sig: i32) {
    // Best-effort: flush partial artefacts, then exit with the
    // conventional 128+SIGINT status. Formatting in a signal handler is
    // not strictly async-signal-safe, but the process is on its way out.
    flush_now();
    std::process::exit(130);
}

/// Arms the emergency flush for the duration of a run. Dropped while
/// panicking → the hook runs and partial `--metrics-out` / `--trace-out`
/// artefacts land on disk; [`FlushGuard::disarm`] on the clean path hands
/// the flush back to the normal export code.
struct FlushGuard {
    armed: bool,
}

impl FlushGuard {
    fn arm(hook: Box<dyn FnOnce() + Send>) -> FlushGuard {
        *FLUSH_HOOK.lock().unwrap() = Some(hook);
        unsafe {
            sig::signal(sig::SIGINT, on_sigint as *const () as usize);
        }
        FlushGuard { armed: true }
    }

    fn disarm(mut self) {
        self.armed = false;
        let _ = FLUSH_HOOK.lock().map(|mut g| g.take());
    }
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        if self.armed {
            flush_now();
        }
    }
}

/// Merge the runtime registry with the process-global one (training epoch
/// series) into a single exportable snapshot.
fn merged_metrics(rt: &Runtime) -> runmetrics::MetricsSnapshot {
    let mut snap = rt.metrics().snapshot();
    snap.merge(runmetrics::global().snapshot());
    snap
}

/// Write `<prefix>.prom` + `<prefix>.jsonl` from the current metrics.
fn write_metrics_export(rt: &Runtime, prefix: &str) -> std::io::Result<(String, String)> {
    let snap = merged_metrics(rt);
    let prom = format!("{prefix}.prom");
    std::fs::write(&prom, runmetrics::to_prometheus(&snap))?;
    let jsonl = format!("{prefix}.jsonl");
    std::fs::write(&jsonl, runmetrics::to_jsonl_line(rt.now_us(), &snap) + "\n")?;
    Ok((prom, jsonl))
}

/// Write the merged Chrome trace to `path`.
fn write_trace_export(rt: &Runtime, path: &str) -> std::io::Result<Vec<paratrace::Record>> {
    let records = rt.trace();
    let doc = paratrace::chrome::export_named("hpo-run", &records, &rt.node_labels());
    std::fs::write(path, doc)?;
    Ok(records)
}

fn run(args: &CliArgs) -> Result<(), Box<dyn std::error::Error>> {
    // 1. Search space from the JSON file (paper Listing 1).
    let text = std::fs::read_to_string(&args.config)
        .map_err(|e| format!("cannot read {}: {e}", args.config))?;
    let space = SearchSpace::from_json(&text)?;
    println!(
        "search space: {} parameters, grid size {}",
        space.len(),
        space.grid_size().map_or("∞ (continuous)".to_string(), |n| n.to_string())
    );

    // 2. Runtime. `Arc`ed so the emergency flush hook (panic/SIGINT) can
    // reach the live metrics and trace buffers.
    let metrics_on = !args.no_metrics;
    let rt = Arc::new(match args.backend {
        BackendChoice::Threaded => {
            let cores = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(4);
            Runtime::threaded(
                RuntimeConfig::single_node(cores.max(args.cores_per_task))
                    .with_tracing(args.trace)
                    .with_metrics(metrics_on),
            )
        }
        BackendChoice::Sim => Runtime::simulated(
            RuntimeConfig::on_cluster(Cluster::homogeneous(args.nodes, NodeSpec::marenostrum4()))
                .with_tracing(args.trace)
                .with_metrics(metrics_on),
        ),
        BackendChoice::Distributed => {
            // Values and results cross process boundaries: codecs first.
            hpo::wire::register_hpo_codecs();
            let rt = Runtime::distributed(
                RuntimeConfig::single_node(1).with_tracing(args.trace).with_metrics(metrics_on),
                &args.workers,
                DistributedConfig {
                    inline_threshold: args.inline_threshold,
                    ..DistributedConfig::default()
                },
            )?;
            println!("distributed cluster: {}", rt.node_labels().join(", "));
            rt
        }
    });
    // Training internals (epoch timing) report to the process-global
    // registry; switch it in step with the runtime's.
    runmetrics::global().set_enabled(metrics_on);

    // Live scrape endpoint: any Prometheus scraper (or bare curl) can hit
    // GET /metrics and /healthz while the run is in flight. The handle
    // keeps the serving thread alive until the end of the run.
    let _status = match &args.status_addr {
        Some(addr) => {
            let reg = rt.metrics();
            let server = rnet::StatusServer::bind(addr, move |path| {
                (path == "/metrics").then(|| {
                    let mut snap = reg.snapshot();
                    snap.merge(runmetrics::global().snapshot());
                    ("text/plain; version=0.0.4".to_string(), runmetrics::to_prometheus(&snap))
                })
            })
            .map_err(|e| format!("cannot serve --status-addr {addr}: {e}"))?;
            println!("status endpoint: http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };

    // 3. Checkpointing: journal + snapshot store under --ckpt-dir, and
    // the recovered sweep state when resuming.
    let mut ckpts = hpo::experiment::TrialCheckpoints::default();
    let mut journal = None;
    let mut resume_state = None;
    if let Some(dir) = &args.ckpt_dir {
        let spec = hpo::ckpt::CheckpointSpec::new(dir)
            .with_every(args.ckpt_every)
            .with_retain(args.ckpt_retain);
        if args.resume {
            let state = spec.recover().map_err(|e| format!("cannot resume from {dir}: {e}"))?;
            println!(
                "recovered journal {}: {} trials complete, {} in flight",
                spec.journal_path().display(),
                state.complete.len(),
                state.in_flight.len()
            );
            resume_state = Some(state);
        }
        let j = spec.journal().map_err(|e| format!("cannot open journal in {dir}: {e}"))?;
        ckpts = hpo::experiment::TrialCheckpoints {
            every: args.ckpt_every,
            store: Some(std::sync::Arc::new(
                spec.store().map_err(|e| format!("cannot open snapshot store in {dir}: {e}"))?,
            )),
            journal: Some(j.clone()),
        };
        journal = Some(j);
        println!(
            "checkpointing to {dir}: snapshot every {} epoch(s), retaining {}",
            args.ckpt_every, args.ckpt_retain
        );
    }

    // 4. Objective: real training for the chosen dataset. Shared with the
    // worker daemon, so a distributed worker started with the same dataset
    // flags executes the identical function (see `worker::build_objective`).
    // In a distributed run the driver's store/journal stay local; workers
    // started with --ckpt-every snapshot over the wire instead.
    let (data, objective) = worker::build_objective(
        args.dataset,
        args.samples,
        args.seed,
        args.cnn,
        args.target_accuracy,
        ckpts,
    );
    println!("dataset: {} ({} examples, {} features)", data.name, data.len(), data.dim());

    // 5. Runner options.
    let mut opts =
        ExperimentOptions::default().with_constraint(Constraint::cpus(args.cores_per_task));
    if let Some(t) = args.target_accuracy {
        opts.early_stop = Some(EarlyStop::at_accuracy(t));
        opts.wave_size = Some((args.nodes * 4).max(4));
    }
    if args.backend == BackendChoice::Sim {
        // cost-model durations for the virtual cluster
        let cores = args.cores_per_task;
        let is_cifar = args.dataset == DatasetChoice::Cifar10;
        opts = opts.with_sim_duration(move |c: &Config| {
            let epochs = c.get_int("num_epochs").unwrap_or(10) as u32;
            let batch = c.get_int("batch_size").unwrap_or(64) as u32;
            let cost = if is_cifar {
                TrainingCost::cifar10(epochs, batch)
            } else {
                TrainingCost::mnist(epochs, batch)
            };
            cost.duration(&Allocation::cpu(cores))
        });
    }
    let runner = HpoRunner::new(opts);

    // 6. Run with a live dashboard (metrics line every 10 trials).
    let mut dash = Dashboard::new();
    if metrics_on {
        dash = dash.with_metrics(rt.metrics(), 10);
    }
    let mut algo: Box<dyn Suggester> = match args.algo {
        AlgoChoice::Grid => Box::new(GridSearch::new(&space)),
        AlgoChoice::Random => Box::new(RandomSearch::new(&space, args.trials, args.seed)),
        AlgoChoice::Tpe => Box::new(TpeSearch::new(&space, args.trials, args.seed)),
        AlgoChoice::Bayes => Box::new(BayesSearch::new(&space, args.trials, args.seed)),
    };

    // Stage-tree eligibility: prefix sharing needs the whole config set up
    // front (history-independent algorithm), full-length trials (no early
    // stop), no journal (segments are not per-trial journal entries), and
    // a backend that really trains. Ineligible + explicitly requested →
    // warn and fall back to the naive loop rather than fail the run.
    let mut share = args.share_prefixes && !args.no_share_prefixes;
    if share {
        let blocker = if !matches!(args.algo, AlgoChoice::Grid | AlgoChoice::Random) {
            Some("--algo must be grid or random (history-driven suggesters cannot be planned)")
        } else if args.target_accuracy.is_some() {
            Some("--target-accuracy stops trials mid-training, which breaks segment chaining")
        } else if args.ckpt_dir.is_some() {
            Some("--ckpt-dir journals per-trial, not per-segment")
        } else if args.backend == BackendChoice::Sim {
            Some("--backend sim has no real training to share")
        } else {
            None
        };
        if let Some(why) = blocker {
            eprintln!("--share-prefixes ignored: {why}; running the naive loop");
            share = false;
        }
    }
    // Telemetry must survive a crash: arm the flush hook so a panicking
    // trial or a ^C still leaves partial --metrics-out / --trace-out
    // artefacts on disk (the journal already makes the sweep resumable).
    let guard = {
        let rt = Arc::clone(&rt);
        let metrics_out = args.metrics_out.clone();
        let trace_out = args.trace_out.clone();
        FlushGuard::arm(Box::new(move || {
            if let Some(prefix) = &metrics_out {
                if let Ok((prom, jsonl)) = write_metrics_export(&rt, prefix) {
                    eprintln!("flushed partial metrics to {prom} and {jsonl}");
                }
            }
            if let Some(path) = &trace_out {
                if write_trace_export(&rt, path).is_ok() {
                    eprintln!("flushed partial trace to {path}");
                }
            }
        }))
    };
    let report = if share {
        // Staged execution: plan the prefix tree over the materialised
        // config set, train each shared prefix once, fork the rest.
        // (Distributed workers register the same stage task — see
        // `worker::serve`.)
        let stage = worker::build_stage_objective(Arc::clone(&data), args.cnn, 0);
        let configs = hpo::runner::materialize(algo.as_mut());
        let (report, stats) =
            runner.run_staged(&rt, args.algo.wire_name(), &configs, &stage, None, |t| {
                println!("{}", dash.on_trial(t))
            })?;
        let banner = hpo::dashboard::stage_banner(&stats);
        if !banner.is_empty() {
            println!("{banner}");
        }
        report
    } else if let Some(journal) = &journal {
        let (report, stats) = runner.run_journaled(
            &rt,
            algo.as_mut(),
            objective,
            journal,
            resume_state.as_ref(),
            |t| println!("{}", dash.on_trial(t)),
        )?;
        let banner = dash.on_resume(&stats);
        if !banner.is_empty() {
            println!("{banner}");
        }
        report
    } else {
        runner.run_observed(&rt, algo.as_mut(), objective, |t| {
            println!("{}", dash.on_trial(t));
        })?
    };
    // Clean finish: the normal export path below owns the flush now.
    guard.disarm();

    // 7. Report, artefacts.
    println!("\n{}", report.summary());
    let ckpt_line = dash.ckpt_summary();
    if !ckpt_line.is_empty() {
        println!("{ckpt_line}");
    }
    print!("{}", leaderboard(&report, 5));
    if let Some(path) = &args.csv_out {
        std::fs::write(path, report.to_csv())?;
        println!("results CSV written to {path}");
    }
    if let Some(path) = &args.graph_out {
        std::fs::write(path, rt.dot())?;
        println!("task graph DOT written to {path}");
    }
    if let Some(prefix) = &args.metrics_out {
        let (prom, jsonl) = write_metrics_export(&rt, prefix)?;
        println!("metrics written to {prom} and {jsonl}");
    }
    if args.backend == BackendChoice::Distributed && metrics_on {
        print!("{}", dash.node_lanes(&rt.node_labels(), rt.now_us()));
    }
    if args.trace {
        let records = match &args.trace_out {
            Some(path) => {
                let records = write_trace_export(&rt, path)?;
                println!("Chrome trace written to {path} (open in ui.perfetto.dev)");
                records
            }
            None => rt.trace(),
        };
        let stats = paratrace::TraceStats::compute(&records);
        println!(
            "\ntrace: {} records | makespan {} | peak parallelism {}",
            records.len(),
            paratrace::fmt_duration(stats.makespan),
            stats.peak_parallelism
        );
        print!("{}", paratrace::report::profile_table(&records));
    }
    Ok(())
}
