//! Command-line interface of the `hpo-run` launcher — the analogue of the
//! paper's `runcompss application.py json_file` entry point.
//!
//! Hand-rolled argument parsing (no CLI crates in the approved dependency
//! set), exposed as a library module so it is unit-testable.

use std::fmt;

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Exhaustive grid search.
    Grid,
    /// Random search (`--trials` samples).
    Random,
    /// Tree-structured Parzen Estimator.
    Tpe,
    /// Gaussian-process Bayesian optimisation.
    Bayes,
}

impl AlgoChoice {
    /// The algorithm's wire name — the vocabulary of `SubmitSweep`.
    pub fn wire_name(self) -> &'static str {
        match self {
            AlgoChoice::Grid => "grid",
            AlgoChoice::Random => "random",
            AlgoChoice::Tpe => "tpe",
            AlgoChoice::Bayes => "bayes",
        }
    }
}

/// Which dataset to train on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChoice {
    /// MNIST-difficulty synthetic data.
    Mnist,
    /// CIFAR-10-difficulty synthetic data.
    Cifar10,
}

/// Which execution backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Real thread-pool execution (actually trains models).
    Threaded,
    /// Deterministic virtual-cluster simulation (cost-model durations).
    Sim,
    /// Remote execution on `rcompss-worker` daemons over TCP.
    Distributed,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Path of the JSON search-space file (the paper's config file).
    pub config: String,
    /// Algorithm.
    pub algo: AlgoChoice,
    /// Dataset.
    pub dataset: DatasetChoice,
    /// Dataset size (examples).
    pub samples: usize,
    /// Backend.
    pub backend: BackendChoice,
    /// Virtual cluster size (sim backend) or ignored (threaded).
    pub nodes: usize,
    /// CPU cores per experiment task.
    pub cores_per_task: u32,
    /// Trial budget for random/TPE/Bayes (grid ignores it).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Early-stop target accuracy.
    pub target_accuracy: Option<f64>,
    /// Enable tracing (paper's tracing flag).
    pub trace: bool,
    /// Write the task graph DOT here.
    pub graph_out: Option<String>,
    /// Write the trial CSV here.
    pub csv_out: Option<String>,
    /// Train CNNs instead of dense nets.
    pub cnn: bool,
    /// Disable runtime metrics (on by default; off = one relaxed atomic
    /// load per instrumentation site).
    pub no_metrics: bool,
    /// Write metrics exports to `<prefix>.prom` / `<prefix>.jsonl`.
    pub metrics_out: Option<String>,
    /// Worker addresses for `--backend distributed` (host:port).
    pub workers: Vec<String>,
    /// Write a Chrome `trace_event` JSON trace here (implies tracing).
    pub trace_out: Option<String>,
    /// Checkpoint directory: crash-safe sweep journal plus periodic model
    /// snapshots. `None` = checkpointing off.
    pub ckpt_dir: Option<String>,
    /// Snapshot cadence in epochs when checkpointing.
    pub ckpt_every: u32,
    /// Snapshots retained per trial.
    pub ckpt_retain: usize,
    /// Resume an interrupted sweep from `ckpt_dir`'s journal
    /// (`--resume <dir>` sets both).
    pub resume: bool,
    /// Serve live `GET /metrics` + `GET /healthz` on this address while
    /// the run is in flight (e.g. `127.0.0.1:9100`). `None` = no endpoint.
    pub status_addr: Option<String>,
    /// Declared-size threshold (bytes) above which distributed-backend
    /// values travel content-addressed through the block plane instead of
    /// inline in each `Submit`. `u64::MAX` disables the block plane.
    pub inline_threshold: u64,
    /// Stage-tree prefix sharing: train shared config prefixes once and
    /// fork the rest from snapshots (grid/random on the threaded or
    /// distributed backend; bit-identical leaderboard, fewer epochs).
    pub share_prefixes: bool,
    /// Escape hatch: force the naive per-trial loop even when
    /// `--share-prefixes` was given (e.g. by a wrapper script).
    pub no_share_prefixes: bool,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            config: String::new(),
            algo: AlgoChoice::Grid,
            dataset: DatasetChoice::Mnist,
            samples: 1_000,
            backend: BackendChoice::Threaded,
            nodes: 1,
            cores_per_task: 1,
            trials: 20,
            seed: 42,
            target_accuracy: None,
            trace: false,
            graph_out: None,
            csv_out: None,
            cnn: false,
            no_metrics: false,
            metrics_out: None,
            workers: Vec::new(),
            trace_out: None,
            ckpt_dir: None,
            ckpt_every: 1,
            ckpt_retain: 2,
            resume: false,
            status_addr: None,
            inline_threshold: 64 * 1024,
            share_prefixes: false,
            no_share_prefixes: false,
        }
    }
}

/// Parsed `worker` subcommand: what an `rcompss-worker` daemon needs to
/// serve experiment tasks — its listen address/resources plus the exact
/// dataset recipe, so it can rebuild the same objective the driver
/// submits against (both sides must agree on the task by name).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerArgs {
    /// Listen address.
    pub listen: String,
    /// Worker display name (shows up in trace lanes and metric labels).
    pub name: String,
    /// Advertised CPU cores (0 = autodetect).
    pub cores: u32,
    /// Dataset recipe — must match the driver invocation.
    pub dataset: DatasetChoice,
    /// Dataset size — must match the driver invocation.
    pub samples: usize,
    /// Dataset RNG seed — must match the driver invocation.
    pub seed: u64,
    /// CNN architectures — must match the driver invocation.
    pub cnn: bool,
    /// In-trial early-stop target — must match the driver invocation.
    pub target_accuracy: Option<f64>,
    /// Snapshot cadence in epochs (0 = off). Worker-side snapshots ride
    /// back to the driver over the wire, so a trial retried after a worker
    /// loss resumes mid-training instead of from epoch 0.
    pub ckpt_every: u32,
    /// Serve live `GET /metrics` + `GET /healthz` on this address
    /// (worker-local counters). `None` = no endpoint.
    pub status_addr: Option<String>,
    /// Block-cache memory budget, MiB (`--cache-mem`). Decoded blocks are
    /// kept under this budget and evicted least-recently-used.
    pub cache_mem_mib: u64,
    /// Addresses this worker dials *into* at startup (`--dial`), joining
    /// a driver or sweep server's pool from behind NAT instead of waiting
    /// to be dialled. The worker still listens as usual.
    pub dial: Vec<String>,
}

impl Default for WorkerArgs {
    fn default() -> Self {
        WorkerArgs {
            listen: "127.0.0.1:7077".to_string(),
            name: "worker".to_string(),
            cores: 0,
            dataset: DatasetChoice::Mnist,
            samples: 1_000,
            seed: 42,
            cnn: false,
            target_accuracy: None,
            ckpt_every: 0,
            status_addr: None,
            cache_mem_mib: 256,
            dial: Vec::new(),
        }
    }
}

/// Parsed `serve` subcommand: a long-lived multi-tenant sweep server
/// (`rcompss-server` / `hpo-run serve`) that owns the worker pool and
/// runs sweeps submitted by clients.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Listen address — one socket for both workers and sweep clients.
    pub listen: String,
    /// Worker addresses to dial out to at startup.
    pub workers: Vec<String>,
    /// Workers expected to dial *in* (started with `--dial` at us)
    /// before the pool is sealed.
    pub expect_workers: usize,
    /// Deadline (seconds) for gathering the whole pool.
    pub pool_timeout_secs: u64,
    /// Local thread-pool cores when serving without remote workers
    /// (`0` = distributed mode, require a pool).
    pub local_cores: u32,
    /// Sweeps allowed to run concurrently.
    pub max_active: usize,
    /// Queued sweeps beyond the active set before rejection.
    pub max_queued: usize,
    /// Per-tenant trial admissions per second (`0` = unlimited).
    pub rate: f64,
    /// Token-bucket burst capacity.
    pub burst: f64,
    /// Per-tenant total trial budget (`0` = unlimited).
    pub quota_trials: u64,
    /// Default wave size applied to sweeps that do not request one.
    pub wave: usize,
    /// Dataset recipe — must match the pool's workers.
    pub dataset: DatasetChoice,
    /// Dataset size — must match the pool's workers.
    pub samples: usize,
    /// Dataset RNG seed — must match the pool's workers.
    pub seed: u64,
    /// CNN architectures — must match the pool's workers.
    pub cnn: bool,
    /// In-trial early-stop target — must match the pool's workers.
    pub target_accuracy: Option<f64>,
    /// CPU cores per experiment task.
    pub cores_per_task: u32,
    /// Serve live `GET /metrics` + `/healthz` here.
    pub status_addr: Option<String>,
    /// Block-plane inline threshold (see the run flag of the same name).
    pub inline_threshold: u64,
    /// Stage-tree prefix sharing for served grid/random sweeps.
    pub share_prefixes: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            listen: "127.0.0.1:7070".to_string(),
            workers: Vec::new(),
            expect_workers: 0,
            pool_timeout_secs: 30,
            local_cores: 0,
            max_active: 4,
            max_queued: 16,
            rate: 0.0,
            burst: 8.0,
            quota_trials: 0,
            wave: 0,
            dataset: DatasetChoice::Mnist,
            samples: 1_000,
            seed: 42,
            cnn: false,
            target_accuracy: None,
            cores_per_task: 1,
            status_addr: None,
            inline_threshold: 64 * 1024,
            share_prefixes: false,
        }
    }
}

/// What a sweep-client subcommand does once connected.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Submit a sweep; optionally stream it to completion.
    Submit {
        /// JSON search-space file.
        config: String,
        /// Sweep display name.
        name: String,
        /// Search algorithm.
        algo: AlgoChoice,
        /// Trial budget for sampled algorithms.
        trials: usize,
        /// RNG seed.
        seed: u64,
        /// Requested wave size (`0` = server default).
        wave: u32,
        /// Stay connected and stream the leaderboard to completion.
        watch: bool,
        /// Write the final leaderboard CSV here (implies `watch`).
        csv_out: Option<String>,
    },
    /// Print a sweep's status once.
    Status {
        /// Server-assigned sweep id.
        sweep_id: u64,
    },
    /// Subscribe to a sweep and stream it to completion.
    Watch {
        /// Server-assigned sweep id.
        sweep_id: u64,
    },
    /// Cancel a sweep.
    Cancel {
        /// Server-assigned sweep id.
        sweep_id: u64,
    },
}

/// Parsed sweep-client subcommand (`submit` / `status` / `watch` /
/// `cancel`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientArgs {
    /// Sweep server address.
    pub server: String,
    /// Tenant identity this connection submits under.
    pub tenant: String,
    /// The verb.
    pub action: ClientAction,
}

/// Which entry point a command line selects.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Drive an HPO run (the default).
    Run(CliArgs),
    /// Serve as a task-executing worker daemon (`hpo-run worker ...` /
    /// the `rcompss-worker` binary).
    Worker(WorkerArgs),
    /// Serve sweeps to many tenants over one shared pool
    /// (`hpo-run serve ...` / the `rcompss-server` binary).
    Serve(ServeArgs),
    /// Talk to a sweep server (`hpo-run submit|status|watch|cancel`).
    Client(ClientArgs),
}

/// Parse error with a usage-worthy message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The `--help` text.
pub const USAGE: &str = "\
hpo-run — distributed hyperparameter optimisation (PyCOMPSs-style)

USAGE:
    hpo-run --config <space.json> [OPTIONS]
    hpo-run worker [WORKER OPTIONS]
    hpo-run serve [SERVER OPTIONS]
    hpo-run submit --server <addr> --config <space.json> [CLIENT OPTIONS]
    hpo-run status|watch|cancel --server <addr> --sweep <id> [--tenant <t>]

OPTIONS:
    --config <file>        JSON search-space file (required)
    --algo <a>             grid | random | tpe | bayes      [grid]
    --dataset <d>          mnist | cifar10                  [mnist]
    --samples <n>          synthetic dataset size           [1000]
    --backend <b>          threaded | sim | distributed     [threaded]
    --workers <a,b,...>    worker host:port list (required for
                           --backend distributed)
    --nodes <n>            virtual nodes for --backend sim  [1]
    --cores-per-task <n>   CPU units per experiment         [1]
    --trials <n>           budget for random/tpe/bayes      [20]
    --seed <n>             RNG seed                         [42]
    --target-accuracy <x>  early-stop when reached
    --trace                enable Extrae-style tracing
    --trace-out <file>     write a Chrome trace_event JSON trace
                           (implies --trace; open in Perfetto)
    --graph <file>         write the task graph as DOT
    --out <file>           write trial results as CSV
    --metrics-out <prefix> write runtime metrics to <prefix>.prom
                           (Prometheus text) and <prefix>.jsonl
    --no-metrics           disable runtime metrics collection
    --cnn                  train CNNs instead of dense nets
    --ckpt-dir <dir>       checkpoint the sweep: crash-safe journal plus
                           periodic model snapshots under <dir>
    --ckpt-every <n>       snapshot cadence in epochs            [1]
    --ckpt-retain <n>      snapshots retained per trial          [2]
    --resume <dir>         resume an interrupted sweep from its
                           checkpoint directory: journaled-complete
                           trials are skipped, in-flight trials restart
                           from their latest snapshot
    --status-addr <addr>   serve live GET /metrics + /healthz here while
                           the run is in flight (Prometheus text format;
                           curl-able, e.g. 127.0.0.1:9100)
    --inline-threshold <n> distributed backend: values whose declared size
                           is >= n bytes travel content-addressed through
                           the block plane (cached per worker, shipped
                           once per node) instead of inline in every
                           Submit; 0 = everything, huge = never  [65536]
    --share-prefixes       stage-tree dedup: train shared config prefixes
                           once, fork the rest from bit-exact snapshots
                           (grid/random, threaded or distributed backend;
                           leaderboard identical, strictly fewer epochs)
    --no-share-prefixes    escape hatch: force the naive per-trial loop
                           even when --share-prefixes was passed
    --help                 show this text

WORKER OPTIONS (hpo-run worker / rcompss-worker):
    --listen <addr>        listen address        [127.0.0.1:7077]
    --name <s>             worker display name   [worker]
    --cores <n>            advertised CPU cores  [autodetect]
    --ckpt-every <n>       snapshot cadence in epochs (0 = off); snapshots
                           ride back to the driver so retried trials
                           resume mid-training after a worker loss
    --status-addr <addr>   serve this worker's live GET /metrics +
                           /healthz here (Prometheus text format)
    --cache-mem <mib>      decoded-block cache budget in MiB; least-
                           recently-used blocks are evicted and re-
                           fetched on demand                   [256]
    --dial <a,b,...>       dial into these driver/server addresses at
                           startup and join their pools (the worker still
                           listens as usual)
    --dataset, --samples, --seed, --cnn, --target-accuracy
                           dataset recipe — must match the driver, so the
                           worker rebuilds the identical objective

SERVER OPTIONS (hpo-run serve / rcompss-server):
    --listen <addr>        one listener for workers and sweep clients
                                                 [127.0.0.1:7070]
    --workers <a,b,...>    worker addresses to dial out to at startup
    --expect-workers <n>   workers expected to dial in (started with
                           --dial at this server) before serving  [0]
    --pool-timeout <s>     deadline in seconds for gathering the pool [30]
    --local-cores <n>      serve from a local thread pool of n cores
                           instead of remote workers (dev/test mode)
    --max-active <n>       sweeps running concurrently             [4]
    --max-queued <n>       queued sweeps before rejection          [16]
    --rate <r>             per-tenant trial admissions per second
                           (token bucket; 0 = unlimited)           [0]
    --burst <n>            token-bucket burst capacity             [8]
    --quota-trials <n>     per-tenant total trial budget
                           (0 = unlimited)                         [0]
    --wave <n>             default wave size for sweeps that do not
                           request one
    --status-addr <addr>   serve live GET /metrics + /healthz here
    --share-prefixes       stage-tree dedup for served grid/random sweeps
                           (pool workers must also register the stage
                           task; leaderboards stay bit-identical)
    --cores-per-task, --inline-threshold,
    --dataset, --samples, --seed, --cnn, --target-accuracy
                           as for a driver run; the dataset recipe must
                           match the pool's workers

CLIENT OPTIONS (hpo-run submit / status / watch / cancel):
    --server <addr>        sweep server address (required)
    --tenant <name>        tenant identity                  [default]
    --config <file>        JSON search-space file (submit; required)
    --name <s>             sweep display name               [file stem]
    --algo <a>             grid | random | tpe | bayes      [grid]
    --trials <n>           budget for random/tpe/bayes      [20]
    --seed <n>             RNG seed                         [42]
    --wave <n>             requested wave size (0 = server default)
    --watch                stream the leaderboard until the sweep ends
    --out <file>           write the final leaderboard CSV (implies
                           --watch)
    --sweep <id>           sweep id (status/watch/cancel; required)
";

fn take_value<'a>(flag: &str, it: &mut impl Iterator<Item = &'a str>) -> Result<&'a str, CliError> {
    it.next().ok_or_else(|| CliError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, CliError> {
    v.parse().map_err(|_| CliError(format!("{flag}: invalid value '{v}'")))
}

/// Parse an argument list (without the binary name).
pub fn parse(args: &[&str]) -> Result<CliArgs, CliError> {
    let mut out = CliArgs::default();
    let mut it = args.iter().copied();
    let mut saw_config = false;
    let mut saw_ckpt_knob = false;
    let mut resume_dir: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg {
            "--help" | "-h" => return Err(CliError(USAGE.to_string())),
            "--config" => {
                out.config = take_value(arg, &mut it)?.to_string();
                saw_config = true;
            }
            "--algo" => {
                out.algo = match take_value(arg, &mut it)? {
                    "grid" => AlgoChoice::Grid,
                    "random" => AlgoChoice::Random,
                    "tpe" => AlgoChoice::Tpe,
                    "bayes" => AlgoChoice::Bayes,
                    other => return Err(CliError(format!("unknown algorithm '{other}'"))),
                };
            }
            "--dataset" => {
                out.dataset = match take_value(arg, &mut it)? {
                    "mnist" => DatasetChoice::Mnist,
                    "cifar10" | "cifar" => DatasetChoice::Cifar10,
                    other => return Err(CliError(format!("unknown dataset '{other}'"))),
                };
            }
            "--backend" => {
                out.backend = match take_value(arg, &mut it)? {
                    "threaded" => BackendChoice::Threaded,
                    "sim" => BackendChoice::Sim,
                    "distributed" => BackendChoice::Distributed,
                    other => return Err(CliError(format!("unknown backend '{other}'"))),
                };
            }
            "--workers" => {
                out.workers = take_value(arg, &mut it)?
                    .split(',')
                    .map(str::trim)
                    .filter(|w| !w.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--samples" => out.samples = parse_num(arg, take_value(arg, &mut it)?)?,
            "--nodes" => out.nodes = parse_num(arg, take_value(arg, &mut it)?)?,
            "--cores-per-task" => out.cores_per_task = parse_num(arg, take_value(arg, &mut it)?)?,
            "--trials" => out.trials = parse_num(arg, take_value(arg, &mut it)?)?,
            "--seed" => out.seed = parse_num(arg, take_value(arg, &mut it)?)?,
            "--target-accuracy" => {
                out.target_accuracy = Some(parse_num(arg, take_value(arg, &mut it)?)?);
            }
            "--trace" => out.trace = true,
            "--trace-out" => {
                out.trace_out = Some(take_value(arg, &mut it)?.to_string());
                out.trace = true;
            }
            "--graph" => out.graph_out = Some(take_value(arg, &mut it)?.to_string()),
            "--out" => out.csv_out = Some(take_value(arg, &mut it)?.to_string()),
            "--metrics-out" => out.metrics_out = Some(take_value(arg, &mut it)?.to_string()),
            "--no-metrics" => out.no_metrics = true,
            "--cnn" => out.cnn = true,
            "--ckpt-dir" => out.ckpt_dir = Some(take_value(arg, &mut it)?.to_string()),
            "--ckpt-every" => {
                out.ckpt_every = parse_num(arg, take_value(arg, &mut it)?)?;
                saw_ckpt_knob = true;
            }
            "--ckpt-retain" => {
                out.ckpt_retain = parse_num(arg, take_value(arg, &mut it)?)?;
                saw_ckpt_knob = true;
            }
            "--resume" => {
                resume_dir = Some(take_value(arg, &mut it)?.to_string());
                out.resume = true;
            }
            "--status-addr" => out.status_addr = Some(take_value(arg, &mut it)?.to_string()),
            "--inline-threshold" => {
                out.inline_threshold = parse_num(arg, take_value(arg, &mut it)?)?;
            }
            "--share-prefixes" => out.share_prefixes = true,
            "--no-share-prefixes" => out.no_share_prefixes = true,
            other => return Err(CliError(format!("unknown flag '{other}'\n\n{USAGE}"))),
        }
    }
    if !saw_config {
        return Err(CliError(format!("--config is required\n\n{USAGE}")));
    }
    if out.no_metrics && out.metrics_out.is_some() {
        return Err(CliError("--metrics-out conflicts with --no-metrics".to_string()));
    }
    if out.nodes == 0 {
        return Err(CliError("--nodes must be at least 1".to_string()));
    }
    if out.cores_per_task == 0 {
        return Err(CliError("--cores-per-task must be at least 1".to_string()));
    }
    if out.backend == BackendChoice::Distributed && out.workers.is_empty() {
        return Err(CliError("--backend distributed requires --workers <addr,...>".to_string()));
    }
    if out.backend != BackendChoice::Distributed && !out.workers.is_empty() {
        return Err(CliError("--workers only applies to --backend distributed".to_string()));
    }
    if let Some(dir) = resume_dir {
        if out.ckpt_dir.is_some() {
            return Err(CliError(
                "--resume <dir> already names the checkpoint directory; drop --ckpt-dir"
                    .to_string(),
            ));
        }
        out.ckpt_dir = Some(dir);
    }
    if saw_ckpt_knob && out.ckpt_dir.is_none() {
        return Err(CliError(
            "--ckpt-every/--ckpt-retain require --ckpt-dir or --resume".to_string(),
        ));
    }
    if out.ckpt_every == 0 {
        return Err(CliError("--ckpt-every must be at least 1".to_string()));
    }
    if out.ckpt_retain == 0 {
        return Err(CliError("--ckpt-retain must be at least 1".to_string()));
    }
    Ok(out)
}

/// Parse a full command line, recognising the `worker`, `serve` and
/// sweep-client subcommands; anything else goes through [`parse`] as a
/// driver invocation.
pub fn parse_command(args: &[&str]) -> Result<Command, CliError> {
    match args.first() {
        Some(&"worker") => parse_worker(&args[1..]).map(Command::Worker),
        Some(&"serve") => parse_serve(&args[1..]).map(Command::Serve),
        Some(&verb @ ("submit" | "status" | "watch" | "cancel")) => {
            parse_client(verb, &args[1..]).map(Command::Client)
        }
        _ => parse(args).map(Command::Run),
    }
}

fn parse_dataset(v: &str) -> Result<DatasetChoice, CliError> {
    match v {
        "mnist" => Ok(DatasetChoice::Mnist),
        "cifar10" | "cifar" => Ok(DatasetChoice::Cifar10),
        other => Err(CliError(format!("unknown dataset '{other}'"))),
    }
}

fn parse_algo(v: &str) -> Result<AlgoChoice, CliError> {
    match v {
        "grid" => Ok(AlgoChoice::Grid),
        "random" => Ok(AlgoChoice::Random),
        "tpe" => Ok(AlgoChoice::Tpe),
        "bayes" => Ok(AlgoChoice::Bayes),
        other => Err(CliError(format!("unknown algorithm '{other}'"))),
    }
}

fn parse_addr_list(v: &str) -> Vec<String> {
    v.split(',').map(str::trim).filter(|w| !w.is_empty()).map(str::to_string).collect()
}

/// Parse the flags of the `serve` subcommand.
pub fn parse_serve(args: &[&str]) -> Result<ServeArgs, CliError> {
    let mut out = ServeArgs::default();
    let mut it = args.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--help" | "-h" => return Err(CliError(USAGE.to_string())),
            "--listen" => out.listen = take_value(arg, &mut it)?.to_string(),
            "--workers" => out.workers = parse_addr_list(take_value(arg, &mut it)?),
            "--expect-workers" => out.expect_workers = parse_num(arg, take_value(arg, &mut it)?)?,
            "--pool-timeout" => out.pool_timeout_secs = parse_num(arg, take_value(arg, &mut it)?)?,
            "--local-cores" => out.local_cores = parse_num(arg, take_value(arg, &mut it)?)?,
            "--max-active" => out.max_active = parse_num(arg, take_value(arg, &mut it)?)?,
            "--max-queued" => out.max_queued = parse_num(arg, take_value(arg, &mut it)?)?,
            "--rate" => out.rate = parse_num(arg, take_value(arg, &mut it)?)?,
            "--burst" => out.burst = parse_num(arg, take_value(arg, &mut it)?)?,
            "--quota-trials" => out.quota_trials = parse_num(arg, take_value(arg, &mut it)?)?,
            "--wave" => out.wave = parse_num(arg, take_value(arg, &mut it)?)?,
            "--dataset" => out.dataset = parse_dataset(take_value(arg, &mut it)?)?,
            "--samples" => out.samples = parse_num(arg, take_value(arg, &mut it)?)?,
            "--seed" => out.seed = parse_num(arg, take_value(arg, &mut it)?)?,
            "--cnn" => out.cnn = true,
            "--target-accuracy" => {
                out.target_accuracy = Some(parse_num(arg, take_value(arg, &mut it)?)?);
            }
            "--cores-per-task" => out.cores_per_task = parse_num(arg, take_value(arg, &mut it)?)?,
            "--status-addr" => out.status_addr = Some(take_value(arg, &mut it)?.to_string()),
            "--inline-threshold" => {
                out.inline_threshold = parse_num(arg, take_value(arg, &mut it)?)?;
            }
            "--share-prefixes" => out.share_prefixes = true,
            other => return Err(CliError(format!("unknown serve flag '{other}'\n\n{USAGE}"))),
        }
    }
    if out.max_active == 0 {
        return Err(CliError("--max-active must be at least 1".to_string()));
    }
    if out.cores_per_task == 0 {
        return Err(CliError("--cores-per-task must be at least 1".to_string()));
    }
    if out.local_cores == 0 && out.workers.is_empty() && out.expect_workers == 0 {
        return Err(CliError(
            "serve needs a pool: --workers and/or --expect-workers, or --local-cores for a \
             local thread pool"
                .to_string(),
        ));
    }
    if out.local_cores > 0 && (!out.workers.is_empty() || out.expect_workers > 0) {
        return Err(CliError("--local-cores excludes --workers/--expect-workers".to_string()));
    }
    Ok(out)
}

/// Parse the flags of one sweep-client verb (`submit`, `status`,
/// `watch`, `cancel`).
pub fn parse_client(verb: &str, args: &[&str]) -> Result<ClientArgs, CliError> {
    let mut server: Option<String> = None;
    let mut tenant = "default".to_string();
    let mut config: Option<String> = None;
    let mut name: Option<String> = None;
    let mut algo = AlgoChoice::Grid;
    let mut trials = 20usize;
    let mut seed = 42u64;
    let mut wave = 0u32;
    let mut watch = false;
    let mut csv_out: Option<String> = None;
    let mut sweep_id: Option<u64> = None;
    let mut it = args.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--help" | "-h" => return Err(CliError(USAGE.to_string())),
            "--server" => server = Some(take_value(arg, &mut it)?.to_string()),
            "--tenant" => tenant = take_value(arg, &mut it)?.to_string(),
            "--config" => config = Some(take_value(arg, &mut it)?.to_string()),
            "--name" => name = Some(take_value(arg, &mut it)?.to_string()),
            "--algo" => algo = parse_algo(take_value(arg, &mut it)?)?,
            "--trials" => trials = parse_num(arg, take_value(arg, &mut it)?)?,
            "--seed" => seed = parse_num(arg, take_value(arg, &mut it)?)?,
            "--wave" => wave = parse_num(arg, take_value(arg, &mut it)?)?,
            "--watch" => watch = true,
            "--out" => {
                csv_out = Some(take_value(arg, &mut it)?.to_string());
                watch = true;
            }
            "--sweep" => sweep_id = Some(parse_num(arg, take_value(arg, &mut it)?)?),
            other => return Err(CliError(format!("unknown {verb} flag '{other}'\n\n{USAGE}"))),
        }
    }
    let server = server.ok_or_else(|| CliError(format!("{verb} requires --server <addr>")))?;
    let action = match verb {
        "submit" => {
            let config =
                config.ok_or_else(|| CliError("submit requires --config <file>".to_string()))?;
            let name = name.unwrap_or_else(|| {
                std::path::Path::new(&config)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "sweep".to_string())
            });
            ClientAction::Submit { config, name, algo, trials, seed, wave, watch, csv_out }
        }
        _ => {
            let sweep_id =
                sweep_id.ok_or_else(|| CliError(format!("{verb} requires --sweep <id>")))?;
            match verb {
                "status" => ClientAction::Status { sweep_id },
                "watch" => ClientAction::Watch { sweep_id },
                "cancel" => ClientAction::Cancel { sweep_id },
                _ => unreachable!("verbs are matched in parse_command"),
            }
        }
    };
    Ok(ClientArgs { server, tenant, action })
}

/// Parse the flags of the `worker` subcommand.
pub fn parse_worker(args: &[&str]) -> Result<WorkerArgs, CliError> {
    let mut out = WorkerArgs::default();
    let mut it = args.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--help" | "-h" => return Err(CliError(USAGE.to_string())),
            "--listen" => out.listen = take_value(arg, &mut it)?.to_string(),
            "--name" => out.name = take_value(arg, &mut it)?.to_string(),
            "--cores" => out.cores = parse_num(arg, take_value(arg, &mut it)?)?,
            "--dataset" => {
                out.dataset = match take_value(arg, &mut it)? {
                    "mnist" => DatasetChoice::Mnist,
                    "cifar10" | "cifar" => DatasetChoice::Cifar10,
                    other => return Err(CliError(format!("unknown dataset '{other}'"))),
                };
            }
            "--samples" => out.samples = parse_num(arg, take_value(arg, &mut it)?)?,
            "--seed" => out.seed = parse_num(arg, take_value(arg, &mut it)?)?,
            "--cnn" => out.cnn = true,
            "--target-accuracy" => {
                out.target_accuracy = Some(parse_num(arg, take_value(arg, &mut it)?)?);
            }
            "--ckpt-every" => out.ckpt_every = parse_num(arg, take_value(arg, &mut it)?)?,
            "--status-addr" => out.status_addr = Some(take_value(arg, &mut it)?.to_string()),
            "--cache-mem" => out.cache_mem_mib = parse_num(arg, take_value(arg, &mut it)?)?,
            "--dial" => out.dial = parse_addr_list(take_value(arg, &mut it)?),
            other => return Err(CliError(format!("unknown worker flag '{other}'\n\n{USAGE}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_invocation() {
        let a = parse(&["--config", "space.json"]).unwrap();
        assert_eq!(a.config, "space.json");
        assert_eq!(a.algo, AlgoChoice::Grid);
        assert_eq!(a.backend, BackendChoice::Threaded);
        assert!(!a.trace);
    }

    #[test]
    fn full_invocation() {
        let a = parse(&[
            "--config",
            "s.json",
            "--algo",
            "tpe",
            "--dataset",
            "cifar10",
            "--samples",
            "500",
            "--backend",
            "sim",
            "--nodes",
            "28",
            "--cores-per-task",
            "48",
            "--trials",
            "64",
            "--seed",
            "7",
            "--target-accuracy",
            "0.95",
            "--trace",
            "--graph",
            "g.dot",
            "--out",
            "r.csv",
            "--cnn",
        ])
        .unwrap();
        assert_eq!(a.algo, AlgoChoice::Tpe);
        assert_eq!(a.dataset, DatasetChoice::Cifar10);
        assert_eq!(a.backend, BackendChoice::Sim);
        assert_eq!((a.nodes, a.cores_per_task, a.trials, a.seed), (28, 48, 64, 7));
        assert_eq!(a.target_accuracy, Some(0.95));
        assert!(a.trace && a.cnn);
        assert_eq!(a.graph_out.as_deref(), Some("g.dot"));
        assert_eq!(a.csv_out.as_deref(), Some("r.csv"));
    }

    #[test]
    fn metrics_flags_parse_and_conflict() {
        let a = parse(&["--config", "s.json", "--metrics-out", "results/run"]).unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("results/run"));
        assert!(!a.no_metrics);
        let b = parse(&["--config", "s.json", "--no-metrics"]).unwrap();
        assert!(b.no_metrics && b.metrics_out.is_none());
        let e = parse(&["--config", "s.json", "--no-metrics", "--metrics-out", "x"]).unwrap_err();
        assert!(e.0.contains("conflicts"), "{e}");
    }

    #[test]
    fn missing_config_is_an_error() {
        let e = parse(&["--algo", "grid"]).unwrap_err();
        assert!(e.0.contains("--config is required"));
    }

    #[test]
    fn bad_values_are_reported() {
        assert!(parse(&["--config", "x", "--algo", "sgd"]).is_err());
        assert!(parse(&["--config", "x", "--trials", "lots"]).is_err());
        assert!(parse(&["--config", "x", "--nodes", "0"]).is_err());
        assert!(parse(&["--config", "x", "--wat"]).is_err());
        assert!(parse(&["--config"]).is_err(), "dangling value");
    }

    #[test]
    fn help_returns_usage() {
        let e = parse(&["--help"]).unwrap_err();
        assert!(e.0.contains("USAGE"));
        assert!(e.0.contains("distributed"), "help documents the distributed backend");
        assert!(e.0.contains("--workers"));
        assert!(e.0.contains("worker [WORKER OPTIONS]"));
    }

    #[test]
    fn distributed_backend_parses_worker_list() {
        let a = parse(&[
            "--config",
            "s.json",
            "--backend",
            "distributed",
            "--workers",
            "127.0.0.1:7077, 127.0.0.1:7078",
        ])
        .unwrap();
        assert_eq!(a.backend, BackendChoice::Distributed);
        assert_eq!(a.workers, vec!["127.0.0.1:7077", "127.0.0.1:7078"]);
    }

    #[test]
    fn distributed_backend_requires_workers() {
        let e = parse(&["--config", "s.json", "--backend", "distributed"]).unwrap_err();
        assert!(e.0.contains("--workers"), "{e}");
        let e = parse(&["--config", "s.json", "--workers", "127.0.0.1:7077"]).unwrap_err();
        assert!(e.0.contains("only applies"), "{e}");
    }

    #[test]
    fn trace_out_implies_trace() {
        let a = parse(&["--config", "s.json", "--trace-out", "run.trace.json"]).unwrap();
        assert!(a.trace);
        assert_eq!(a.trace_out.as_deref(), Some("run.trace.json"));
    }

    #[test]
    fn worker_subcommand_parses() {
        let cmd = parse_command(&[
            "worker",
            "--listen",
            "0.0.0.0:9000",
            "--name",
            "gpu-box",
            "--cores",
            "8",
            "--dataset",
            "cifar10",
            "--samples",
            "500",
            "--seed",
            "7",
            "--cnn",
        ])
        .unwrap();
        let Command::Worker(w) = cmd else { panic!("expected worker subcommand") };
        assert_eq!(w.listen, "0.0.0.0:9000");
        assert_eq!(w.name, "gpu-box");
        assert_eq!(w.cores, 8);
        assert_eq!(w.dataset, DatasetChoice::Cifar10);
        assert_eq!((w.samples, w.seed), (500, 7));
        assert!(w.cnn);
    }

    #[test]
    fn worker_subcommand_defaults_and_errors() {
        let Command::Worker(w) = parse_command(&["worker"]).unwrap() else {
            panic!("expected worker")
        };
        assert_eq!(w, WorkerArgs::default());
        assert_eq!(w.listen, "127.0.0.1:7077");
        assert!(parse_worker(&["--wat"]).is_err());
        assert!(parse_worker(&["--listen"]).is_err(), "dangling value");
    }

    #[test]
    fn checkpoint_flags_parse() {
        let a = parse(&[
            "--config",
            "s.json",
            "--ckpt-dir",
            "ckpts/run1",
            "--ckpt-every",
            "5",
            "--ckpt-retain",
            "3",
        ])
        .unwrap();
        assert_eq!(a.ckpt_dir.as_deref(), Some("ckpts/run1"));
        assert_eq!((a.ckpt_every, a.ckpt_retain), (5, 3));
        assert!(!a.resume);
        // Defaults without any checkpoint flag: off.
        let b = parse(&["--config", "s.json"]).unwrap();
        assert_eq!(b.ckpt_dir, None);
        assert_eq!((b.ckpt_every, b.ckpt_retain), (1, 2));
    }

    #[test]
    fn resume_names_the_checkpoint_directory() {
        let a = parse(&["--config", "s.json", "--resume", "ckpts/run1"]).unwrap();
        assert!(a.resume);
        assert_eq!(a.ckpt_dir.as_deref(), Some("ckpts/run1"));
        let e = parse(&["--config", "s.json", "--resume", "ckpts/run1", "--ckpt-dir", "elsewhere"])
            .unwrap_err();
        assert!(e.0.contains("already names"), "{e}");
    }

    #[test]
    fn checkpoint_knobs_are_validated() {
        let e = parse(&["--config", "s.json", "--ckpt-every", "5"]).unwrap_err();
        assert!(e.0.contains("require --ckpt-dir"), "{e}");
        let e = parse(&["--config", "s.json", "--ckpt-dir", "d", "--ckpt-every", "0"]).unwrap_err();
        assert!(e.0.contains("--ckpt-every"), "{e}");
        let e =
            parse(&["--config", "s.json", "--ckpt-dir", "d", "--ckpt-retain", "0"]).unwrap_err();
        assert!(e.0.contains("--ckpt-retain"), "{e}");
        assert!(parse(&["--config", "s.json", "--resume"]).is_err(), "dangling value");
    }

    #[test]
    fn worker_checkpoint_cadence_parses() {
        let w = parse_worker(&["--ckpt-every", "3"]).unwrap();
        assert_eq!(w.ckpt_every, 3);
        assert_eq!(WorkerArgs::default().ckpt_every, 0, "worker snapshots default off");
    }

    #[test]
    fn help_documents_checkpointing() {
        let e = parse(&["--help"]).unwrap_err();
        assert!(e.0.contains("--ckpt-dir"));
        assert!(e.0.contains("--resume"));
        assert!(e.0.contains("--ckpt-every"));
    }

    #[test]
    fn status_addr_parses_on_both_entry_points() {
        let a = parse(&["--config", "s.json", "--status-addr", "127.0.0.1:9100"]).unwrap();
        assert_eq!(a.status_addr.as_deref(), Some("127.0.0.1:9100"));
        assert_eq!(parse(&["--config", "s.json"]).unwrap().status_addr, None, "off by default");
        let w = parse_worker(&["--status-addr", "0.0.0.0:9101"]).unwrap();
        assert_eq!(w.status_addr.as_deref(), Some("0.0.0.0:9101"));
        assert!(parse(&["--config", "s.json", "--status-addr"]).is_err(), "dangling value");
        let e = parse(&["--help"]).unwrap_err();
        assert!(e.0.contains("--status-addr"), "help documents the scrape endpoint");
    }

    #[test]
    fn data_plane_flags_parse() {
        let a = parse(&["--config", "s.json", "--inline-threshold", "4096"]).unwrap();
        assert_eq!(a.inline_threshold, 4096);
        assert_eq!(
            parse(&["--config", "s.json"]).unwrap().inline_threshold,
            64 * 1024,
            "block plane on by default above 64 KiB"
        );
        let w = parse_worker(&["--cache-mem", "64"]).unwrap();
        assert_eq!(w.cache_mem_mib, 64);
        assert_eq!(WorkerArgs::default().cache_mem_mib, 256);
        assert!(parse_worker(&["--cache-mem", "lots"]).is_err(), "non-numeric rejected");
        let e = parse(&["--help"]).unwrap_err();
        assert!(e.0.contains("--inline-threshold") && e.0.contains("--cache-mem"));
    }

    #[test]
    fn share_prefix_flags_parse() {
        let a = parse(&["--config", "s.json", "--share-prefixes"]).unwrap();
        assert!(a.share_prefixes && !a.no_share_prefixes);
        let b = parse(&["--config", "s.json"]).unwrap();
        assert!(!b.share_prefixes, "prefix sharing is opt-in");
        // The escape hatch co-exists with the opt-in flag (wrapper scripts
        // may pass both); the driver resolves it in favour of naive.
        let c = parse(&["--config", "s.json", "--share-prefixes", "--no-share-prefixes"]).unwrap();
        assert!(c.share_prefixes && c.no_share_prefixes);
        let s = parse_serve(&["--local-cores", "2", "--share-prefixes"]).unwrap();
        assert!(s.share_prefixes);
        assert!(!ServeArgs::default().share_prefixes);
        let e = parse(&["--help"]).unwrap_err();
        assert!(e.0.contains("--share-prefixes"), "help documents prefix sharing");
        assert!(e.0.contains("--no-share-prefixes"));
    }

    #[test]
    fn non_worker_first_arg_is_a_run_command() {
        let cmd = parse_command(&["--config", "s.json"]).unwrap();
        assert!(matches!(cmd, Command::Run(_)));
    }

    #[test]
    fn worker_dial_flag_parses() {
        let w = parse_worker(&["--dial", "10.0.0.1:7070, 10.0.0.2:7070"]).unwrap();
        assert_eq!(w.dial, vec!["10.0.0.1:7070", "10.0.0.2:7070"]);
        assert!(WorkerArgs::default().dial.is_empty(), "dial-out off by default");
        assert!(parse_worker(&["--dial"]).is_err(), "dangling value");
    }

    #[test]
    fn serve_subcommand_parses() {
        let cmd = parse_command(&[
            "serve",
            "--listen",
            "0.0.0.0:7070",
            "--workers",
            "w1:7077,w2:7077",
            "--max-active",
            "2",
            "--rate",
            "5.5",
            "--burst",
            "3",
            "--quota-trials",
            "100",
            "--wave",
            "4",
            "--dataset",
            "cifar10",
        ])
        .unwrap();
        let Command::Serve(s) = cmd else { panic!("expected serve subcommand") };
        assert_eq!(s.listen, "0.0.0.0:7070");
        assert_eq!(s.workers, vec!["w1:7077", "w2:7077"]);
        assert_eq!((s.max_active, s.max_queued), (2, 16));
        assert_eq!((s.rate, s.burst), (5.5, 3.0));
        assert_eq!((s.quota_trials, s.wave), (100, 4));
        assert_eq!(s.dataset, DatasetChoice::Cifar10);
    }

    #[test]
    fn serve_requires_a_pool() {
        let e = parse_serve(&[]).unwrap_err();
        assert!(e.0.contains("needs a pool"), "{e}");
        assert!(parse_serve(&["--local-cores", "4"]).is_ok(), "local pool is a pool");
        assert!(parse_serve(&["--expect-workers", "2"]).is_ok(), "dial-ins are a pool");
        let e = parse_serve(&["--local-cores", "4", "--workers", "w:1"]).unwrap_err();
        assert!(e.0.contains("excludes"), "{e}");
        let e = parse_serve(&["--workers", "w:1", "--max-active", "0"]).unwrap_err();
        assert!(e.0.contains("--max-active"), "{e}");
    }

    #[test]
    fn submit_subcommand_parses() {
        let cmd = parse_command(&[
            "submit",
            "--server",
            "127.0.0.1:7070",
            "--tenant",
            "acme",
            "--config",
            "sweeps/nightly.json",
            "--algo",
            "random",
            "--trials",
            "32",
            "--seed",
            "7",
            "--watch",
        ])
        .unwrap();
        let Command::Client(c) = cmd else { panic!("expected client subcommand") };
        assert_eq!(c.server, "127.0.0.1:7070");
        assert_eq!(c.tenant, "acme");
        let ClientAction::Submit { config, name, algo, trials, seed, watch, .. } = c.action else {
            panic!("expected submit action")
        };
        assert_eq!(config, "sweeps/nightly.json");
        assert_eq!(name, "nightly", "name defaults to the config file stem");
        assert_eq!(algo, AlgoChoice::Random);
        assert_eq!((trials, seed), (32, 7));
        assert!(watch);
    }

    #[test]
    fn submit_out_implies_watch() {
        let c =
            parse_client("submit", &["--server", "s:1", "--config", "x.json", "--out", "l.csv"])
                .unwrap();
        let ClientAction::Submit { watch, csv_out, .. } = c.action else { panic!("submit") };
        assert!(watch, "--out implies --watch");
        assert_eq!(csv_out.as_deref(), Some("l.csv"));
    }

    #[test]
    fn client_verbs_require_their_arguments() {
        let e = parse_client("submit", &["--config", "x.json"]).unwrap_err();
        assert!(e.0.contains("--server"), "{e}");
        let e = parse_client("submit", &["--server", "s:1"]).unwrap_err();
        assert!(e.0.contains("--config"), "{e}");
        let e = parse_client("cancel", &["--server", "s:1"]).unwrap_err();
        assert!(e.0.contains("--sweep"), "{e}");
        let c = parse_client("status", &["--server", "s:1", "--sweep", "3"]).unwrap();
        assert_eq!(c.action, ClientAction::Status { sweep_id: 3 });
        assert_eq!(c.tenant, "default");
        let c = parse_client("watch", &["--server", "s:1", "--sweep", "9"]).unwrap();
        assert_eq!(c.action, ClientAction::Watch { sweep_id: 9 });
    }

    #[test]
    fn help_documents_the_sweep_server() {
        let e = parse(&["--help"]).unwrap_err();
        assert!(e.0.contains("serve [SERVER OPTIONS]"));
        assert!(e.0.contains("--max-active"));
        assert!(e.0.contains("--quota-trials"));
        assert!(e.0.contains("--expect-workers"));
        assert!(e.0.contains("--dial"));
        assert!(e.0.contains("submit --server"));
    }
}
