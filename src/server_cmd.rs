//! The `serve` and sweep-client subcommands behind `rcompss-server` /
//! `hpo-run serve|submit|status|watch|cancel`.
//!
//! `serve` assembles the worker pool (dial-out, dial-in, or a local
//! thread pool), builds the shared objective from the dataset recipe, and
//! hands everything to [`hpo::server::SweepServer`] — then parks until
//! killed. The client verbs are thin wrappers over
//! [`hpo::client::SweepClient`].

use std::net::TcpListener;
use std::time::Duration;

use hpo::client::{SubmitSpec, SweepClient, SweepInfo};
use hpo::experiment::{ExperimentOptions, TrialCheckpoints};
use hpo::server::{gather_workers, state_name, PoolPlan, ServerConfig, SweepServer};
use hpo::EarlyStop;
use rcompss::{Constraint, DistributedConfig, Runtime, RuntimeConfig};
use rnet::LeaderRow;

use crate::cli::{ClientAction, ClientArgs, ServeArgs};
use crate::worker;

type AnyError = Box<dyn std::error::Error>;

/// Run a sweep server until killed.
pub fn serve(args: &ServeArgs) -> Result<(), AnyError> {
    hpo::wire::register_hpo_codecs();
    runmetrics::global().set_enabled(true);
    let (data, objective) = worker::build_objective(
        args.dataset,
        args.samples,
        args.seed,
        args.cnn,
        args.target_accuracy,
        TrialCheckpoints::default(),
    );
    let listener = TcpListener::bind(&args.listen)
        .map_err(|e| format!("cannot listen on {}: {e}", args.listen))?;
    let addr = listener.local_addr()?;
    println!("rcompss-server on {addr} (dataset {} × {} examples)", data.name, data.len());

    let rt = if args.local_cores > 0 {
        println!("local pool: {} thread(s)", args.local_cores);
        Runtime::threaded(RuntimeConfig::single_node(args.local_cores).with_metrics(true))
    } else {
        println!(
            "gathering pool: dialing {} worker(s), expecting {} dial-in(s)",
            args.workers.len(),
            args.expect_workers
        );
        let plan = PoolPlan {
            dial: args.workers.clone(),
            expect_dial_in: args.expect_workers,
            timeout: Duration::from_secs(args.pool_timeout_secs.max(1)),
        };
        let boots = gather_workers(&listener, &plan)?;
        let roster: Vec<String> =
            boots.iter().map(|b| format!("{} ({} cores)", b.name(), b.cores())).collect();
        println!("pool sealed: {}", roster.join(", "));
        Runtime::from_bootstraps(
            RuntimeConfig::single_node(1).with_metrics(true),
            boots,
            DistributedConfig { inline_threshold: args.inline_threshold, ..Default::default() },
        )
    };

    let mut opts =
        ExperimentOptions::default().with_constraint(Constraint::cpus(args.cores_per_task));
    if let Some(t) = args.target_accuracy {
        opts.early_stop = Some(EarlyStop::at_accuracy(t));
    }
    let cfg = ServerConfig {
        max_active: args.max_active,
        max_queued: args.max_queued,
        rate: args.rate,
        burst: args.burst,
        quota_trials: args.quota_trials,
        wave: (args.wave > 0).then_some(args.wave),
    };
    println!(
        "admission: {} active / {} queued; rate {}/s burst {}; quota {}",
        cfg.max_active,
        cfg.max_queued,
        if cfg.rate > 0.0 { cfg.rate.to_string() } else { "∞".to_string() },
        cfg.burst,
        if cfg.quota_trials > 0 { cfg.quota_trials.to_string() } else { "∞".to_string() },
    );
    // Prefix sharing needs full-length trials: a serve-wide early-stop
    // target would cut segments short, so it wins over --share-prefixes.
    let stage = (args.share_prefixes && args.target_accuracy.is_none())
        .then(|| worker::build_stage_objective(std::sync::Arc::clone(&data), args.cnn, 0));
    if args.share_prefixes && args.target_accuracy.is_some() {
        eprintln!("--share-prefixes ignored: --target-accuracy stops trials mid-training");
    }
    if stage.is_some() {
        println!("stage-tree prefix sharing enabled for grid/random sweeps");
    }
    let server = SweepServer::start_staged(listener, rt, objective, stage, opts, cfg)?;
    println!("sweep server ready on {addr}");

    // Live scrape endpoint: runtime + server series merged with the
    // process-global (training-internals) registry.
    let _status = match &args.status_addr {
        Some(status_addr) => {
            let reg = server.metrics();
            let status = rnet::StatusServer::bind(status_addr, move |path| {
                (path == "/metrics").then(|| {
                    let mut snap = reg.snapshot();
                    snap.merge(runmetrics::global().snapshot());
                    ("text/plain; version=0.0.4".to_string(), runmetrics::to_prometheus(&snap))
                })
            })
            .map_err(|e| format!("cannot serve --status-addr {status_addr}: {e}"))?;
            println!("status endpoint: http://{}/metrics", status.local_addr());
            Some(status)
        }
        None => None,
    };

    // Serve until the process is killed; `server` (and its runtime and
    // worker pool) lives exactly as long as this frame.
    loop {
        std::thread::park();
    }
}

/// Run one sweep-client verb.
pub fn client(args: &ClientArgs) -> Result<(), AnyError> {
    let mut client = SweepClient::connect(&args.server, &args.tenant)
        .map_err(|e| format!("cannot reach sweep server {}: {e}", args.server))?;
    match &args.action {
        ClientAction::Submit { config, name, algo, trials, seed, wave, watch, csv_out } => {
            let space_json = std::fs::read_to_string(config)
                .map_err(|e| format!("cannot read {config}: {e}"))?;
            let spec = SubmitSpec {
                name: name.clone(),
                space_json,
                algo: algo.wire_name().to_string(),
                trials: *trials as u32,
                seed: *seed,
                wave: *wave,
            };
            let info = client.submit(&spec).map_err(box_io)?.map_err(|r| r.to_string())?;
            println!(
                "sweep {} '{}' {} for tenant '{}' ({} planned trials)",
                info.sweep_id,
                name,
                state_name(info.state),
                args.tenant,
                info.total
            );
            if !*watch {
                println!(
                    "follow with: hpo-run watch --server {} --sweep {}",
                    args.server, info.sweep_id
                );
                return Ok(());
            }
            stream_to_end(&mut client, info.sweep_id, csv_out.as_deref())
        }
        ClientAction::Status { sweep_id } => {
            let info =
                client.status(*sweep_id, false).map_err(box_io)?.map_err(|r| r.to_string())?;
            print_status(&info);
            Ok(())
        }
        ClientAction::Watch { sweep_id } => {
            let info =
                client.status(*sweep_id, true).map_err(box_io)?.map_err(|r| r.to_string())?;
            print_status(&info);
            if hpo::server::is_terminal(info.state) {
                return Ok(());
            }
            stream_to_end(&mut client, *sweep_id, None)
        }
        ClientAction::Cancel { sweep_id } => {
            let info = client.cancel(*sweep_id).map_err(box_io)?.map_err(|r| r.to_string())?;
            if hpo::server::is_terminal(info.state) {
                println!("sweep {} already {}", info.sweep_id, state_name(info.state));
                return Ok(());
            }
            println!("cancel requested for sweep {} — draining in-flight trials", info.sweep_id);
            let end = client.wait_done(*sweep_id, |_| {}).map_err(box_io)?;
            println!(
                "sweep {} {} after {:.1}s ({})",
                end.sweep_id,
                state_name(end.state),
                end.wall_us as f64 / 1e6,
                if end.message.is_empty() { "no message" } else { &end.message }
            );
            Ok(())
        }
    }
}

fn box_io(e: std::io::Error) -> AnyError {
    Box::new(e)
}

fn print_status(info: &SweepInfo) {
    println!(
        "sweep {}: {} — {}/{} done, {} failed, best {:.4}{}{}",
        info.sweep_id,
        state_name(info.state),
        info.done,
        info.total,
        info.failed,
        info.best_acc,
        if info.best_label.is_empty() { String::new() } else { format!(" ({})", info.best_label) },
        if info.throttled > 0 {
            format!(" — throttled {}×", info.throttled)
        } else {
            String::new()
        },
    );
}

/// Stream a subscribed sweep to completion, printing each trial and
/// optionally writing the final leaderboard CSV (same `config,accuracy,
/// epochs_run,task_us` columns as a standalone run's `--out`).
fn stream_to_end(
    client: &mut SweepClient,
    sweep_id: u64,
    csv_out: Option<&str>,
) -> Result<(), AnyError> {
    let mut rows: Vec<LeaderRow> = Vec::new();
    let mut best = f64::MIN;
    let end = client
        .wait_done(sweep_id, |row| {
            let marker = if row.accuracy > best {
                best = row.accuracy;
                " *"
            } else {
                ""
            };
            println!(
                "[{:>3}] {} acc={:.4} epochs={} ({:.1} ms){marker}",
                rows.len() + 1,
                row.label,
                row.accuracy,
                row.epochs,
                row.task_us as f64 / 1e3,
            );
            rows.push(row.clone());
        })
        .map_err(box_io)?;
    println!(
        "sweep {} {}: {} trials in {:.1}s{}",
        end.sweep_id,
        state_name(end.state),
        rows.len(),
        end.wall_us as f64 / 1e6,
        if end.message.is_empty() { String::new() } else { format!(" — {}", end.message) },
    );
    if let Some(path) = csv_out {
        let mut csv = String::from("config,accuracy,epochs_run,task_us\n");
        for row in &rows {
            csv.push_str(&format!(
                "\"{}\",{:.6},{},{}\n",
                row.label, row.accuracy, row.epochs, row.task_us
            ));
        }
        std::fs::write(path, csv)?;
        println!("leaderboard CSV written to {path}");
    }
    Ok(())
}
