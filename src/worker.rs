//! The worker daemon behind `rcompss-worker` / `hpo-run worker`.
//!
//! A distributed run needs the experiment task to exist on both sides of
//! the wire under the same name, closed over the same objective — the
//! COMPSs equivalent of every worker node importing the user's Python
//! module. [`build_objective`] is that shared recipe: the driver and the
//! worker both call it with the same dataset parameters (`--dataset`,
//! `--samples`, `--seed`, `--cnn`, `--target-accuracy`), so the function
//! the worker executes is bit-identical to the one a threaded run would
//! execute locally.

use std::sync::Arc;

use hpo::experiment::{ExperimentOptions, Objective, TrialCheckpoints};
use hpo::space::ConfigValue;
use hpo::stagetree::{stage_task_def, StageObjective};
use hpo::wire::{experiment_task_def, register_hpo_codecs};
use hpo::EarlyStop;
use rcompss::{TaskRegistry, WorkerConfig, WorkerServer};
use tinyml::data::SyntheticSpec;
use tinyml::Dataset;

use crate::cli::{DatasetChoice, WorkerArgs};

/// Build the training dataset and objective from the CLI dataset recipe.
///
/// Deterministic in its arguments: the same `(dataset, samples, seed,
/// cnn, target_accuracy)` tuple yields the same synthetic data and the
/// same objective on every process that calls it. `ckpts` layers
/// checkpointing on top without changing the training trajectory: the
/// driver passes its snapshot store and sweep journal, a worker passes
/// just a cadence (its snapshots travel over the runtime's ambient
/// channel), and `TrialCheckpoints::default()` turns it off.
pub fn build_objective(
    dataset: DatasetChoice,
    samples: usize,
    seed: u64,
    cnn: bool,
    target_accuracy: Option<f64>,
    ckpts: TrialCheckpoints,
) -> (Arc<Dataset>, Objective) {
    let spec = match (dataset, cnn) {
        (DatasetChoice::Mnist, false) => SyntheticSpec::mnist_like(),
        (DatasetChoice::Mnist, true) => SyntheticSpec::mnist_like_spatial(),
        (DatasetChoice::Cifar10, false) => SyntheticSpec::cifar_like(),
        (DatasetChoice::Cifar10, true) => SyntheticSpec::cifar_like_spatial(),
    };
    let name = match dataset {
        DatasetChoice::Mnist => "mnist-like",
        DatasetChoice::Cifar10 => "cifar10-like",
    };
    let data = Arc::new(Dataset::synthetic(name, samples, &spec, seed));
    let early = target_accuracy.map(EarlyStop::at_accuracy);
    let objective = if cnn {
        // Inject the arch key by wrapping the objective.
        let inner = hpo::experiment::tinyml_objective_checkpointed(
            Arc::clone(&data),
            vec![64],
            early,
            ckpts,
        );
        let wrapped: Objective = Arc::new(move |cfg, budget| {
            let mut cfg = cfg.clone();
            if cfg.get_str("arch").is_none() {
                cfg.set("arch", ConfigValue::Str("cnn".into()));
            }
            inner(&cfg, budget)
        });
        wrapped
    } else {
        hpo::experiment::tinyml_objective_checkpointed(Arc::clone(&data), vec![64], early, ckpts)
    };
    (data, objective)
}

/// The stage-tree counterpart of [`build_objective`]: same dataset
/// recipe, same hidden widths, same `--cnn` arch injection — so a stage
/// segment trains the identical trajectory the plain experiment task
/// would, one fork at a time. (Early stop is a driver-side concern the
/// stage tree refuses anyway: a mid-training halt would break segment
/// chaining.)
pub fn build_stage_objective(data: Arc<Dataset>, cnn: bool, ckpt_every: u32) -> StageObjective {
    StageObjective { data, hidden: vec![64], default_arch_cnn: cnn, ckpt_every }
}

/// Run a worker daemon until killed: register the HPO codecs and the
/// experiment task, bind the listen socket, and serve drivers — one
/// readiness-driven event loop owning every driver connection, plus one
/// executor thread per advertised core (see DESIGN.md, "The rnet wire
/// protocol and event loop").
pub fn serve(args: &WorkerArgs) -> Result<(), Box<dyn std::error::Error>> {
    register_hpo_codecs();
    // Worker-local counters (task executions, epoch timing) report to the
    // process-global registry: they feed the StatsSnapshot frames shipped
    // to the driver on every heartbeat, and the local scrape endpoint.
    runmetrics::global().set_enabled(true);
    // Cadence only: a worker has no journal or on-disk store — its
    // snapshots ride the runtime's ambient channel back to the driver.
    let ckpts = TrialCheckpoints { every: args.ckpt_every, ..TrialCheckpoints::default() };
    let (data, objective) = build_objective(
        args.dataset,
        args.samples,
        args.seed,
        args.cnn,
        args.target_accuracy,
        ckpts,
    );
    // Register the stage-segment task alongside the experiment task: the
    // same pool then serves naive and prefix-shared sweeps alike, and the
    // driver decides per run which one to submit.
    let stage = build_stage_objective(Arc::clone(&data), args.cnn, args.ckpt_every);
    let registry = TaskRegistry::new()
        .with(experiment_task_def(&ExperimentOptions::default(), &objective))
        .with(stage_task_def(&ExperimentOptions::default(), &stage));

    let cores = if args.cores > 0 {
        args.cores
    } else {
        std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(1)
    };
    let cfg = WorkerConfig {
        name: args.name.clone(),
        cores,
        cache_mem_bytes: args.cache_mem_mib * 1024 * 1024,
        dial: args.dial.clone(),
        ..WorkerConfig::default()
    };
    let server = WorkerServer::bind(&args.listen, cfg, registry)?;
    println!(
        "rcompss-worker '{}' listening on {} ({} cores, dataset {} × {})",
        args.name,
        server.local_addr()?,
        cores,
        data.name,
        data.len(),
    );
    if !args.dial.is_empty() {
        println!("dialing into: {}", args.dial.join(", "));
    }
    if args.ckpt_every > 0 {
        println!("model snapshots every {} epoch(s), shipped to the driver", args.ckpt_every);
    }
    // Live scrape endpoint: this worker's own counters, independent of the
    // driver's aggregate view. Held until `run` returns.
    let _status = match &args.status_addr {
        Some(addr) => {
            let server = rnet::StatusServer::bind(addr, |path| {
                (path == "/metrics").then(|| {
                    let snap = runmetrics::global().snapshot();
                    ("text/plain; version=0.0.4".to_string(), runmetrics::to_prometheus(&snap))
                })
            })
            .map_err(|e| format!("cannot serve --status-addr {addr}: {e}"))?;
            println!("status endpoint: http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };
    server.run()?;
    Ok(())
}
