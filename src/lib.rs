//! Root crate of the reproduction: re-exports the workspace crates and
//! hosts the `hpo-run` launcher's CLI module (see `src/main.rs`).

pub mod cli;
pub mod server_cmd;
pub mod worker;

pub use cluster;
pub use hpo;
pub use paratrace;
pub use rcompss;
pub use tinyml;
