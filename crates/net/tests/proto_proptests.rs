//! Property tests for the wire protocol: random frames must survive
//! encode → split-at-arbitrary-boundaries → decode, and random garbage must
//! never panic the decoder.

use proptest::prelude::*;
use rnet::{Blob, Frame, FrameReader, LeaderRow, WireArg};

fn arb_blob() -> impl Strategy<Value = Blob> {
    ("[a-z.]{0,12}", proptest::collection::vec(any::<u8>(), 0..200))
        .prop_map(|(tag, bytes)| Blob { tag, bytes })
}

// The vendored proptest has no `Arbitrary` for u128: build hashes from
// two u64 halves.
fn arb_hash() -> impl Strategy<Value = u128> {
    (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
}

fn arb_arg() -> impl Strategy<Value = WireArg> {
    prop_oneof![
        (any::<u64>(), arb_blob()).prop_map(|(key, blob)| WireArg::Inline { key, blob }),
        any::<u64>().prop_map(|key| WireArg::Cached { key }),
        (any::<u64>(), arb_hash()).prop_map(|(key, hash)| WireArg::Block { key, hash }),
    ]
}

fn arb_row() -> impl Strategy<Value = LeaderRow> {
    ("[ -~]{0,40}", -1e300f64..1e300f64, any::<u32>(), any::<u64>()).prop_map(
        |(label, accuracy, epochs, task_us)| LeaderRow { label, accuracy, epochs, task_us },
    )
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        ("[ -~]{0,24}", any::<u32>(), 0u32..16, any::<u32>())
            .prop_map(|(name, cores, gpus, mem_gib)| Frame::Hello { name, cores, gpus, mem_gib }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            proptest::option::of("[a-z._]{1,20}"),
            0u32..4,
            proptest::collection::vec(any::<u32>(), 0..8),
            proptest::collection::vec(any::<u32>(), 0..4),
            proptest::collection::vec(arb_arg(), 0..5),
        )
            .prop_map(
                |(exec_id, task_id, attempt, node, fn_id, fn_name, variant, cores, gpus, args)| {
                    Frame::Submit {
                        exec_id,
                        task_id,
                        attempt,
                        node,
                        fn_id,
                        fn_name,
                        variant,
                        cores,
                        gpus,
                        args,
                    }
                }
            ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(arb_blob(), 0..4)
        )
            .prop_map(|(exec_id, recv_us, start_us, end_us, outputs)| Frame::Done {
                exec_id,
                recv_us,
                start_us,
                end_us,
                outputs
            }),
        (any::<u64>(), "[ -~]{0,60}")
            .prop_map(|(exec_id, message)| Frame::Failed { exec_id, message }),
        (any::<u64>(), any::<u64>(), any::<bool>())
            .prop_map(|(seq, t_send_us, telemetry)| Frame::Heartbeat { seq, t_send_us, telemetry }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(seq, t_send_us, recv_us, reply_us)| Frame::HeartbeatAck {
                seq,
                t_send_us,
                recv_us,
                reply_us
            }
        ),
        any::<u64>().prop_map(|key| Frame::Fetch { key }),
        (any::<u64>(), arb_blob()).prop_map(|(key, blob)| Frame::Data { key, blob }),
        proptest::collection::vec(any::<u8>(), 0..200)
            .prop_map(|bytes| Frame::TraceChunk { bytes }),
        (
            any::<u64>(),
            proptest::collection::vec(("[a-z_]{1,20}", any::<u64>()), 0..6),
            proptest::collection::vec(("[a-z_]{1,20}", -1e300f64..1e300f64), 0..6),
        )
            .prop_map(|(wall_us, counters, gauges)| Frame::StatsSnapshot {
                wall_us,
                counters,
                gauges
            }),
        (arb_hash(), arb_blob()).prop_map(|(hash, blob)| Frame::BlockPut { hash, blob }),
        arb_hash().prop_map(|hash| Frame::BlockRequest { hash }),
        (arb_hash(), arb_blob()).prop_map(|(hash, blob)| Frame::BlockData { hash, blob }),
        arb_hash().prop_map(|hash| Frame::BlockEvict { hash }),
        ("[ -~]{0,24}", any::<u32>())
            .prop_map(|(tenant, proto)| Frame::ClientHello { tenant, proto }),
        ("[ -~]{0,24}", "[ -~]{0,120}", "[a-z]{0,8}", any::<u32>(), any::<u64>(), any::<u32>())
            .prop_map(|(name, space_json, algo, trials, seed, wave)| Frame::SubmitSweep {
                name,
                space_json,
                algo,
                trials,
                seed,
                wave
            }),
        (any::<u32>(), "[ -~]{0,60}")
            .prop_map(|(code, message)| Frame::SweepReject { code, message }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            -1e300f64..1e300f64,
            "[ -~]{0,40}",
            any::<u64>(),
            any::<u32>(),
        )
            .prop_map(
                |(
                    sweep_id,
                    state,
                    done,
                    failed,
                    total,
                    best_acc,
                    best_label,
                    throttled,
                    follow,
                )| {
                    Frame::SweepStatus {
                        sweep_id,
                        state,
                        done,
                        failed,
                        total,
                        best_acc,
                        best_label,
                        throttled,
                        follow,
                    }
                }
            ),
        (any::<u64>(), proptest::collection::vec(arb_row(), 0..6))
            .prop_map(|(sweep_id, rows)| Frame::LeaderboardChunk { sweep_id, rows }),
        any::<u64>().prop_map(|sweep_id| Frame::CancelSweep { sweep_id }),
        (any::<u64>(), any::<u32>(), any::<u64>(), "[ -~]{0,60}").prop_map(
            |(sweep_id, state, wall_us, message)| Frame::SweepDone {
                sweep_id,
                state,
                wall_us,
                message
            }
        ),
        Just(Frame::Shutdown),
    ]
}

proptest! {
    /// Any sequence of frames, delivered chopped at arbitrary boundaries,
    /// reassembles to exactly the original sequence.
    #[test]
    fn frames_survive_arbitrary_split_boundaries(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        cuts in proptest::collection::vec(1usize..64, 0..32),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        // Split the byte stream at the cumulative cut points.
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        let mut at = 0;
        let mut cuts = cuts.into_iter();
        while at < wire.len() {
            let step = cuts.next().unwrap_or(wire.len()).min(wire.len() - at);
            reader.extend(&wire[at..at + step]);
            at += step;
            while let Some(f) = reader.next_frame().expect("valid stream never errors") {
                seen.push(f);
            }
        }
        prop_assert_eq!(seen, frames);
        prop_assert_eq!(reader.pending(), 0);
    }

    /// A lone frame decodes from its exact buffer and from every prefix
    /// returns "incomplete" rather than garbage or panic.
    #[test]
    fn single_frame_roundtrip_and_prefix_safety(frame in arb_frame()) {
        let buf = frame.encode();
        let (decoded, used) = Frame::decode(&buf).unwrap().expect("complete");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(used, buf.len());
        for cut in 1..buf.len() {
            prop_assert_eq!(Frame::decode(&buf[..cut]).unwrap(), None);
        }
    }

    /// Random bytes never panic the decoder: they either fail cleanly or
    /// wait for more input.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::decode(&bytes);
    }
}
