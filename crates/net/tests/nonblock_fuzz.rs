//! Fuzz-style tests for the event-loop decode path: every round-trip frame
//! sequence is fed through [`RecvBuf`] byte-by-byte and in random chunk
//! partitions, and must reassemble to exactly what a one-shot
//! [`FrameRef::decode`] pass produces. Random garbage and corrupted
//! streams must error cleanly, never panic.

use std::io::{self, Read};

use proptest::prelude::*;
use rnet::{Blob, Fill, Frame, FrameRef, RecvBuf, WireArg};

fn arb_blob() -> impl Strategy<Value = Blob> {
    ("[a-z.]{0,12}", proptest::collection::vec(any::<u8>(), 0..200))
        .prop_map(|(tag, bytes)| Blob { tag, bytes })
}

fn arb_arg() -> impl Strategy<Value = WireArg> {
    prop_oneof![
        (any::<u64>(), arb_blob()).prop_map(|(key, blob)| WireArg::Inline { key, blob }),
        any::<u64>().prop_map(|key| WireArg::Cached { key }),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        ("[ -~]{0,24}", any::<u32>(), 0u32..16, any::<u32>())
            .prop_map(|(name, cores, gpus, mem_gib)| Frame::Hello { name, cores, gpus, mem_gib }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
            proptest::option::of("[a-z._]{1,20}"),
            0u32..4,
            proptest::collection::vec(any::<u32>(), 0..8),
            proptest::collection::vec(any::<u32>(), 0..4),
            proptest::collection::vec(arb_arg(), 0..5),
        )
            .prop_map(
                |(exec_id, task_id, attempt, node, fn_id, fn_name, variant, cores, gpus, args)| {
                    Frame::Submit {
                        exec_id,
                        task_id,
                        attempt,
                        node,
                        fn_id,
                        fn_name,
                        variant,
                        cores,
                        gpus,
                        args,
                    }
                }
            ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(arb_blob(), 0..4)
        )
            .prop_map(|(exec_id, recv_us, start_us, end_us, outputs)| Frame::Done {
                exec_id,
                recv_us,
                start_us,
                end_us,
                outputs
            }),
        (any::<u64>(), "[ -~]{0,60}")
            .prop_map(|(exec_id, message)| Frame::Failed { exec_id, message }),
        (any::<u64>(), any::<u64>(), any::<bool>())
            .prop_map(|(seq, t_send_us, telemetry)| Frame::Heartbeat { seq, t_send_us, telemetry }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(seq, t_send_us, recv_us, reply_us)| Frame::HeartbeatAck {
                seq,
                t_send_us,
                recv_us,
                reply_us
            }
        ),
        any::<u64>().prop_map(|key| Frame::Fetch { key }),
        (any::<u64>(), arb_blob()).prop_map(|(key, blob)| Frame::Data { key, blob }),
        proptest::collection::vec(any::<u8>(), 0..200)
            .prop_map(|bytes| Frame::TraceChunk { bytes }),
        (
            any::<u64>(),
            proptest::collection::vec(("[a-z_]{1,20}", any::<u64>()), 0..6),
            proptest::collection::vec(("[a-z_]{1,20}", -1e300f64..1e300f64), 0..6),
        )
            .prop_map(|(wall_us, counters, gauges)| Frame::StatsSnapshot {
                wall_us,
                counters,
                gauges
            }),
        Just(Frame::Shutdown),
    ]
}

/// A socket stand-in that delivers `data` in the scripted chunk sizes,
/// interposing a `WouldBlock` between chunks (like a level-triggered
/// non-blocking socket between readiness events), then EOF.
struct Chunked<'a> {
    data: &'a [u8],
    chunks: Vec<usize>,
    next_chunk: usize,
    pos: usize,
    /// Alternate chunk / WouldBlock so the fill loop exercises both arms.
    blocked: bool,
}

impl<'a> Chunked<'a> {
    fn new(data: &'a [u8], chunks: Vec<usize>) -> Chunked<'a> {
        Chunked { data, chunks, next_chunk: 0, pos: 0, blocked: false }
    }
}

impl Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos == self.data.len() {
            return Ok(0); // EOF
        }
        if self.blocked {
            self.blocked = false;
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "not ready"));
        }
        let want = self.chunks.get(self.next_chunk).copied().unwrap_or(usize::MAX);
        self.next_chunk += 1;
        let n = want.min(buf.len()).min(self.data.len() - self.pos).max(1);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        self.blocked = true;
        Ok(n)
    }
}

/// One-shot oracle: decode the whole contiguous byte stream with the
/// zero-copy decoder.
fn oneshot(wire: &[u8]) -> Vec<Frame> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < wire.len() {
        let (frame, used) = FrameRef::decode(&wire[at..])
            .expect("oracle decode of a valid stream")
            .expect("oracle stream holds only whole frames");
        out.push(frame.to_owned());
        at += used;
    }
    out
}

/// Run the incremental decoder over `wire` delivered in `chunks`-sized
/// reads, draining frames after every fill exactly like the event loops.
fn incremental(wire: &[u8], chunks: Vec<usize>) -> Result<Vec<Frame>, rnet::DecodeError> {
    let mut src = Chunked::new(wire, chunks);
    let mut recv = RecvBuf::new();
    let mut out = Vec::new();
    while !matches!(recv.fill_from(&mut src).expect("Chunked only errors WouldBlock"), Fill::Eof) {
        while let Some(frame) = recv.next_frame()? {
            out.push(frame.to_owned());
        }
    }
    while let Some(frame) = recv.next_frame()? {
        out.push(frame.to_owned());
    }
    Ok(out)
}

proptest! {
    /// Byte-by-byte delivery — the worst-case partition — must match the
    /// one-shot decode of the same stream exactly.
    #[test]
    fn byte_by_byte_matches_oneshot(frames in proptest::collection::vec(arb_frame(), 1..6)) {
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let got = incremental(&wire, vec![1; wire.len()]).expect("valid stream decodes");
        prop_assert_eq!(&got, &oneshot(&wire));
        prop_assert_eq!(&got, &frames);
    }

    /// Random chunk partitions must reassemble identically, regardless of
    /// where the boundaries land relative to frame headers and payloads.
    #[test]
    fn random_partitions_match_oneshot(
        frames in proptest::collection::vec(arb_frame(), 1..8),
        chunks in proptest::collection::vec(1usize..97, 1..48),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let got = incremental(&wire, chunks).expect("valid stream decodes");
        prop_assert_eq!(&got, &oneshot(&wire));
        prop_assert_eq!(&got, &frames);
    }

    /// Pure garbage bytes must never panic the incremental decoder: it
    /// either waits for more bytes or reports a clean decode error.
    #[test]
    fn garbage_never_panics(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
        chunks in proptest::collection::vec(1usize..33, 1..32),
    ) {
        let _ = incremental(&junk, chunks);
    }

    /// A single flipped byte in a valid stream must never panic: the
    /// decoder yields some prefix of frames and then errors or stalls.
    #[test]
    fn corrupted_stream_never_panics(
        frames in proptest::collection::vec(arb_frame(), 1..5),
        flip_at in any::<usize>(),
        flip_bits in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            f.encode_into(&mut wire);
        }
        let at = flip_at % wire.len();
        wire[at] ^= flip_bits;
        let _ = incremental(&wire, vec![7; wire.len() / 7 + 1]);
    }
}
