//! `rnet` — the wire layer of the distributed rcompss backend.
//!
//! A deliberately small, dependency-free protocol stack in three layers:
//!
//! * [`varint`] — LEB128 integers, the length prefix and every integer
//!   field;
//! * [`wire`] — field primitives (ints, floats, strings, byte strings) and
//!   a sequential payload [`wire::Reader`]; application value codecs build
//!   on these so driver and worker agree byte for byte;
//! * [`frame`] + [`conn`] — the versioned, magic-prefixed frame model
//!   (task submit with interned function names, done/failed, heartbeat,
//!   data fetch, shutdown) and the incremental [`conn::FrameReader`] that
//!   survives arbitrary read boundaries.
//!
//! The crate knows nothing about tasks, schedulers, or values — payloads
//! are opaque tagged [`frame::Blob`]s. That keeps the dependency arrow
//! pointing one way: `rcompss` (and the HPO layer above it) depend on
//! `rnet`, never the reverse.

#![warn(missing_docs)]

pub mod conn;
pub mod frame;
pub mod varint;
pub mod wire;

pub use conn::{read_frame, write_frame, write_frames, FrameReader};
pub use frame::{Blob, DecodeError, Frame, WireArg, MAGIC, MAX_PAYLOAD, VERSION};
pub use wire::{Reader, WireError};
