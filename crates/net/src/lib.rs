//! `rnet` — the wire layer of the distributed rcompss backend.
//!
//! A deliberately small, dependency-free protocol stack:
//!
//! * [`varint`] — LEB128 integers, the length prefix and every integer
//!   field;
//! * [`wire`] — field primitives (ints, floats, strings, byte strings) and
//!   a sequential payload [`wire::Reader`]; application value codecs build
//!   on these so driver and worker agree byte for byte;
//! * [`frame`] — the versioned, magic-prefixed frame model (task submit
//!   with interned function names, done/failed, heartbeat, data fetch,
//!   shutdown), with both owning ([`Frame::decode`]) and zero-copy
//!   ([`frame::FrameRef::decode`]) decode paths;
//! * [`conn`] — blocking helpers ([`read_frame`], [`write_frames`]) and
//!   the incremental [`conn::FrameReader`], used for handshakes and as the
//!   oracle the event-loop decoder is tested against;
//! * [`poll`] + [`nonblock`] — the readiness layer: an epoll/poll
//!   [`poll::Poller`] with a self-pipe [`poll::Waker`], and per-connection
//!   [`nonblock::RecvBuf`]/[`nonblock::SendBuf`] reusable buffers that the
//!   event-loop backend builds its connection state machines from.
//!
//! The crate knows nothing about tasks, schedulers, or values — payloads
//! are opaque tagged [`frame::Blob`]s. That keeps the dependency arrow
//! pointing one way: `rcompss` (and the HPO layer above it) depend on
//! `rnet`, never the reverse.
//!
//! Encode on one side, decode on the other — the 30-second tour:
//!
//! ```
//! use rnet::{Blob, Frame, FrameReader};
//!
//! let submit = Frame::Data {
//!     key: (3 << 32) | 1,
//!     blob: Blob { tag: "hpo.config".into(), bytes: vec![1, 2, 3] },
//! };
//! let wire = submit.encode();
//!
//! // The incremental reader tolerates any read boundary.
//! let mut reader = FrameReader::new();
//! let (a, b) = wire.split_at(wire.len() / 2);
//! reader.extend(a);
//! assert!(reader.next_frame().unwrap().is_none(), "half a frame: wait");
//! reader.extend(b);
//! assert_eq!(reader.next_frame().unwrap(), Some(submit));
//! ```

#![deny(missing_docs)]

pub mod conn;
pub mod frame;
pub mod nonblock;
pub mod poll;
pub mod status;
pub mod varint;
pub mod wire;

pub use conn::{read_frame, write_frame, write_frames, FrameReader};
pub use frame::{
    Blob, BlobRef, DecodeError, Frame, FrameRef, LeaderRow, LeaderRowRef, WireArg, WireArgRef,
    MAGIC, MAX_PAYLOAD, VERSION,
};
pub use nonblock::{Fill, RecvBuf, SendBuf};
pub use poll::{Event, Interest, Poller, Waker};
pub use status::StatusServer;
pub use wire::{Reader, WireError};
