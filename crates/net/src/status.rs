//! A minimal HTTP/1.0 status endpoint for live scrapes.
//!
//! Prometheus-style observability wants a `GET /metrics` that any scraper
//! (or a bare `curl`) can hit while a run is in flight. Pulling in a web
//! framework for two read-only routes would break the crate's
//! dependency-free rule, so this module implements the 1 % of HTTP the
//! text exposition format needs: parse the request line of a `GET`, answer
//! with `HTTP/1.0`, `Content-Type`, `Content-Length`, a blank line and the
//! body, then close. `HTTP/1.0` semantics (connection closes after the
//! response) keep the state machine trivial and every client compatible.
//!
//! The server owns one background thread built on the same [`crate::poll`]
//! readiness layer as the event-loop backend: the listener and a
//! [`Waker`] are the only registrations, and each
//! accepted connection is served synchronously with short socket timeouts —
//! a scrape is a few hundred bytes, so there is nothing to gain from
//! keeping per-connection state. Dropping the handle wakes the thread and
//! joins it.
//!
//! ```
//! use rnet::status::StatusServer;
//! use std::io::{Read, Write};
//!
//! let server = StatusServer::bind("127.0.0.1:0", |path| match path {
//!     "/metrics" => Some(("text/plain; version=0.0.4".into(), "up 1\n".into())),
//!     _ => None,
//! })
//! .unwrap();
//! let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
//! conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.0 200 OK\r\n"));
//! assert!(reply.ends_with("up 1\n"));
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::poll::{Event, Interest, Poller, Waker};

/// Renders a response body for a request path: `Some((content_type, body))`
/// to answer 200, `None` for 404. `/healthz` is answered by the server
/// itself before the callback runs.
pub type Render = dyn Fn(&str) -> Option<(String, String)> + Send + Sync;

/// Longest request head we accept before answering 400 — a scrape request
/// line plus a handful of headers fits in a fraction of this.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a scraper that cannot ship its request
/// line or drain a few KiB of exposition in this window is gone.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A live `GET /metrics` + `GET /healthz` endpoint on its own thread.
///
/// See the [module docs](self) for the protocol subset and design notes.
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<Waker>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for StatusServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatusServer").field("addr", &self.addr).finish()
    }
}

impl StatusServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9100"`, port 0 for ephemeral) and
    /// start serving. `render` maps a request path to a response; it runs
    /// on the server thread, so keep it to a snapshot-and-format.
    pub fn bind<F>(addr: &str, render: F) -> io::Result<StatusServer>
    where
        F: Fn(&str) -> Option<(String, String)> + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), 0, Interest::READ)?;
        let waker = Arc::new(Waker::new(&poller, 1)?);
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            let waker = Arc::clone(&waker);
            let render: Box<Render> = Box::new(render);
            std::thread::Builder::new()
                .name("rnet-status".into())
                .spawn(move || serve_loop(listener, poller, &waker, &stop, &render))?
        };
        Ok(StatusServer { addr: local, stop, waker, thread: Some(thread) })
    }

    /// The bound address — the actual port when bound with port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_loop(
    listener: TcpListener,
    poller: Poller,
    waker: &Waker,
    stop: &AtomicBool,
    render: &Render,
) {
    let mut events: Vec<Event> = Vec::new();
    loop {
        if poller.wait(&mut events, None).is_err() {
            return;
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        for ev in &events {
            if ev.token == 1 {
                waker.drain();
                continue;
            }
            // Level-triggered listener: accept until drained.
            loop {
                match listener.accept() {
                    Ok((conn, _)) => serve_one(conn, render),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
    }
}

/// Read one request head, answer, close. Any I/O error just drops the
/// connection — the scraper retries on its next interval.
fn serve_one(mut conn: TcpStream, render: &Render) {
    let _ = conn.set_read_timeout(Some(IO_TIMEOUT));
    let _ = conn.set_write_timeout(Some(IO_TIMEOUT));
    let head = match read_request_head(&mut conn) {
        Ok(head) => head,
        Err(_) => return,
    };
    let response = match parse_get_path(&head) {
        None => plain_response("400 Bad Request", "bad request\n"),
        Some("/healthz") => plain_response("200 OK", "ok\n"),
        Some(path) => match render(path) {
            Some((content_type, body)) => response("200 OK", &content_type, &body),
            None => plain_response("404 Not Found", "not found\n"),
        },
    };
    let _ = conn.write_all(response.as_bytes());
    let _ = conn.flush();
}

/// Read until the `\r\n\r\n` head terminator (tolerating bare `\n\n`), up
/// to [`MAX_REQUEST_BYTES`].
fn read_request_head(conn: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "request head too large"));
        }
    }
    String::from_utf8(buf).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8"))
}

/// `"GET /metrics HTTP/1.0"` → `Some("/metrics")`; anything that is not a
/// well-formed GET request line → `None`.
fn parse_get_path(head: &str) -> Option<&str> {
    let line = head.lines().next()?;
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    // Strip a query string: scrapers sometimes append one.
    Some(path.split('?').next().unwrap_or(path))
}

fn response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn plain_response(status: &str, body: &str) -> String {
    response(status, "text/plain; charset=utf-8", body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        reply
    }

    fn server() -> StatusServer {
        StatusServer::bind("127.0.0.1:0", |path| match path {
            "/metrics" => Some(("text/plain; version=0.0.4".into(), "jobs_total 3\n".into())),
            _ => None,
        })
        .unwrap()
    }

    #[test]
    fn metrics_path_serves_rendered_body() {
        let s = server();
        let reply = get(s.local_addr(), "/metrics");
        assert!(reply.starts_with("HTTP/1.0 200 OK\r\n"), "got: {reply}");
        assert!(reply.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(reply.contains("Content-Length: 13\r\n"));
        assert!(reply.ends_with("\r\n\r\njobs_total 3\n"));
    }

    #[test]
    fn healthz_is_built_in_and_unknown_paths_404() {
        let s = server();
        assert!(get(s.local_addr(), "/healthz").ends_with("ok\n"));
        assert!(get(s.local_addr(), "/nope").starts_with("HTTP/1.0 404"));
    }

    #[test]
    fn query_strings_are_stripped() {
        let s = server();
        let reply = get(s.local_addr(), "/metrics?format=prometheus");
        assert!(reply.starts_with("HTTP/1.0 200 OK\r\n"));
    }

    #[test]
    fn non_get_requests_are_rejected() {
        let s = server();
        let mut conn = TcpStream::connect(s.local_addr()).unwrap();
        conn.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.0 400"), "got: {reply}");
    }

    #[test]
    fn sequential_scrapes_reuse_the_server() {
        let s = server();
        for _ in 0..5 {
            assert!(get(s.local_addr(), "/metrics").contains("jobs_total 3"));
        }
    }

    #[test]
    fn drop_joins_the_thread_and_frees_the_port() {
        let s = server();
        let addr = s.local_addr();
        drop(s);
        // The listener is closed: a fresh connect must fail (or connect to
        // nothing and read EOF immediately on some kernels).
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut conn) => {
                let _ = conn.write_all(b"GET /healthz HTTP/1.0\r\n\r\n");
                let mut out = String::new();
                let n = conn.read_to_string(&mut out).unwrap_or(0);
                assert_eq!(n, 0, "dead server must not answer");
            }
        }
    }
}
