//! The frame model: every message the driver and worker exchange.
//!
//! Wire layout of one frame:
//!
//! ```text
//! +-----+-----+---------+-----------+----------------+---------+
//! | 'R' | 'N' | version | frame type| varint payload | payload |
//! |     |     |  (1 B)  |   (1 B)   |     length     | bytes   |
//! +-----+-----+---------+-----------+----------------+---------+
//! ```
//!
//! The magic bytes catch cross-talk (something that is not a peer
//! connecting to the port), the version byte gates protocol evolution, and
//! the varint length keeps the common small frames (heartbeats, no-payload
//! shutdowns) at single-digit bytes — the "lean length-prefixed frame"
//! style of rpc-perf rather than a general-purpose serialisation stack.
//!
//! Decoding is incremental: [`Frame::decode`] returns `Ok(None)` while the
//! buffer holds only a frame prefix, so a reader can accumulate bytes from
//! the socket at arbitrary boundaries and retry.

use crate::varint;
use crate::wire::{self, Reader, WireError};

/// Protocol magic: the first two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"RN";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Upper bound on a single frame payload (64 MiB). A length prefix beyond
/// this is treated as corruption rather than an allocation request.
pub const MAX_PAYLOAD: u64 = 64 * 1024 * 1024;

/// A tagged, opaque serialised value: `tag` names the application codec
/// that produced `bytes` (e.g. `"hpo.config"`). The protocol layer never
/// interprets the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    /// Codec tag.
    pub tag: String,
    /// Encoded value.
    pub bytes: Vec<u8>,
}

/// One task input as shipped in a [`Frame::Submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireArg {
    /// Value shipped inline; the worker caches it under `key`.
    Inline {
        /// Driver-side data key (`handle << 32 | version`).
        key: u64,
        /// The serialised value.
        blob: Blob,
    },
    /// Value already resident in the worker's cache from an earlier
    /// `Inline` or `Data` frame; the worker fetches on a cache miss.
    Cached {
        /// Driver-side data key.
        key: u64,
    },
    /// Value stored in the content-addressed block plane: the worker
    /// resolves `hash` against its local block cache and issues a
    /// [`Frame::BlockRequest`] on a miss. `key` still names the data
    /// version so the worker can alias the decoded value.
    Block {
        /// Driver-side data key (`handle << 32 | version`).
        key: u64,
        /// Content hash of the encoded value.
        hash: u128,
    },
}

/// Borrowed view of a [`Blob`]: tag and payload point straight into the
/// receive buffer the frame was decoded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobRef<'a> {
    /// Codec tag.
    pub tag: &'a str,
    /// Encoded value.
    pub bytes: &'a [u8],
}

impl BlobRef<'_> {
    /// Copy into an owned [`Blob`].
    pub fn to_owned(&self) -> Blob {
        Blob { tag: self.tag.to_string(), bytes: self.bytes.to_vec() }
    }
}

/// Borrowed view of a [`WireArg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireArgRef<'a> {
    /// See [`WireArg::Inline`].
    Inline {
        /// Driver-side data key (`handle << 32 | version`).
        key: u64,
        /// The serialised value, borrowed from the receive buffer.
        blob: BlobRef<'a>,
    },
    /// See [`WireArg::Cached`].
    Cached {
        /// Driver-side data key.
        key: u64,
    },
    /// See [`WireArg::Block`].
    Block {
        /// Driver-side data key.
        key: u64,
        /// Content hash of the encoded value.
        hash: u128,
    },
}

impl WireArgRef<'_> {
    /// Copy into an owned [`WireArg`].
    pub fn to_owned(&self) -> WireArg {
        match *self {
            WireArgRef::Inline { key, blob } => WireArg::Inline { key, blob: blob.to_owned() },
            WireArgRef::Cached { key } => WireArg::Cached { key },
            WireArgRef::Block { key, hash } => WireArg::Block { key, hash },
        }
    }
}

/// One leaderboard entry as streamed in a [`Frame::LeaderboardChunk`]:
/// a finished trial's config label and headline numbers. The protocol
/// layer carries the rows; what "accuracy" means is the application's
/// business.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderRow {
    /// Human-readable config label (e.g. `optimizer=Adam num_epochs=2`).
    pub label: String,
    /// Final objective value (higher is better).
    pub accuracy: f64,
    /// Epochs actually run (early-stopped trials report fewer).
    pub epochs: u32,
    /// Task wall time, µs.
    pub task_us: u64,
}

/// Borrowed view of a [`LeaderRow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaderRowRef<'a> {
    /// Human-readable config label.
    pub label: &'a str,
    /// Final objective value (higher is better).
    pub accuracy: f64,
    /// Epochs actually run.
    pub epochs: u32,
    /// Task wall time, µs.
    pub task_us: u64,
}

impl LeaderRowRef<'_> {
    /// Copy into an owned [`LeaderRow`].
    pub fn to_owned(&self) -> LeaderRow {
        LeaderRow {
            label: self.label.to_string(),
            accuracy: self.accuracy,
            epochs: self.epochs,
            task_us: self.task_us,
        }
    }
}

/// Every message of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → driver, once per connection: resource registration.
    Hello {
        /// Worker display name (defaults to its listen address).
        name: String,
        /// CPU cores offered.
        cores: u32,
        /// GPUs offered.
        gpus: u32,
        /// Memory offered, GiB.
        mem_gib: u32,
    },
    /// Driver → worker: run one task attempt.
    Submit {
        /// Driver-side execution id, echoed in `Done`/`Failed`.
        exec_id: u64,
        /// Task instance id (for logs/traces on the worker).
        task_id: u64,
        /// 1-based attempt number.
        attempt: u32,
        /// The driver's node id for this worker (context for the body).
        node: u32,
        /// Interned function id: stable per connection.
        fn_id: u64,
        /// Function name, present only the first time `fn_id` is used on
        /// this connection — later submits send just the id.
        fn_name: Option<String>,
        /// Which task implementation to run (0 = primary).
        variant: u32,
        /// Exact core ids granted on the worker.
        cores: Vec<u32>,
        /// Exact GPU ids granted on the worker.
        gpus: Vec<u32>,
        /// Inputs, in argument order.
        args: Vec<WireArg>,
    },
    /// Worker → driver: task attempt succeeded.
    ///
    /// Besides the outputs, the worker stamps the attempt's lifecycle on its
    /// own clock: submit receipt, execution start, execution end. Combined
    /// with the heartbeat clock-offset estimate the driver turns these into
    /// per-phase latencies (wire / exec / result-ship) without a second
    /// round trip.
    Done {
        /// Echoed execution id.
        exec_id: u64,
        /// Worker clock when the `Submit` frame was decoded, µs.
        recv_us: u64,
        /// Worker clock when the task body started, µs.
        start_us: u64,
        /// Worker clock when the task body returned, µs.
        end_us: u64,
        /// Serialised outputs, in declaration order.
        outputs: Vec<Blob>,
    },
    /// Worker → driver: task attempt failed (body error or panic).
    Failed {
        /// Echoed execution id.
        exec_id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// Driver → worker liveness probe, doubling as a clock-sync sample
    /// (NTP-style: the ack echoes `t_send_us` and adds the receiver's own
    /// receive/reply stamps, letting the sender estimate offset and RTT).
    Heartbeat {
        /// Monotonic per-connection sequence number.
        seq: u64,
        /// Sender's clock at transmission, µs on its own epoch.
        t_send_us: u64,
        /// Whether the sender wants the peer to flush telemetry
        /// ([`Frame::TraceChunk`] / [`Frame::StatsSnapshot`]) frames. When
        /// false the peer must stay silent on those frame types, keeping
        /// the tracing flag a true wire-level no-op.
        telemetry: bool,
    },
    /// Worker → driver reply to [`Frame::Heartbeat`].
    HeartbeatAck {
        /// Echoed sequence number.
        seq: u64,
        /// Echo of the probe's `t_send_us` (sender clock).
        t_send_us: u64,
        /// Receiver's clock when the probe arrived, µs on its own epoch.
        recv_us: u64,
        /// Receiver's clock when this ack was built, µs on its own epoch.
        reply_us: u64,
    },
    /// Worker → driver: a `Cached` input missed the cache.
    Fetch {
        /// The missing data key.
        key: u64,
    },
    /// Driver → worker: the value for an earlier [`Frame::Fetch`].
    Data {
        /// The data key.
        key: u64,
        /// The serialised value.
        blob: Blob,
    },
    /// A batch of trace records, shipped worker → driver only while the
    /// peer's last [`Frame::Heartbeat`] asked for telemetry. The payload is
    /// opaque to the protocol layer — the application's trace codec
    /// produced it — keeping `rnet` ignorant of trace semantics the same
    /// way task payloads stay opaque [`Blob`]s.
    TraceChunk {
        /// Application-encoded trace records.
        bytes: Vec<u8>,
    },
    /// A point-in-time stat sample, shipped worker → driver on the same
    /// telemetry gate as [`Frame::TraceChunk`]. Generic name/value pairs:
    /// the protocol layer carries them, the application names them.
    StatsSnapshot {
        /// Sender's clock when the sample was taken, µs on its own epoch.
        wall_us: u64,
        /// Monotonically increasing counters, `(name, value)`.
        counters: Vec<(String, u64)>,
        /// Instantaneous values, `(name, value)`.
        gauges: Vec<(String, f64)>,
    },
    /// Driver → worker: proactively seed one content-addressed block into
    /// the worker's block cache, ahead of a `Submit` whose args reference
    /// it by hash. Idempotent: a worker already holding `hash` ignores the
    /// payload.
    BlockPut {
        /// Content hash of `blob`'s encoded bytes.
        hash: u128,
        /// The serialised value.
        blob: Blob,
    },
    /// Worker → driver: a [`WireArg::Block`] input missed the block cache.
    BlockRequest {
        /// The missing content hash.
        hash: u128,
    },
    /// Driver → worker: the block for an earlier [`Frame::BlockRequest`].
    BlockData {
        /// The content hash.
        hash: u128,
        /// The serialised value.
        blob: Blob,
    },
    /// Worker → driver: the LRU budget evicted a block; the driver must
    /// drop its residency record so future placements re-ship it.
    BlockEvict {
        /// The evicted content hash.
        hash: u128,
    },
    /// Client → server, once per connection: role negotiation. A worker's
    /// first frame on the shared listener is a [`Frame::Hello`]; a sweep
    /// client's is a `ClientHello` naming its tenant. Everything after
    /// follows from that first frame type.
    ClientHello {
        /// Tenant identity the connection's sweeps are accounted to.
        tenant: String,
        /// Client-side protocol revision (forward-compat gate).
        proto: u32,
    },
    /// Client → server: run one hyperparameter sweep on the shared pool.
    SubmitSweep {
        /// Display name for the sweep (logs, metrics labels).
        name: String,
        /// The JSON search-space document (the paper's config file).
        space_json: String,
        /// Search algorithm (`grid` | `random` | `tpe` | `bayes`).
        algo: String,
        /// Trial budget for the sampling algorithms (grid ignores it).
        trials: u32,
        /// RNG seed — same seed + space + algo ⇒ same trial sequence.
        seed: u64,
        /// Wave size override (0 = server default).
        wave: u32,
    },
    /// Server → client: a request was refused (admission control, quota,
    /// malformed space, unknown sweep). The typed error frame of the
    /// client plane: `code` is machine-readable, `message` for humans.
    SweepReject {
        /// Machine-readable reject class (see the application's catalogue).
        code: u32,
        /// Human-readable reason.
        message: String,
    },
    /// Sweep status, in both directions. Client → server it is a query:
    /// only `sweep_id` and `follow` are meaningful (`follow != 0`
    /// subscribes the connection to the sweep's live leaderboard stream).
    /// Server → client it is the answer — and the ack of a
    /// [`Frame::SubmitSweep`], carrying the assigned `sweep_id`.
    SweepStatus {
        /// Server-assigned sweep id.
        sweep_id: u64,
        /// Lifecycle state (application-defined catalogue).
        state: u32,
        /// Trials finished successfully.
        done: u32,
        /// Trials failed.
        failed: u32,
        /// Total trial budget (0 = unknown ahead of time).
        total: u32,
        /// Best objective value so far (NaN-free: 0 until a trial lands).
        best_acc: f64,
        /// Config label of the best trial so far (empty until one lands).
        best_label: String,
        /// Times this sweep's tenant hit its rate limit so far.
        throttled: u64,
        /// Query direction only: subscribe to the live leaderboard.
        follow: u32,
    },
    /// Server → client: a batch of freshly finished trials for a sweep the
    /// connection follows. Subscribing replays the full leaderboard so
    /// far, then streams increments as trials land.
    LeaderboardChunk {
        /// The sweep the rows belong to.
        sweep_id: u64,
        /// Finished trials, in completion order.
        rows: Vec<LeaderRow>,
    },
    /// Client → server: stop a sweep. In-flight trials drain; the sweep
    /// ends in the `cancelled` state and its workers return to the pool.
    CancelSweep {
        /// The sweep to cancel.
        sweep_id: u64,
    },
    /// Server → client: terminal state of a sweep the connection follows
    /// (or just submitted). Exactly one per sweep per subscriber.
    SweepDone {
        /// The finished sweep.
        sweep_id: u64,
        /// Terminal lifecycle state (done / failed / cancelled).
        state: u32,
        /// Sweep wall time, µs.
        wall_us: u64,
        /// Empty on success; the error for failed sweeps.
        message: String,
    },
    /// Driver → worker: drain and close the connection.
    Shutdown,
}

/// Borrowed view of a [`Frame`], decoded in place from a receive buffer.
///
/// This is the zero-copy half of the decode API: strings and blob payloads
/// point straight into the buffer the bytes arrived in, so a hot loop can
/// hand a `Done` frame's outputs to the value codecs without an
/// intermediate copy. Call [`FrameRef::to_owned`] when the data must
/// outlive the buffer (which invalidates on the next compaction or fill).
///
/// ```
/// use rnet::{Frame, FrameRef};
///
/// let hb = Frame::Heartbeat { seq: 7, t_send_us: 1_000, telemetry: false };
/// let wire = hb.encode();
/// let (frame, used) = FrameRef::decode(&wire).unwrap().expect("complete");
/// assert_eq!(used, wire.len());
/// assert!(matches!(frame, FrameRef::Heartbeat { seq: 7, .. }));
/// assert_eq!(frame.to_owned(), hb);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum FrameRef<'a> {
    /// See [`Frame::Hello`].
    Hello {
        /// Worker display name.
        name: &'a str,
        /// CPU cores offered.
        cores: u32,
        /// GPUs offered.
        gpus: u32,
        /// Memory offered, GiB.
        mem_gib: u32,
    },
    /// See [`Frame::Submit`].
    Submit {
        /// Driver-side execution id.
        exec_id: u64,
        /// Task instance id.
        task_id: u64,
        /// 1-based attempt number.
        attempt: u32,
        /// The driver's node id for this worker.
        node: u32,
        /// Interned function id.
        fn_id: u64,
        /// Function name, present only on the first use of `fn_id`.
        fn_name: Option<&'a str>,
        /// Which task implementation to run.
        variant: u32,
        /// Exact core ids granted.
        cores: Vec<u32>,
        /// Exact GPU ids granted.
        gpus: Vec<u32>,
        /// Inputs, in argument order, blobs borrowed.
        args: Vec<WireArgRef<'a>>,
    },
    /// See [`Frame::Done`].
    Done {
        /// Echoed execution id.
        exec_id: u64,
        /// Worker clock when the `Submit` frame was decoded, µs.
        recv_us: u64,
        /// Worker clock when the task body started, µs.
        start_us: u64,
        /// Worker clock when the task body returned, µs.
        end_us: u64,
        /// Serialised outputs, borrowed.
        outputs: Vec<BlobRef<'a>>,
    },
    /// See [`Frame::Failed`].
    Failed {
        /// Echoed execution id.
        exec_id: u64,
        /// Human-readable reason.
        message: &'a str,
    },
    /// See [`Frame::Heartbeat`].
    Heartbeat {
        /// Monotonic per-connection sequence number.
        seq: u64,
        /// Sender's clock at transmission, µs on its own epoch.
        t_send_us: u64,
        /// Whether the sender wants telemetry frames flushed.
        telemetry: bool,
    },
    /// See [`Frame::HeartbeatAck`].
    HeartbeatAck {
        /// Echoed sequence number.
        seq: u64,
        /// Echo of the probe's `t_send_us` (sender clock).
        t_send_us: u64,
        /// Receiver's clock when the probe arrived.
        recv_us: u64,
        /// Receiver's clock when this ack was built.
        reply_us: u64,
    },
    /// See [`Frame::Fetch`].
    Fetch {
        /// The missing data key.
        key: u64,
    },
    /// See [`Frame::Data`].
    Data {
        /// The data key.
        key: u64,
        /// The serialised value, borrowed.
        blob: BlobRef<'a>,
    },
    /// See [`Frame::TraceChunk`].
    TraceChunk {
        /// Application-encoded trace records, borrowed.
        bytes: &'a [u8],
    },
    /// See [`Frame::StatsSnapshot`].
    StatsSnapshot {
        /// Sender's clock when the sample was taken.
        wall_us: u64,
        /// Monotonically increasing counters, names borrowed.
        counters: Vec<(&'a str, u64)>,
        /// Instantaneous values, names borrowed.
        gauges: Vec<(&'a str, f64)>,
    },
    /// See [`Frame::BlockPut`].
    BlockPut {
        /// Content hash of `blob`'s encoded bytes.
        hash: u128,
        /// The serialised value, borrowed.
        blob: BlobRef<'a>,
    },
    /// See [`Frame::BlockRequest`].
    BlockRequest {
        /// The missing content hash.
        hash: u128,
    },
    /// See [`Frame::BlockData`].
    BlockData {
        /// The content hash.
        hash: u128,
        /// The serialised value, borrowed.
        blob: BlobRef<'a>,
    },
    /// See [`Frame::BlockEvict`].
    BlockEvict {
        /// The evicted content hash.
        hash: u128,
    },
    /// See [`Frame::ClientHello`].
    ClientHello {
        /// Tenant identity.
        tenant: &'a str,
        /// Client-side protocol revision.
        proto: u32,
    },
    /// See [`Frame::SubmitSweep`].
    SubmitSweep {
        /// Display name for the sweep.
        name: &'a str,
        /// The JSON search-space document.
        space_json: &'a str,
        /// Search algorithm.
        algo: &'a str,
        /// Trial budget for the sampling algorithms.
        trials: u32,
        /// RNG seed.
        seed: u64,
        /// Wave size override (0 = server default).
        wave: u32,
    },
    /// See [`Frame::SweepReject`].
    SweepReject {
        /// Machine-readable reject class.
        code: u32,
        /// Human-readable reason.
        message: &'a str,
    },
    /// See [`Frame::SweepStatus`].
    SweepStatus {
        /// Server-assigned sweep id.
        sweep_id: u64,
        /// Lifecycle state.
        state: u32,
        /// Trials finished successfully.
        done: u32,
        /// Trials failed.
        failed: u32,
        /// Total trial budget (0 = unknown).
        total: u32,
        /// Best objective value so far.
        best_acc: f64,
        /// Config label of the best trial so far.
        best_label: &'a str,
        /// Times this sweep's tenant hit its rate limit so far.
        throttled: u64,
        /// Query direction only: subscribe to the live leaderboard.
        follow: u32,
    },
    /// See [`Frame::LeaderboardChunk`].
    LeaderboardChunk {
        /// The sweep the rows belong to.
        sweep_id: u64,
        /// Finished trials, labels borrowed.
        rows: Vec<LeaderRowRef<'a>>,
    },
    /// See [`Frame::CancelSweep`].
    CancelSweep {
        /// The sweep to cancel.
        sweep_id: u64,
    },
    /// See [`Frame::SweepDone`].
    SweepDone {
        /// The finished sweep.
        sweep_id: u64,
        /// Terminal lifecycle state.
        state: u32,
        /// Sweep wall time, µs.
        wall_us: u64,
        /// Empty on success; the error for failed sweeps.
        message: &'a str,
    },
    /// See [`Frame::Shutdown`].
    Shutdown,
}

/// Why a buffer cannot be decoded as a frame. All variants are fatal for
/// the connection — only `Ok(None)` from [`Frame::decode`] means "wait for
/// more bytes".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The first two bytes are not [`MAGIC`].
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame-type byte.
    UnknownFrameType(u8),
    /// Payload length beyond [`MAX_PAYLOAD`].
    Oversize(u64),
    /// The payload did not parse as its frame type.
    Malformed(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad frame magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            DecodeError::Oversize(n) => write!(f, "frame payload of {n} bytes exceeds limit"),
            DecodeError::Malformed(m) => write!(f, "malformed frame payload: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<WireError> for DecodeError {
    fn from(e: WireError) -> Self {
        DecodeError::Malformed(e.0)
    }
}

const T_HELLO: u8 = 1;
const T_SUBMIT: u8 = 2;
const T_DONE: u8 = 3;
const T_FAILED: u8 = 4;
const T_HEARTBEAT: u8 = 5;
const T_HEARTBEAT_ACK: u8 = 6;
const T_FETCH: u8 = 7;
const T_DATA: u8 = 8;
const T_SHUTDOWN: u8 = 9;
const T_TRACE_CHUNK: u8 = 10;
const T_STATS_SNAPSHOT: u8 = 11;
const T_BLOCK_PUT: u8 = 12;
const T_BLOCK_REQUEST: u8 = 13;
const T_BLOCK_DATA: u8 = 14;
const T_BLOCK_EVICT: u8 = 15;
const T_CLIENT_HELLO: u8 = 16;
const T_SUBMIT_SWEEP: u8 = 17;
const T_SWEEP_REJECT: u8 = 18;
const T_SWEEP_STATUS: u8 = 19;
const T_LEADERBOARD_CHUNK: u8 = 20;
const T_CANCEL_SWEEP: u8 = 21;
const T_SWEEP_DONE: u8 = 22;

fn put_blob(out: &mut Vec<u8>, blob: &Blob) {
    wire::put_str(out, &blob.tag);
    wire::put_bytes(out, &blob.bytes);
}

fn read_blob_ref<'a>(r: &mut Reader<'a>) -> Result<BlobRef<'a>, WireError> {
    let tag = r.str_ref()?;
    let bytes = r.bytes()?;
    Ok(BlobRef { tag, bytes })
}

/// A 128-bit content hash crosses the wire as two varint u64 halves
/// (high, low) — `wire` only speaks u64-sized integers.
fn put_hash(out: &mut Vec<u8>, hash: u128) {
    wire::put_u64(out, (hash >> 64) as u64);
    wire::put_u64(out, hash as u64);
}

fn read_hash(r: &mut Reader<'_>) -> Result<u128, WireError> {
    let hi = r.u64()?;
    let lo = r.u64()?;
    Ok(((hi as u128) << 64) | lo as u128)
}

/// Scan the frame header at the front of `buf`.
///
/// `Ok(Some((payload_start, total_len, frame_type)))` once the buffer holds
/// a complete frame; `Ok(None)` while it holds only a valid prefix.
/// Validation is eager: corruption in the magic, version, type, or length
/// bytes surfaces before the rest of the frame arrives.
fn frame_extent(buf: &[u8]) -> Result<Option<(usize, usize, u8)>, DecodeError> {
    if !buf.is_empty() && buf[0] != MAGIC[0] {
        return Err(DecodeError::BadMagic);
    }
    if buf.len() >= 2 && buf[..2] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if buf.len() >= 3 && buf[2] != VERSION {
        return Err(DecodeError::BadVersion(buf[2]));
    }
    if buf.len() >= 4 && !(T_HELLO..=T_SWEEP_DONE).contains(&buf[3]) {
        return Err(DecodeError::UnknownFrameType(buf[3]));
    }
    if buf.len() < 4 {
        return Ok(None);
    }
    let (payload_len, len_bytes) = match varint::take(&buf[4..]) {
        varint::Take::Got(v, n) => (v, n),
        varint::Take::Incomplete => return Ok(None),
        varint::Take::Overlong => {
            return Err(DecodeError::Malformed("overlong length prefix".into()))
        }
    };
    if payload_len > MAX_PAYLOAD {
        return Err(DecodeError::Oversize(payload_len));
    }
    let total = 4 + len_bytes + payload_len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((4 + len_bytes, total, buf[3])))
}

impl Frame {
    fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello { .. } => T_HELLO,
            Frame::Submit { .. } => T_SUBMIT,
            Frame::Done { .. } => T_DONE,
            Frame::Failed { .. } => T_FAILED,
            Frame::Heartbeat { .. } => T_HEARTBEAT,
            Frame::HeartbeatAck { .. } => T_HEARTBEAT_ACK,
            Frame::Fetch { .. } => T_FETCH,
            Frame::Data { .. } => T_DATA,
            Frame::TraceChunk { .. } => T_TRACE_CHUNK,
            Frame::StatsSnapshot { .. } => T_STATS_SNAPSHOT,
            Frame::BlockPut { .. } => T_BLOCK_PUT,
            Frame::BlockRequest { .. } => T_BLOCK_REQUEST,
            Frame::BlockData { .. } => T_BLOCK_DATA,
            Frame::BlockEvict { .. } => T_BLOCK_EVICT,
            Frame::ClientHello { .. } => T_CLIENT_HELLO,
            Frame::SubmitSweep { .. } => T_SUBMIT_SWEEP,
            Frame::SweepReject { .. } => T_SWEEP_REJECT,
            Frame::SweepStatus { .. } => T_SWEEP_STATUS,
            Frame::LeaderboardChunk { .. } => T_LEADERBOARD_CHUNK,
            Frame::CancelSweep { .. } => T_CANCEL_SWEEP,
            Frame::SweepDone { .. } => T_SWEEP_DONE,
            Frame::Shutdown => T_SHUTDOWN,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { name, cores, gpus, mem_gib } => {
                wire::put_str(out, name);
                wire::put_u32(out, *cores);
                wire::put_u32(out, *gpus);
                wire::put_u32(out, *mem_gib);
            }
            Frame::Submit {
                exec_id,
                task_id,
                attempt,
                node,
                fn_id,
                fn_name,
                variant,
                cores,
                gpus,
                args,
            } => {
                wire::put_u64(out, *exec_id);
                wire::put_u64(out, *task_id);
                wire::put_u32(out, *attempt);
                wire::put_u32(out, *node);
                wire::put_u64(out, *fn_id);
                match fn_name {
                    Some(name) => {
                        out.push(1);
                        wire::put_str(out, name);
                    }
                    None => out.push(0),
                }
                wire::put_u32(out, *variant);
                wire::put_u64(out, cores.len() as u64);
                for c in cores {
                    wire::put_u32(out, *c);
                }
                wire::put_u64(out, gpus.len() as u64);
                for g in gpus {
                    wire::put_u32(out, *g);
                }
                wire::put_u64(out, args.len() as u64);
                for arg in args {
                    match arg {
                        WireArg::Inline { key, blob } => {
                            out.push(0);
                            wire::put_u64(out, *key);
                            put_blob(out, blob);
                        }
                        WireArg::Cached { key } => {
                            out.push(1);
                            wire::put_u64(out, *key);
                        }
                        WireArg::Block { key, hash } => {
                            out.push(2);
                            wire::put_u64(out, *key);
                            put_hash(out, *hash);
                        }
                    }
                }
            }
            Frame::Done { exec_id, recv_us, start_us, end_us, outputs } => {
                wire::put_u64(out, *exec_id);
                wire::put_u64(out, *recv_us);
                wire::put_u64(out, *start_us);
                wire::put_u64(out, *end_us);
                wire::put_u64(out, outputs.len() as u64);
                for b in outputs {
                    put_blob(out, b);
                }
            }
            Frame::Failed { exec_id, message } => {
                wire::put_u64(out, *exec_id);
                wire::put_str(out, message);
            }
            Frame::Heartbeat { seq, t_send_us, telemetry } => {
                wire::put_u64(out, *seq);
                wire::put_u64(out, *t_send_us);
                wire::put_u64(out, u64::from(*telemetry));
            }
            Frame::HeartbeatAck { seq, t_send_us, recv_us, reply_us } => {
                wire::put_u64(out, *seq);
                wire::put_u64(out, *t_send_us);
                wire::put_u64(out, *recv_us);
                wire::put_u64(out, *reply_us);
            }
            Frame::Fetch { key } => wire::put_u64(out, *key),
            Frame::Data { key, blob } => {
                wire::put_u64(out, *key);
                put_blob(out, blob);
            }
            Frame::TraceChunk { bytes } => wire::put_bytes(out, bytes),
            Frame::StatsSnapshot { wall_us, counters, gauges } => {
                wire::put_u64(out, *wall_us);
                wire::put_u64(out, counters.len() as u64);
                for (name, v) in counters {
                    wire::put_str(out, name);
                    wire::put_u64(out, *v);
                }
                wire::put_u64(out, gauges.len() as u64);
                for (name, v) in gauges {
                    wire::put_str(out, name);
                    wire::put_f64(out, *v);
                }
            }
            Frame::BlockPut { hash, blob } => {
                put_hash(out, *hash);
                put_blob(out, blob);
            }
            Frame::BlockRequest { hash } => put_hash(out, *hash),
            Frame::BlockData { hash, blob } => {
                put_hash(out, *hash);
                put_blob(out, blob);
            }
            Frame::BlockEvict { hash } => put_hash(out, *hash),
            Frame::ClientHello { tenant, proto } => {
                wire::put_str(out, tenant);
                wire::put_u32(out, *proto);
            }
            Frame::SubmitSweep { name, space_json, algo, trials, seed, wave } => {
                wire::put_str(out, name);
                wire::put_str(out, space_json);
                wire::put_str(out, algo);
                wire::put_u32(out, *trials);
                wire::put_u64(out, *seed);
                wire::put_u32(out, *wave);
            }
            Frame::SweepReject { code, message } => {
                wire::put_u32(out, *code);
                wire::put_str(out, message);
            }
            Frame::SweepStatus {
                sweep_id,
                state,
                done,
                failed,
                total,
                best_acc,
                best_label,
                throttled,
                follow,
            } => {
                wire::put_u64(out, *sweep_id);
                wire::put_u32(out, *state);
                wire::put_u32(out, *done);
                wire::put_u32(out, *failed);
                wire::put_u32(out, *total);
                wire::put_f64(out, *best_acc);
                wire::put_str(out, best_label);
                wire::put_u64(out, *throttled);
                wire::put_u32(out, *follow);
            }
            Frame::LeaderboardChunk { sweep_id, rows } => {
                wire::put_u64(out, *sweep_id);
                wire::put_u64(out, rows.len() as u64);
                for row in rows {
                    wire::put_str(out, &row.label);
                    wire::put_f64(out, row.accuracy);
                    wire::put_u32(out, row.epochs);
                    wire::put_u64(out, row.task_us);
                }
            }
            Frame::CancelSweep { sweep_id } => wire::put_u64(out, *sweep_id),
            Frame::SweepDone { sweep_id, state, wall_us, message } => {
                wire::put_u64(out, *sweep_id);
                wire::put_u32(out, *state);
                wire::put_u64(out, *wall_us);
                wire::put_str(out, message);
            }
            Frame::Shutdown => {}
        }
    }

    /// Append the complete frame (header + payload) to `out`.
    ///
    /// The payload is staged in a thread-local scratch buffer (the varint
    /// length prefix needs the payload size before the payload bytes), so
    /// steady-state encoding allocates nothing per frame — at 100k-task
    /// graph sizes the per-`Submit` `Vec` this replaces was a measurable
    /// slice of per-task overhead.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<u8>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|cell| {
            let mut payload = cell.borrow_mut();
            payload.clear();
            self.encode_payload(&mut payload);
            out.extend_from_slice(&MAGIC);
            out.push(VERSION);
            out.push(self.frame_type());
            varint::put(out, payload.len() as u64);
            out.extend_from_slice(&payload);
            // Don't let one huge Data/Block frame pin its footprint.
            if payload.capacity() > 1024 * 1024 {
                payload.clear();
                payload.shrink_to(1024 * 1024);
            }
        });
    }

    /// The complete encoded frame as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Try to decode one frame from the front of `buf`.
    ///
    /// * `Ok(Some((frame, consumed)))` — a complete frame; the caller drops
    ///   the first `consumed` bytes and may retry for pipelined frames.
    /// * `Ok(None)` — `buf` holds a valid prefix; read more bytes.
    /// * `Err(_)` — the stream is corrupt; close the connection.
    ///
    /// This is the owning convenience over [`FrameRef::decode`]: it pays
    /// one copy per string/blob field. Hot paths decode a [`FrameRef`] and
    /// borrow instead.
    ///
    /// ```
    /// use rnet::Frame;
    ///
    /// let wire = Frame::Fetch { key: 42 }.encode();
    /// // A prefix asks for more bytes; the full buffer decodes.
    /// assert_eq!(Frame::decode(&wire[..3]).unwrap(), None);
    /// let (frame, used) = Frame::decode(&wire).unwrap().expect("complete");
    /// assert_eq!(frame, Frame::Fetch { key: 42 });
    /// assert_eq!(used, wire.len());
    /// ```
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
        Ok(FrameRef::decode(buf)?.map(|(f, n)| (f.to_owned(), n)))
    }
}

impl<'a> FrameRef<'a> {
    fn decode_payload(frame_type: u8, payload: &'a [u8]) -> Result<FrameRef<'a>, DecodeError> {
        let mut r = Reader::new(payload);
        let frame = match frame_type {
            T_HELLO => FrameRef::Hello {
                name: r.str_ref()?,
                cores: r.u32()?,
                gpus: r.u32()?,
                mem_gib: r.u32()?,
            },
            T_SUBMIT => {
                let exec_id = r.u64()?;
                let task_id = r.u64()?;
                let attempt = r.u32()?;
                let node = r.u32()?;
                let fn_id = r.u64()?;
                let fn_name = match r.u64()? {
                    0 => None,
                    1 => Some(r.str_ref()?),
                    other => {
                        return Err(DecodeError::Malformed(format!("bad option flag {other}")))
                    }
                };
                let variant = r.u32()?;
                let n_cores = r.u64()? as usize;
                let cores =
                    (0..n_cores).map(|_| r.u32()).collect::<Result<Vec<u32>, WireError>>()?;
                let n_gpus = r.u64()? as usize;
                let gpus = (0..n_gpus).map(|_| r.u32()).collect::<Result<Vec<u32>, WireError>>()?;
                let n_args = r.u64()? as usize;
                let mut args = Vec::with_capacity(n_args.min(1024));
                for _ in 0..n_args {
                    args.push(match r.u64()? {
                        0 => WireArgRef::Inline { key: r.u64()?, blob: read_blob_ref(&mut r)? },
                        1 => WireArgRef::Cached { key: r.u64()? },
                        2 => WireArgRef::Block { key: r.u64()?, hash: read_hash(&mut r)? },
                        other => {
                            return Err(DecodeError::Malformed(format!("bad arg kind {other}")))
                        }
                    });
                }
                FrameRef::Submit {
                    exec_id,
                    task_id,
                    attempt,
                    node,
                    fn_id,
                    fn_name,
                    variant,
                    cores,
                    gpus,
                    args,
                }
            }
            T_DONE => {
                let exec_id = r.u64()?;
                let recv_us = r.u64()?;
                let start_us = r.u64()?;
                let end_us = r.u64()?;
                let n = r.u64()? as usize;
                let mut outputs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    outputs.push(read_blob_ref(&mut r)?);
                }
                FrameRef::Done { exec_id, recv_us, start_us, end_us, outputs }
            }
            T_FAILED => FrameRef::Failed { exec_id: r.u64()?, message: r.str_ref()? },
            T_HEARTBEAT => {
                let seq = r.u64()?;
                let t_send_us = r.u64()?;
                let telemetry = match r.u64()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(DecodeError::Malformed(format!("bad telemetry flag {other}")))
                    }
                };
                FrameRef::Heartbeat { seq, t_send_us, telemetry }
            }
            T_HEARTBEAT_ACK => FrameRef::HeartbeatAck {
                seq: r.u64()?,
                t_send_us: r.u64()?,
                recv_us: r.u64()?,
                reply_us: r.u64()?,
            },
            T_FETCH => FrameRef::Fetch { key: r.u64()? },
            T_DATA => FrameRef::Data { key: r.u64()?, blob: read_blob_ref(&mut r)? },
            T_TRACE_CHUNK => FrameRef::TraceChunk { bytes: r.bytes()? },
            T_STATS_SNAPSHOT => {
                let wall_us = r.u64()?;
                let n_counters = r.u64()? as usize;
                let mut counters = Vec::with_capacity(n_counters.min(1024));
                for _ in 0..n_counters {
                    counters.push((r.str_ref()?, r.u64()?));
                }
                let n_gauges = r.u64()? as usize;
                let mut gauges = Vec::with_capacity(n_gauges.min(1024));
                for _ in 0..n_gauges {
                    gauges.push((r.str_ref()?, r.f64()?));
                }
                FrameRef::StatsSnapshot { wall_us, counters, gauges }
            }
            T_BLOCK_PUT => {
                FrameRef::BlockPut { hash: read_hash(&mut r)?, blob: read_blob_ref(&mut r)? }
            }
            T_BLOCK_REQUEST => FrameRef::BlockRequest { hash: read_hash(&mut r)? },
            T_BLOCK_DATA => {
                FrameRef::BlockData { hash: read_hash(&mut r)?, blob: read_blob_ref(&mut r)? }
            }
            T_BLOCK_EVICT => FrameRef::BlockEvict { hash: read_hash(&mut r)? },
            T_CLIENT_HELLO => FrameRef::ClientHello { tenant: r.str_ref()?, proto: r.u32()? },
            T_SUBMIT_SWEEP => FrameRef::SubmitSweep {
                name: r.str_ref()?,
                space_json: r.str_ref()?,
                algo: r.str_ref()?,
                trials: r.u32()?,
                seed: r.u64()?,
                wave: r.u32()?,
            },
            T_SWEEP_REJECT => FrameRef::SweepReject { code: r.u32()?, message: r.str_ref()? },
            T_SWEEP_STATUS => FrameRef::SweepStatus {
                sweep_id: r.u64()?,
                state: r.u32()?,
                done: r.u32()?,
                failed: r.u32()?,
                total: r.u32()?,
                best_acc: r.f64()?,
                best_label: r.str_ref()?,
                throttled: r.u64()?,
                follow: r.u32()?,
            },
            T_LEADERBOARD_CHUNK => {
                let sweep_id = r.u64()?;
                let n = r.u64()? as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push(LeaderRowRef {
                        label: r.str_ref()?,
                        accuracy: r.f64()?,
                        epochs: r.u32()?,
                        task_us: r.u64()?,
                    });
                }
                FrameRef::LeaderboardChunk { sweep_id, rows }
            }
            T_CANCEL_SWEEP => FrameRef::CancelSweep { sweep_id: r.u64()? },
            T_SWEEP_DONE => FrameRef::SweepDone {
                sweep_id: r.u64()?,
                state: r.u32()?,
                wall_us: r.u64()?,
                message: r.str_ref()?,
            },
            T_SHUTDOWN => FrameRef::Shutdown,
            other => return Err(DecodeError::UnknownFrameType(other)),
        };
        r.finish()?;
        Ok(frame)
    }

    /// Zero-copy decode of one frame from the front of `buf`; the same
    /// contract as [`Frame::decode`], but string and blob fields borrow
    /// from `buf` instead of copying.
    pub fn decode(buf: &'a [u8]) -> Result<Option<(FrameRef<'a>, usize)>, DecodeError> {
        let Some((payload_at, total, frame_type)) = frame_extent(buf)? else {
            return Ok(None);
        };
        let payload = &buf[payload_at..total];
        Ok(Some((Self::decode_payload(frame_type, payload)?, total)))
    }

    /// Materialise an owned [`Frame`], copying every borrowed field.
    pub fn to_owned(&self) -> Frame {
        match self {
            FrameRef::Hello { name, cores, gpus, mem_gib } => Frame::Hello {
                name: name.to_string(),
                cores: *cores,
                gpus: *gpus,
                mem_gib: *mem_gib,
            },
            FrameRef::Submit {
                exec_id,
                task_id,
                attempt,
                node,
                fn_id,
                fn_name,
                variant,
                cores,
                gpus,
                args,
            } => Frame::Submit {
                exec_id: *exec_id,
                task_id: *task_id,
                attempt: *attempt,
                node: *node,
                fn_id: *fn_id,
                fn_name: fn_name.map(|s| s.to_string()),
                variant: *variant,
                cores: cores.clone(),
                gpus: gpus.clone(),
                args: args.iter().map(|a| a.to_owned()).collect(),
            },
            FrameRef::Done { exec_id, recv_us, start_us, end_us, outputs } => Frame::Done {
                exec_id: *exec_id,
                recv_us: *recv_us,
                start_us: *start_us,
                end_us: *end_us,
                outputs: outputs.iter().map(|b| b.to_owned()).collect(),
            },
            FrameRef::Failed { exec_id, message } => {
                Frame::Failed { exec_id: *exec_id, message: message.to_string() }
            }
            FrameRef::Heartbeat { seq, t_send_us, telemetry } => {
                Frame::Heartbeat { seq: *seq, t_send_us: *t_send_us, telemetry: *telemetry }
            }
            FrameRef::HeartbeatAck { seq, t_send_us, recv_us, reply_us } => Frame::HeartbeatAck {
                seq: *seq,
                t_send_us: *t_send_us,
                recv_us: *recv_us,
                reply_us: *reply_us,
            },
            FrameRef::Fetch { key } => Frame::Fetch { key: *key },
            FrameRef::Data { key, blob } => Frame::Data { key: *key, blob: blob.to_owned() },
            FrameRef::TraceChunk { bytes } => Frame::TraceChunk { bytes: bytes.to_vec() },
            FrameRef::StatsSnapshot { wall_us, counters, gauges } => Frame::StatsSnapshot {
                wall_us: *wall_us,
                counters: counters.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
                gauges: gauges.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
            },
            FrameRef::BlockPut { hash, blob } => {
                Frame::BlockPut { hash: *hash, blob: blob.to_owned() }
            }
            FrameRef::BlockRequest { hash } => Frame::BlockRequest { hash: *hash },
            FrameRef::BlockData { hash, blob } => {
                Frame::BlockData { hash: *hash, blob: blob.to_owned() }
            }
            FrameRef::BlockEvict { hash } => Frame::BlockEvict { hash: *hash },
            FrameRef::ClientHello { tenant, proto } => {
                Frame::ClientHello { tenant: tenant.to_string(), proto: *proto }
            }
            FrameRef::SubmitSweep { name, space_json, algo, trials, seed, wave } => {
                Frame::SubmitSweep {
                    name: name.to_string(),
                    space_json: space_json.to_string(),
                    algo: algo.to_string(),
                    trials: *trials,
                    seed: *seed,
                    wave: *wave,
                }
            }
            FrameRef::SweepReject { code, message } => {
                Frame::SweepReject { code: *code, message: message.to_string() }
            }
            FrameRef::SweepStatus {
                sweep_id,
                state,
                done,
                failed,
                total,
                best_acc,
                best_label,
                throttled,
                follow,
            } => Frame::SweepStatus {
                sweep_id: *sweep_id,
                state: *state,
                done: *done,
                failed: *failed,
                total: *total,
                best_acc: *best_acc,
                best_label: best_label.to_string(),
                throttled: *throttled,
                follow: *follow,
            },
            FrameRef::LeaderboardChunk { sweep_id, rows } => Frame::LeaderboardChunk {
                sweep_id: *sweep_id,
                rows: rows.iter().map(|row| row.to_owned()).collect(),
            },
            FrameRef::CancelSweep { sweep_id } => Frame::CancelSweep { sweep_id: *sweep_id },
            FrameRef::SweepDone { sweep_id, state, wall_us, message } => Frame::SweepDone {
                sweep_id: *sweep_id,
                state: *state,
                wall_us: *wall_us,
                message: message.to_string(),
            },
            FrameRef::Shutdown => Frame::Shutdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { name: "127.0.0.1:7077".into(), cores: 4, gpus: 1, mem_gib: 32 },
            Frame::Submit {
                exec_id: 42,
                task_id: 7,
                attempt: 2,
                node: 1,
                fn_id: 3,
                fn_name: Some("graph.experiment".into()),
                variant: 0,
                cores: vec![0, 1],
                gpus: vec![],
                args: vec![
                    WireArg::Inline {
                        key: (9 << 32) | 1,
                        blob: Blob { tag: "hpo.config".into(), bytes: vec![1, 2, 3] },
                    },
                    WireArg::Cached { key: (10 << 32) | 4 },
                    WireArg::Block { key: (11 << 32) | 2, hash: 0xdead_beef_u128 << 64 | 7 },
                ],
            },
            Frame::Submit {
                exec_id: 43,
                task_id: 8,
                attempt: 1,
                node: 0,
                fn_id: 3,
                fn_name: None,
                variant: 1,
                cores: vec![],
                gpus: vec![0],
                args: vec![],
            },
            Frame::Done {
                exec_id: 42,
                recv_us: 10_000,
                start_us: 10_050,
                end_us: 25_000,
                outputs: vec![Blob { tag: "hpo.trial".into(), bytes: vec![0xab; 100] }],
            },
            Frame::Done { exec_id: 44, recv_us: 0, start_us: 0, end_us: 0, outputs: vec![] },
            Frame::Failed { exec_id: 43, message: "task panicked: boom".into() },
            Frame::Heartbeat { seq: 9, t_send_us: 123_456, telemetry: true },
            Frame::Heartbeat { seq: 10, t_send_us: 123_789, telemetry: false },
            Frame::HeartbeatAck { seq: 9, t_send_us: 123_456, recv_us: 99_000, reply_us: 99_004 },
            Frame::Fetch { key: 1 << 40 },
            Frame::Data { key: 1 << 40, blob: Blob { tag: "rnet.u64".into(), bytes: vec![5] } },
            Frame::TraceChunk { bytes: vec![0xde, 0xad, 0xbe, 0xef] },
            Frame::TraceChunk { bytes: vec![] },
            Frame::StatsSnapshot {
                wall_us: 5_000_000,
                counters: vec![("tasks_total".into(), 42), ("bytes_total".into(), 1 << 33)],
                gauges: vec![("depth".into(), 2.5), ("neg".into(), -1.0)],
            },
            Frame::StatsSnapshot { wall_us: 0, counters: vec![], gauges: vec![] },
            Frame::BlockPut {
                hash: u128::MAX - 3,
                blob: Blob { tag: "tinyml.dataset".into(), bytes: vec![0x5a; 256] },
            },
            Frame::BlockRequest { hash: 1 },
            Frame::BlockData {
                hash: 1,
                blob: Blob { tag: "tinyml.dataset".into(), bytes: vec![] },
            },
            Frame::BlockEvict { hash: 0x0123_4567_89ab_cdef_u128 << 64 },
            Frame::ClientHello { tenant: "acme".into(), proto: 1 },
            Frame::SubmitSweep {
                name: "nightly".into(),
                space_json: r#"{"batch_size":[32,64]}"#.into(),
                algo: "grid".into(),
                trials: 0,
                seed: 42,
                wave: 0,
            },
            Frame::SweepReject { code: 1, message: "sweep queue full".into() },
            Frame::SweepStatus {
                sweep_id: 3,
                state: 1,
                done: 5,
                failed: 1,
                total: 8,
                best_acc: 0.91,
                best_label: "optimizer=Adam num_epochs=2".into(),
                throttled: 4,
                follow: 0,
            },
            Frame::SweepStatus {
                sweep_id: 3,
                state: 0,
                done: 0,
                failed: 0,
                total: 0,
                best_acc: 0.0,
                best_label: String::new(),
                throttled: 0,
                follow: 1,
            },
            Frame::LeaderboardChunk {
                sweep_id: 3,
                rows: vec![
                    LeaderRow {
                        label: "optimizer=Adam num_epochs=2".into(),
                        accuracy: 0.91,
                        epochs: 2,
                        task_us: 123_456,
                    },
                    LeaderRow {
                        label: "optimizer=SGD num_epochs=1".into(),
                        accuracy: 0.72,
                        epochs: 1,
                        task_us: 60_000,
                    },
                ],
            },
            Frame::LeaderboardChunk { sweep_id: 9, rows: vec![] },
            Frame::CancelSweep { sweep_id: 3 },
            Frame::SweepDone { sweep_id: 3, state: 2, wall_us: 5_000_000, message: String::new() },
            Frame::SweepDone { sweep_id: 4, state: 3, wall_us: 1, message: "space parse".into() },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn every_frame_type_roundtrips() {
        for frame in sample_frames() {
            let buf = frame.encode();
            let (decoded, used) = Frame::decode(&buf).unwrap().expect("complete frame");
            assert_eq!(decoded, frame);
            assert_eq!(used, buf.len(), "whole buffer consumed for {frame:?}");
        }
    }

    #[test]
    fn truncated_frames_wait_for_more_bytes() {
        for frame in sample_frames() {
            let buf = frame.encode();
            for cut in 0..buf.len() {
                assert_eq!(
                    Frame::decode(&buf[..cut]).unwrap(),
                    None,
                    "prefix of {cut} bytes of {frame:?} must not decode"
                );
            }
        }
    }

    #[test]
    fn pipelined_frames_decode_one_at_a_time() {
        let mut buf = Vec::new();
        for f in sample_frames() {
            f.encode_into(&mut buf);
        }
        let mut at = 0;
        let mut seen = Vec::new();
        while let Some((f, n)) = Frame::decode(&buf[at..]).unwrap() {
            seen.push(f);
            at += n;
        }
        assert_eq!(seen, sample_frames());
        assert_eq!(at, buf.len());
    }

    #[test]
    fn bad_magic_is_rejected_immediately() {
        assert_eq!(Frame::decode(b"XN\x01\x05"), Err(DecodeError::BadMagic));
        assert_eq!(Frame::decode(b"RX\x01\x05"), Err(DecodeError::BadMagic));
        // ...even from the very first byte.
        assert_eq!(Frame::decode(b"G"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn wrong_version_and_type_are_rejected() {
        assert_eq!(Frame::decode(b"RN\x02\x05\x00"), Err(DecodeError::BadVersion(2)));
        assert_eq!(Frame::decode(b"RN\x01\x63\x00"), Err(DecodeError::UnknownFrameType(0x63)));
        assert_eq!(Frame::decode(b"RN\x01\x00\x00"), Err(DecodeError::UnknownFrameType(0)));
    }

    #[test]
    fn oversize_payload_rejected_without_allocation() {
        let mut buf = b"RN\x01\x05".to_vec();
        varint::put(&mut buf, MAX_PAYLOAD + 1);
        assert_eq!(Frame::decode(&buf), Err(DecodeError::Oversize(MAX_PAYLOAD + 1)));
    }

    #[test]
    fn malformed_payload_rejected() {
        // A Failed frame whose payload stops mid-string.
        let good = Frame::Failed { exec_id: 1, message: "xyz".into() }.encode();
        let mut bad = b"RN\x01\x04".to_vec();
        // keep 3 payload bytes of the original 5+
        let payload = &good[5..8];
        varint::put(&mut bad, payload.len() as u64);
        bad.extend_from_slice(payload);
        assert!(matches!(Frame::decode(&bad), Err(DecodeError::Malformed(_))));
        // Trailing payload bytes are equally malformed (Fetch = one u64).
        let mut padded = b"RN\x01\x07".to_vec();
        varint::put(&mut padded, 3);
        padded.extend_from_slice(&[1, 0, 0]);
        assert!(matches!(Frame::decode(&padded), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn ref_decode_matches_owned_decode() {
        for frame in sample_frames() {
            let buf = frame.encode();
            let (as_ref, used) = FrameRef::decode(&buf).unwrap().expect("complete frame");
            assert_eq!(as_ref.to_owned(), frame);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn ref_decode_borrows_blob_bytes_in_place() {
        let frame = Frame::Done {
            exec_id: 5,
            recv_us: 1,
            start_us: 2,
            end_us: 3,
            outputs: vec![Blob { tag: "hpo.trial".into(), bytes: vec![7; 64] }],
        };
        let buf = frame.encode();
        let (decoded, _) = FrameRef::decode(&buf).unwrap().unwrap();
        let FrameRef::Done { outputs, .. } = decoded else { panic!("wrong frame") };
        let range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        assert!(range.contains(&(outputs[0].bytes.as_ptr() as usize)), "payload not copied");
        assert!(range.contains(&(outputs[0].tag.as_ptr() as usize)), "tag not copied");
    }

    #[test]
    fn heartbeat_is_tiny() {
        // seq + a realistic µs timestamp + flag: still well under one
        // cache line even with varint worst cases.
        let hb = Frame::Heartbeat { seq: 1, t_send_us: 3_600_000_000, telemetry: false };
        assert!(hb.encode().len() <= 16, "heartbeats stay tiny: {}", hb.encode().len());
        let ack = Frame::HeartbeatAck {
            seq: 1,
            t_send_us: 3_600_000_000,
            recv_us: 3_600_000_100,
            reply_us: 3_600_000_101,
        };
        assert!(ack.encode().len() <= 32, "acks stay tiny: {}", ack.encode().len());
        assert_eq!(Frame::Shutdown.encode().len(), 5);
    }

    #[test]
    fn bad_telemetry_flag_is_malformed() {
        let good = Frame::Heartbeat { seq: 1, t_send_us: 2, telemetry: true }.encode();
        let mut bad = good.clone();
        *bad.last_mut().unwrap() = 7; // flag byte must be 0 or 1
        assert!(matches!(Frame::decode(&bad), Err(DecodeError::Malformed(_))));
    }
}
