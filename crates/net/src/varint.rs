//! LEB128 variable-length integers — the frame length prefix and every
//! integer field on the wire.
//!
//! Small values (the common case: core counts, attempt numbers, short
//! payload lengths) encode in one byte; a `u64` never needs more than ten.
//! The decoder is incremental-friendly: it distinguishes "need more bytes"
//! from "malformed", which is what lets [`crate::conn::FrameReader`] resume
//! across arbitrary read boundaries.

/// Maximum encoded length of a `u64` (⌈64/7⌉ bytes).
pub const MAX_LEN: usize = 10;

/// Append the LEB128 encoding of `v` to `out`.
pub fn put(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode result of [`take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Take {
    /// A full value and the number of bytes it consumed.
    Got(u64, usize),
    /// The buffer ends mid-varint — feed more bytes and retry.
    Incomplete,
    /// More than [`MAX_LEN`] continuation bytes: not a valid `u64`.
    Overlong,
}

/// Decode one LEB128 value from the front of `buf`.
pub fn take(buf: &[u8]) -> Take {
    let mut v: u64 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_LEN {
            return Take::Overlong;
        }
        // The 10th byte may only carry the top bit of a u64.
        if i == MAX_LEN - 1 && byte > 0x01 {
            return Take::Overlong;
        }
        v |= u64::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            return Take::Got(v, i + 1);
        }
    }
    Take::Incomplete
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        put(&mut buf, v);
        assert_eq!(take(&buf), Take::Got(v, buf.len()), "value {v}");
    }

    #[test]
    fn encodes_boundaries() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        put(&mut buf, 100);
        assert_eq!(buf, vec![100]);
    }

    #[test]
    fn incomplete_prefix_reports_incomplete() {
        let mut buf = Vec::new();
        put(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert_eq!(take(&buf[..cut]), Take::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encodings_rejected() {
        // 11 continuation bytes can never be a u64.
        assert_eq!(take(&[0x80; 11]), Take::Overlong);
        // 10 bytes whose last carries more than the top u64 bit.
        let mut buf = vec![0x80; 9];
        buf.push(0x02);
        assert_eq!(take(&buf), Take::Overlong);
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut buf = Vec::new();
        put(&mut buf, 300);
        let used = buf.len();
        buf.extend_from_slice(&[0xde, 0xad]);
        assert_eq!(take(&buf), Take::Got(300, used));
    }
}
