//! Readiness polling: the thin OS layer under the event-loop backend.
//!
//! A deliberately small subset of what `mio`/`polling` offer, written
//! directly against the platform C library (which `std` already links) so
//! the crate stays dependency-free:
//!
//! * [`Poller`] — register sockets with a `u64` token and an [`Interest`]
//!   (read/write), then [`Poller::wait`] for readiness events. Linux gets
//!   `epoll`; every other Unix falls back to `poll(2)` (the fallback also
//!   compiles — and is unit-tested — on Linux).
//! * [`Waker`] — a self-pipe that makes `wait` return from another thread,
//!   which is how writer threads hand buffered frames to the loop.
//!
//! Registration is **level-triggered**: an fd that still has unread bytes
//! (or writable space) keeps firing, so a loop that drains until
//! `WouldBlock` never misses data. Tokens are caller-chosen; the poller
//! never inspects them.
//!
//! ```
//! use rnet::poll::{Interest, Poller, Waker};
//! use std::time::Duration;
//!
//! let poller = Poller::new().unwrap();
//! let waker = Waker::new(&poller, 7).unwrap();
//! waker.wake().unwrap();
//! let mut events = Vec::new();
//! poller.wait(&mut events, Some(Duration::from_secs(1))).unwrap();
//! assert_eq!(events[0].token, 7);
//! waker.drain(); // reset for the next wake
//! ```

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Fire when the fd has bytes to read (or the peer hung up).
    pub read: bool,
    /// Fire when the fd can accept more bytes.
    pub write: bool,
}

impl Interest {
    /// Read readiness only — the steady state of a connection.
    pub const READ: Interest = Interest { read: true, write: false };
    /// Read and write readiness — while a send buffer has a backlog.
    pub const READ_WRITE: Interest = Interest { read: true, write: true };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (or at EOF/error — a read will tell).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
}

/// Timeout in whole milliseconds for the C APIs: `None` blocks forever,
/// sub-millisecond waits round up to 1 ms so they stay waits, not spins.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

/// Minimal FFI onto the platform C library. `std` links libc on every
/// supported Unix, so plain `extern "C"` declarations resolve without any
/// crate dependency.
#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    // epoll_event is packed on x86-64 (kernel ABI), naturally aligned
    // elsewhere.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    #[cfg(target_os = "linux")]
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x0004;
}

/// A non-blocking pipe pair `(read_end, write_end)` — the self-pipe trick
/// behind [`Waker`].
fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
    unsafe {
        let mut fds = [0i32; 2];
        if sys::pipe(fds.as_mut_ptr()) != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            let flags = sys::fcntl(fd, sys::F_GETFL, 0);
            if flags < 0 || sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) < 0 {
                let e = io::Error::last_os_error();
                sys::close(fds[0]);
                sys::close(fds[1]);
                return Err(e);
            }
        }
        Ok((fds[0], fds[1]))
    }
}

/// Readiness selector over a set of registered fds.
///
/// On Linux this is an `epoll` instance; elsewhere it is the portable
/// [`PollFallback`]. Both are safe to drive from one thread while other
/// threads call `register`/`modify` (epoll is kernel-side thread-safe; the
/// fallback serialises its fd table behind a mutex).
#[derive(Debug)]
pub enum Poller {
    /// Linux epoll instance.
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    /// Portable `poll(2)` fallback.
    Fallback(PollFallback),
}

impl Poller {
    /// The platform's best poller: epoll on Linux, `poll(2)` elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller::Epoll(Epoll::new()?))
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Poller::Fallback(PollFallback::new()))
        }
    }

    /// The portable fallback, selectable everywhere (used by tests to keep
    /// the non-Linux path honest on Linux CI).
    pub fn fallback() -> Poller {
        Poller::Fallback(PollFallback::new())
    }

    /// Start watching `fd` under `token` with `interest`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Fallback(p) => p.register(fd, token, interest),
        }
    }

    /// Change the interest (and/or token) of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Fallback(p) => p.register(fd, token, interest),
        }
    }

    /// Stop watching `fd`. Call *before* closing the fd — a closed duplicate
    /// elsewhere keeps an epoll registration alive otherwise.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::READ),
            Poller::Fallback(p) => {
                p.deregister(fd);
                Ok(())
            }
        }
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses. Ready events are appended to `events` (cleared first);
    /// returns the number delivered (0 = timeout).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(events, timeout),
            Poller::Fallback(p) => p.wait(events, timeout),
        }
    }
}

/// Linux `epoll` poller. The registration table lives in the kernel, so
/// every operation is a thin syscall wrapper.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct Epoll {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut flags = 0u32;
        if interest.read {
            flags |= sys::EPOLLIN;
        }
        if interest.write {
            flags |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent { events: flags, data: token };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 64];
        let n = loop {
            let rc = unsafe {
                sys::epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms(timeout))
            };
            if rc >= 0 {
                break rc as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for ev in &raw[..n] {
            let ev = *ev; // copy out of the possibly-packed array slot
            let flags = ev.events;
            events.push(Event {
                token: ev.data,
                // Errors and hangups surface as readable: the next read
                // reports the condition precisely.
                readable: flags & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                writable: flags & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(events.len())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// Portable poller over `poll(2)`: the registration table lives in user
/// space behind a mutex and is rebuilt into a `pollfd` array per wait.
/// O(fds) per call — fine at the handful-of-workers scale this runtime
/// drives, and available on every Unix.
#[derive(Debug, Default)]
pub struct PollFallback {
    fds: std::sync::Mutex<Vec<(RawFd, u64, Interest)>>,
}

impl PollFallback {
    fn new() -> PollFallback {
        PollFallback::default()
    }

    fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut fds = self.fds.lock().expect("poller table poisoned");
        if let Some(slot) = fds.iter_mut().find(|(f, _, _)| *f == fd) {
            *slot = (fd, token, interest);
        } else {
            fds.push((fd, token, interest));
        }
        Ok(())
    }

    fn deregister(&self, fd: RawFd) {
        self.fds.lock().expect("poller table poisoned").retain(|(f, _, _)| *f != fd);
    }

    fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let (mut pollfds, tokens): (Vec<sys::PollFd>, Vec<u64>) = {
            let fds = self.fds.lock().expect("poller table poisoned");
            fds.iter()
                .map(|&(fd, token, interest)| {
                    let mut ev = 0i16;
                    if interest.read {
                        ev |= sys::POLLIN;
                    }
                    if interest.write {
                        ev |= sys::POLLOUT;
                    }
                    (sys::PollFd { fd, events: ev, revents: 0 }, token)
                })
                .unzip()
        };
        let n = loop {
            let rc = unsafe {
                sys::poll(pollfds.as_mut_ptr(), pollfds.len() as u64, timeout_ms(timeout))
            };
            if rc >= 0 {
                break rc;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        if n > 0 {
            for (pfd, &token) in pollfds.iter().zip(&tokens) {
                let re = pfd.revents;
                if re != 0 {
                    events.push(Event {
                        token,
                        readable: re & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0,
                        writable: re & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP) != 0,
                    });
                }
            }
        }
        Ok(events.len())
    }
}

/// Cross-thread wakeup for a [`Poller`]: a non-blocking self-pipe whose
/// read end is registered like any socket. [`Waker::wake`] is safe from
/// any thread; the loop calls [`Waker::drain`] when it sees the token.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Build a waker and register its read end on `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let (read_fd, write_fd) = nonblocking_pipe()?;
        poller.register(read_fd, token, Interest::READ)?;
        Ok(Waker { read_fd, write_fd })
    }

    /// Make the poller's `wait` return. Idempotent while undrained: the
    /// pipe holds at most a buffer of bytes and `wake` ignores a full one.
    pub fn wake(&self) -> io::Result<()> {
        let buf = [1u8];
        let rc = unsafe { sys::write(self.write_fd, buf.as_ptr().cast(), 1) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            // A full pipe already guarantees a pending wakeup.
            if e.kind() != io::ErrorKind::WouldBlock {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Consume queued wakeups so the next `wait` blocks again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let rc = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if rc <= 0 {
                return;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

// Waker writes/reads raw fds it owns; both syscalls are thread-safe.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn pollers() -> Vec<Poller> {
        let mut v = vec![Poller::fallback()];
        v.push(Poller::new().unwrap());
        v
    }

    #[test]
    fn readable_after_peer_writes() {
        for poller in pollers() {
            let (mut a, b) = loopback_pair();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 42, Interest::READ).unwrap();
            let mut events = Vec::new();
            // Nothing to read yet: times out.
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0);
            a.write_all(b"ping").unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(n, 1);
            assert_eq!(events[0].token, 42);
            assert!(events[0].readable);
        }
    }

    #[test]
    fn write_interest_fires_when_writable() {
        for poller in pollers() {
            let (a, _b) = loopback_pair();
            a.set_nonblocking(true).unwrap();
            poller.register(a.as_raw_fd(), 7, Interest::READ_WRITE).unwrap();
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(n, 1);
            assert!(events[0].writable, "fresh socket has send-buffer space");
            // Downgrade to read-only: no more writable storms.
            poller.modify(a.as_raw_fd(), 7, Interest::READ).unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0);
        }
    }

    #[test]
    fn peer_close_is_reported_as_readable() {
        for poller in pollers() {
            let (a, b) = loopback_pair();
            a.set_nonblocking(true).unwrap();
            poller.register(a.as_raw_fd(), 1, Interest::READ).unwrap();
            drop(b.take_error()); // silence unused warnings
            drop(b);
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(n, 1);
            assert!(events[0].readable, "EOF must wake a reader");
        }
    }

    #[test]
    fn waker_crosses_threads_and_drains() {
        for poller in pollers() {
            let waker = std::sync::Arc::new(Waker::new(&poller, u64::MAX).unwrap());
            let w = std::sync::Arc::clone(&waker);
            let t0 = Instant::now();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                w.wake().unwrap();
            });
            let mut events = Vec::new();
            let n = poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1);
            assert_eq!(events[0].token, u64::MAX);
            assert!(t0.elapsed() < Duration::from_secs(4), "woke early, not by timeout");
            waker.drain();
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "drained waker stays quiet");
            handle.join().unwrap();
        }
    }

    #[test]
    fn deregister_stops_events() {
        for poller in pollers() {
            let (mut a, b) = loopback_pair();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 9, Interest::READ).unwrap();
            a.write_all(b"x").unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            assert_eq!(events.len(), 1);
            poller.deregister(b.as_raw_fd()).unwrap();
            let n = poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "deregistered fd is silent even with unread bytes");
            // Keep `b` alive so the fd is valid for the whole test.
            let mut sink = [0u8; 1];
            let _ = (&b).read(&mut sink);
        }
    }
}
