//! Field-level encoding helpers shared by the frame codec and by
//! application value codecs (the driver/worker serialise task inputs and
//! outputs with these exact primitives, so both sides agree byte for byte).
//!
//! Integers are LEB128 varints ([`crate::varint`]), floats are IEEE-754
//! little-endian, byte strings and UTF-8 strings are length-prefixed.

use crate::varint;

/// A malformed field while decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Append a varint.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    varint::put(out, v);
}

/// Append a varint (32-bit convenience).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    varint::put(out, u64::from(v));
}

/// Append an IEEE-754 double, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    varint::put(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Sequential reader over a complete payload. Every accessor returns
/// [`WireError`] on truncation or malformed data — by the time a payload
/// reaches this reader the frame layer has already assembled it in full,
/// so "incomplete" here is a protocol violation, not a short read.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Next varint.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        match varint::take(&self.buf[self.pos..]) {
            varint::Take::Got(v, n) => {
                self.pos += n;
                Ok(v)
            }
            varint::Take::Incomplete => Err(WireError("truncated varint".into())),
            varint::Take::Overlong => Err(WireError("overlong varint".into())),
        }
    }

    /// Next varint, checked to fit `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.u64()?).map_err(|_| WireError("varint exceeds u32".into()))
    }

    /// Next IEEE-754 double.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| WireError("truncated f64".into()))?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(f64::from_le_bytes(raw))
    }

    /// Next length-prefixed byte string (borrowed).
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()? as usize;
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| WireError("truncated byte string".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Next length-prefixed UTF-8 string, borrowed from the payload —
    /// the zero-copy accessor behind [`crate::frame::FrameRef`].
    pub fn str_ref(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError("invalid UTF-8 string".into()))
    }

    /// Next length-prefixed UTF-8 string (owned).
    pub fn str(&mut self) -> Result<String, WireError> {
        Ok(self.str_ref()?.to_string())
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError(format!("{} trailing bytes in payload", self.remaining())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_roundtrip_in_order() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 9_000_000_000);
        put_u32(&mut buf, 7);
        put_f64(&mut buf, -0.125);
        put_str(&mut buf, "graph.experiment");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64().unwrap(), 9_000_000_000);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "graph.experiment");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut r = Reader::new(&buf[..3]);
        assert!(r.str().is_err());
        let mut r = Reader::new(&[0x40][..]);
        assert!(r.f64().is_err());
    }

    #[test]
    fn u32_overflow_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(Reader::new(&buf).u32().is_err());
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        put_u32(&mut buf, 2);
        let mut r = Reader::new(&buf);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        assert!(Reader::new(&buf).str().is_err());
        assert!(Reader::new(&buf).str_ref().is_err());
    }

    #[test]
    fn str_ref_borrows_from_the_payload() {
        let mut buf = Vec::new();
        put_str(&mut buf, "borrowed");
        let mut r = Reader::new(&buf);
        let s = r.str_ref().unwrap();
        assert_eq!(s, "borrowed");
        let range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        assert!(range.contains(&(s.as_ptr() as usize)), "points into the payload, no copy");
    }
}
