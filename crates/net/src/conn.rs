//! Incremental frame reading and blocking frame I/O.
//!
//! [`FrameReader`] is the partial-read-tolerant decoder: bytes arrive from
//! the socket at whatever boundaries the kernel delivers, get appended to
//! an internal buffer, and complete frames are peeled off the front. The
//! blocking helpers ([`read_frame`], [`write_frames`]) wrap it for the
//! thread-per-connection style both sides of the protocol use — no async
//! stack, one reader thread per socket.

use std::io::{self, Read, Write};

use crate::frame::{DecodeError, Frame};

/// Read-buffer compaction threshold: consumed prefix bytes are dropped once
/// they exceed this, amortising the memmove over many small frames.
const COMPACT_AT: usize = 64 * 1024;

/// Incremental frame decoder over an internal byte buffer.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames.
    start: usize,
}

impl FrameReader {
    /// Empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Append bytes received from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next complete frame, if the buffer holds one.
    /// `Ok(None)` means "feed more bytes"; errors are fatal to the stream.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        match Frame::decode(&self.buf[self.start..])? {
            Some((frame, used)) => {
                self.start += used;
                if self.start >= COMPACT_AT {
                    self.buf.drain(..self.start);
                    self.start = 0;
                }
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }
}

fn decode_err(e: DecodeError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Read frames from a blocking transport until one completes.
///
/// Returns `Ok(None)` on clean EOF (peer closed), `Err` on transport or
/// protocol errors. Extra frames already buffered are returned by
/// subsequent calls without touching the transport.
pub fn read_frame(stream: &mut impl Read, reader: &mut FrameReader) -> io::Result<Option<Frame>> {
    loop {
        if let Some(frame) = reader.next_frame().map_err(decode_err)? {
            return Ok(Some(frame));
        }
        let mut chunk = [0u8; 16 * 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return if reader.pending() == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside a frame"))
            };
        }
        reader.extend(&chunk[..n]);
    }
}

/// Encode `frames` into one buffer and write it in a single syscall burst
/// (the batching half of request pipelining). Returns the bytes written,
/// for byte-accounting metrics.
pub fn write_frames(stream: &mut impl Write, frames: &[Frame]) -> io::Result<usize> {
    let mut buf = Vec::new();
    for f in frames {
        f.encode_into(&mut buf);
    }
    stream.write_all(&buf)?;
    stream.flush()?;
    Ok(buf.len())
}

/// Write one frame and flush. Returns the bytes written.
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> io::Result<usize> {
    write_frames(stream, std::slice::from_ref(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Blob, WireArg};

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Hello { name: "w0".into(), cores: 2, gpus: 0, mem_gib: 8 },
            Frame::Submit {
                exec_id: 1,
                task_id: 1,
                attempt: 1,
                node: 0,
                fn_id: 1,
                fn_name: Some("churn".into()),
                variant: 0,
                cores: vec![0],
                gpus: vec![],
                args: vec![WireArg::Inline {
                    key: 1,
                    blob: Blob { tag: "t".into(), bytes: vec![9; 300] },
                }],
            },
            Frame::Heartbeat { seq: 1, t_send_us: 10, telemetry: false },
            Frame::Done {
                exec_id: 1,
                recv_us: 5,
                start_us: 6,
                end_us: 7,
                outputs: vec![Blob { tag: "t".into(), bytes: vec![] }],
            },
            Frame::Shutdown,
        ]
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles_every_frame() {
        let mut wire = Vec::new();
        for f in frames() {
            f.encode_into(&mut wire);
        }
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        for b in wire {
            reader.extend(&[b]);
            while let Some(f) = reader.next_frame().unwrap() {
                seen.push(f);
            }
        }
        assert_eq!(seen, frames());
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn burst_delivery_drains_pipelined_frames() {
        let mut wire = Vec::new();
        for f in frames() {
            f.encode_into(&mut wire);
        }
        let mut reader = FrameReader::new();
        reader.extend(&wire);
        let mut seen = Vec::new();
        while let Some(f) = reader.next_frame().unwrap() {
            seen.push(f);
        }
        assert_eq!(seen, frames());
    }

    #[test]
    fn corrupt_stream_is_fatal() {
        let mut reader = FrameReader::new();
        reader.extend(b"totally not a frame");
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn read_frame_loops_over_a_cursor_transport() {
        let mut wire = Vec::new();
        for f in frames() {
            f.encode_into(&mut wire);
        }
        let mut cursor = io::Cursor::new(wire);
        let mut reader = FrameReader::new();
        let mut seen = Vec::new();
        while let Some(f) = read_frame(&mut cursor, &mut reader).unwrap() {
            seen.push(f);
        }
        assert_eq!(seen, frames());
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let wire = Frame::Heartbeat { seq: 700, t_send_us: 7, telemetry: true }.encode();
        let mut cursor = io::Cursor::new(wire[..wire.len() - 1].to_vec());
        let mut reader = FrameReader::new();
        let err = read_frame(&mut cursor, &mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn write_frames_batches_and_counts_bytes() {
        let mut out = Vec::new();
        let n = write_frames(&mut out, &frames()).unwrap();
        assert_eq!(n, out.len());
        let single = write_frame(&mut Vec::new(), &Frame::Shutdown).unwrap();
        assert_eq!(single, Frame::Shutdown.encode().len());
    }

    #[test]
    fn compaction_keeps_the_buffer_bounded() {
        let mut reader = FrameReader::new();
        let frame = Frame::Done {
            exec_id: 3,
            recv_us: 0,
            start_us: 0,
            end_us: 0,
            outputs: vec![Blob { tag: "t".into(), bytes: vec![0; 8 * 1024] }],
        };
        for _ in 0..64 {
            reader.extend(&frame.encode());
            while reader.next_frame().unwrap().is_some() {}
            assert!(reader.buf.len() < 2 * COMPACT_AT, "buffer grew to {}", reader.buf.len());
        }
    }
}
