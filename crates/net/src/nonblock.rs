//! Per-connection reusable buffers for non-blocking sockets.
//!
//! The event-loop backend owns one [`RecvBuf`] and one [`SendBuf`] per
//! connection:
//!
//! * [`RecvBuf`] accumulates whatever byte boundaries the kernel delivers
//!   and peels complete frames off the front as zero-copy
//!   [`FrameRef`]s — the decoded strings and blobs
//!   point straight into the buffer.
//! * [`SendBuf`] coalesces any number of encoded frames into one
//!   contiguous backlog and drains it with as few `write` calls as the
//!   socket accepts, reporting `WouldBlock` as "not drained" so the caller
//!   can re-register write interest instead of spinning.
//!
//! Both reuse their allocation across frames and shrink it back after
//! bursts, so a long-lived connection settles into zero steady-state
//! allocation for the byte path.
//!
//! ```
//! use rnet::nonblock::{Fill, RecvBuf, SendBuf};
//! use rnet::{Frame, FrameRef};
//!
//! // Coalesce two frames into one write burst…
//! let mut send = SendBuf::new();
//! send.push(&Frame::Heartbeat { seq: 1, t_send_us: 2, telemetry: false });
//! send.push(&Frame::Fetch { key: 9 });
//! let mut wire = Vec::new();
//! let (n, drained) = send.flush(&mut wire).unwrap();
//! assert!(drained);
//! assert_eq!(n, wire.len());
//!
//! // …and reassemble them on the other side, wherever the reads split.
//! let mut recv = RecvBuf::new();
//! let mut src = std::io::Cursor::new(wire);
//! assert!(matches!(recv.fill_from(&mut src).unwrap(), Fill::Bytes(_)));
//! assert!(matches!(recv.next_frame().unwrap(), Some(FrameRef::Heartbeat { seq: 1, .. })));
//! assert!(matches!(recv.next_frame().unwrap(), Some(FrameRef::Fetch { key: 9 })));
//! assert!(recv.next_frame().unwrap().is_none());
//! ```

use std::io::{self, Read, Write};

use crate::frame::{DecodeError, Frame, FrameRef};

/// Bytes of spare tail capacity guaranteed before each socket read.
const READ_CHUNK: usize = 64 * 1024;

/// Consumed-prefix size that triggers compaction of a [`RecvBuf`] /
/// [`SendBuf`], amortising the memmove over many small frames.
const COMPACT_AT: usize = 64 * 1024;

/// Capacity retained across bursts; anything larger shrinks back once the
/// buffer drains so one huge frame does not pin its footprint forever.
const RETAIN_CAP: usize = 1024 * 1024;

/// Outcome of one [`RecvBuf::fill_from`] read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// The read delivered this many bytes (> 0).
    Bytes(usize),
    /// The socket has no bytes right now — wait for readiness.
    WouldBlock,
    /// Clean end of stream.
    Eof,
}

/// Reusable receive buffer: accumulate socket bytes, decode frames in
/// place.
///
/// The intended loop is: on a readable event, call [`RecvBuf::fill_from`]
/// until it reports [`Fill::WouldBlock`], interleaving
/// [`RecvBuf::next_frame`] drains; each returned
/// [`FrameRef`] borrows from the buffer and must
/// be consumed before the next `fill_from`/`next_frame` call (the borrow
/// checker enforces this).
#[derive(Debug, Default)]
pub struct RecvBuf {
    /// Initialised storage; live bytes occupy `start..end`.
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl RecvBuf {
    /// Empty buffer; allocates lazily on first read.
    pub fn new() -> RecvBuf {
        RecvBuf::default()
    }

    /// Bytes received but not yet decoded.
    pub fn pending(&self) -> usize {
        self.end - self.start
    }

    /// Drop the consumed prefix when it has grown large (or the buffer is
    /// empty), keeping decode offsets small and the footprint bounded.
    fn compact(&mut self) {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        } else if self.start >= COMPACT_AT {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
    }

    /// Issue **one** read into spare capacity. Call in a loop until
    /// [`Fill::WouldBlock`] to drain a level-triggered readiness event.
    /// `Interrupted` is retried internally; other errors are fatal to the
    /// connection.
    pub fn fill_from(&mut self, src: &mut impl Read) -> io::Result<Fill> {
        self.compact();
        if self.buf.len() - self.end < READ_CHUNK {
            if self.start > 0 {
                // Force a compaction ahead of growth.
                self.buf.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.start = 0;
            }
            if self.buf.len() - self.end < READ_CHUNK {
                self.buf.resize(self.end + READ_CHUNK, 0);
            }
        } else if self.buf.len() > RETAIN_CAP && self.end <= READ_CHUNK {
            // Drained after a burst: give the excess back.
            self.buf.truncate(RETAIN_CAP);
            self.buf.shrink_to_fit();
        }
        loop {
            match src.read(&mut self.buf[self.end..]) {
                Ok(0) => return Ok(Fill::Eof),
                Ok(n) => {
                    self.end += n;
                    return Ok(Fill::Bytes(n));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(Fill::WouldBlock),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Decode the next complete frame in place. `Ok(None)` means the
    /// buffer holds at most a frame prefix; errors are fatal to the
    /// stream. The returned frame borrows this buffer.
    pub fn next_frame(&mut self) -> Result<Option<FrameRef<'_>>, DecodeError> {
        self.compact();
        // Split the borrows: the frame borrows `buf`, the cursor advance
        // touches only `start`.
        let RecvBuf { buf, start, end } = self;
        match FrameRef::decode(&buf[*start..*end])? {
            Some((frame, used)) => {
                *start += used;
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }
}

/// Reusable, coalescing send buffer for a non-blocking socket.
///
/// Writers [`push`](SendBuf::push) any number of frames — they encode
/// back-to-back into one contiguous backlog — then [`flush`](SendBuf::flush)
/// drains with as few syscalls as the socket accepts. A partial drain
/// (`WouldBlock`) leaves the tail buffered; the caller re-registers write
/// interest and flushes again when the socket signals writable.
#[derive(Debug, Default)]
pub struct SendBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    pos: usize,
}

impl SendBuf {
    /// Empty buffer; allocates lazily on first push.
    pub fn new() -> SendBuf {
        SendBuf::default()
    }

    /// Encode `frame` onto the backlog (no I/O).
    pub fn push(&mut self, frame: &Frame) {
        frame.encode_into(&mut self.buf);
    }

    /// Bytes encoded but not yet written.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when there is nothing left to write.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Drop the backlog without writing it (connection teardown).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }

    /// Write as much backlog as the socket accepts right now.
    ///
    /// Returns `(bytes_written, drained)`: `drained == false` means the
    /// socket reported `WouldBlock` with bytes still pending — re-register
    /// write interest and call again on the writable event. `Interrupted`
    /// is retried internally; other errors are fatal.
    pub fn flush(&mut self, dst: &mut impl Write) -> io::Result<(usize, bool)> {
        let mut written = 0;
        while self.pos < self.buf.len() {
            match dst.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.pos += n;
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Keep offsets small across long backpressure stretches.
                    if self.pos >= COMPACT_AT {
                        self.buf.drain(..self.pos);
                        self.pos = 0;
                    }
                    return Ok((written, false));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        if self.buf.capacity() > RETAIN_CAP {
            self.buf.shrink_to(RETAIN_CAP);
        }
        Ok((written, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Blob, WireArg};

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Hello { name: "w9".into(), cores: 2, gpus: 0, mem_gib: 4 },
            Frame::Submit {
                exec_id: 10,
                task_id: 3,
                attempt: 1,
                node: 0,
                fn_id: 2,
                fn_name: Some("graph.experiment".into()),
                variant: 0,
                cores: vec![0, 1],
                gpus: vec![],
                args: vec![WireArg::Inline {
                    key: 77,
                    blob: Blob { tag: "t".into(), bytes: vec![3; 500] },
                }],
            },
            Frame::Done { exec_id: 10, recv_us: 1, start_us: 2, end_us: 3, outputs: vec![] },
            Frame::Shutdown,
        ]
    }

    /// A reader that yields its script one slice per call, then
    /// `WouldBlock`, to mimic a non-blocking socket.
    struct Script {
        chunks: Vec<Vec<u8>>,
        at: usize,
    }

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.chunks.len() {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let chunk = &self.chunks[self.at];
            assert!(out.len() >= chunk.len(), "test chunks fit the read window");
            out[..chunk.len()].copy_from_slice(chunk);
            self.at += 1;
            Ok(chunk.len())
        }
    }

    #[test]
    fn recv_reassembles_across_odd_chunk_boundaries() {
        let mut wire = Vec::new();
        for f in frames() {
            f.encode_into(&mut wire);
        }
        // Deliver in awkward 7-byte chunks.
        let chunks: Vec<Vec<u8>> = wire.chunks(7).map(|c| c.to_vec()).collect();
        let mut src = Script { chunks, at: 0 };
        let mut recv = RecvBuf::new();
        let mut seen = Vec::new();
        loop {
            match recv.fill_from(&mut src).unwrap() {
                Fill::Bytes(_) => {}
                Fill::WouldBlock => break,
                Fill::Eof => panic!("script never EOFs"),
            }
            while let Some(f) = recv.next_frame().unwrap() {
                seen.push(f.to_owned());
            }
        }
        assert_eq!(seen, frames());
        assert_eq!(recv.pending(), 0);
    }

    #[test]
    fn recv_eof_and_errors_pass_through() {
        let mut recv = RecvBuf::new();
        let mut empty = io::Cursor::new(Vec::new());
        assert_eq!(recv.fill_from(&mut empty).unwrap(), Fill::Eof);
        recv.buf = b"garbage line noise".to_vec();
        recv.end = recv.buf.len();
        assert!(recv.next_frame().is_err(), "corruption is fatal");
    }

    /// A writer that accepts a few bytes per call, then blocks once.
    struct Trickle {
        out: Vec<u8>,
        budget: usize,
        blocked: bool,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if !self.blocked {
                self.blocked = true;
                return Err(io::ErrorKind::WouldBlock.into());
            }
            self.blocked = false;
            let n = buf.len().min(self.budget);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_coalesces_and_survives_backpressure() {
        let mut send = SendBuf::new();
        for f in frames() {
            send.push(&f);
        }
        let total = send.pending();
        let mut dst = Trickle { out: Vec::new(), budget: 11, blocked: false };
        let mut written = 0;
        let mut rounds = 0;
        loop {
            let (n, drained) = send.flush(&mut dst).unwrap();
            written += n;
            if drained {
                break;
            }
            rounds += 1;
            assert!(rounds < 10_000, "flush must make progress");
        }
        assert_eq!(written, total);
        assert!(send.is_empty());
        // The byte stream is exactly the concatenated frames.
        let mut wire = Vec::new();
        for f in frames() {
            f.encode_into(&mut wire);
        }
        assert_eq!(dst.out, wire);
    }

    #[test]
    fn send_clear_discards_backlog() {
        let mut send = SendBuf::new();
        send.push(&Frame::Shutdown);
        assert!(!send.is_empty());
        send.clear();
        assert!(send.is_empty());
        let (n, drained) = send.flush(&mut Vec::new()).unwrap();
        assert_eq!((n, drained), (0, true));
    }

    #[test]
    fn recv_buffer_footprint_stays_bounded() {
        // Feed many mid-size frames through; the buffer must not grow
        // monotonically.
        let frame = Frame::Done {
            exec_id: 1,
            recv_us: 0,
            start_us: 0,
            end_us: 0,
            outputs: vec![Blob { tag: "t".into(), bytes: vec![9; 32 * 1024] }],
        };
        let wire = frame.encode();
        let mut recv = RecvBuf::new();
        for _ in 0..128 {
            let mut src = io::Cursor::new(wire.clone());
            loop {
                match recv.fill_from(&mut src).unwrap() {
                    Fill::Eof => break,
                    Fill::Bytes(_) | Fill::WouldBlock => {}
                }
            }
            while recv.next_frame().unwrap().is_some() {}
            assert!(recv.buf.len() <= 2 * RETAIN_CAP, "buffer grew to {}", recv.buf.len());
        }
    }
}
