//! Shared plumbing for the experiment binaries that regenerate the paper's
//! figures. Each binary prints its figure to stdout and writes artefacts
//! (CSV, DOT, PRV traces) under [`out_dir`].
//!
//! | binary | paper artefact |
//! |--------|----------------|
//! | `fig3_task_graph` | Fig 3 — dynamic dependency graph (DOT) |
//! | `fig4_single_task` | Fig 4 — one task pinned to one core |
//! | `fig5_single_node` | Fig 5 — 27 tasks, half-reserved 48-core node |
//! | `fig6_multinode` | Fig 6 — 27 whole-node tasks on 28 vs 14 nodes |
//! | `fig7_mnist_hpo` | Fig 7 — real MNIST-like grid-search accuracy curves |
//! | `fig8_cifar_hpo` | Fig 8 — real CIFAR-like grid-search accuracy curves |
//! | `fig9_time_vs_cores` | Fig 9 — HPO makespan vs cores-per-task |
//! | `overhead_tracing` | §5 — tracing on/off overhead |
//! | `fault_tolerance` | §3/§4 — retry + node-failure recovery |

use std::path::PathBuf;

use cluster::{Allocation, GpuModel, TrainingCost};
use hpo::prelude::*;

/// Directory where experiment binaries drop artefacts.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// The paper's 27-point grid (Listing 1) in submission order.
pub fn paper_grid_configs() -> Vec<Config> {
    let space = SearchSpace::paper_grid();
    let mut grid = GridSearch::new(&space);
    std::iter::from_fn(move || grid.suggest(&[])).collect()
}

/// Simulated duration of one MNIST training under `config` on `cores`
/// reference CPU cores (µs). `alpha` is the multi-core scaling exponent.
pub fn mnist_sim_duration(config: &Config, cores: u32, alpha: f64) -> u64 {
    let epochs = config.get_int("num_epochs").unwrap_or(50) as u32;
    let batch = config.get_int("batch_size").unwrap_or(64) as u32;
    let mut cost = TrainingCost::mnist(epochs, batch);
    cost.alpha = alpha;
    cost.duration(&Allocation::cpu(cores))
}

/// Simulated duration of one CIFAR-10 training under `config` (µs) with
/// optional GPU.
pub fn cifar_sim_duration(config: &Config, cores: u32, gpu: Option<GpuModel>, alpha: f64) -> u64 {
    let epochs = config.get_int("num_epochs").unwrap_or(50) as u32;
    let batch = config.get_int("batch_size").unwrap_or(64) as u32;
    let mut cost = TrainingCost::cifar10(epochs, batch);
    cost.alpha = alpha;
    let alloc = match gpu {
        Some(model) => Allocation::with_gpu(cores, model),
        None => Allocation::cpu(cores),
    };
    cost.duration(&alloc)
}

/// Scale factor for the real-training figures: `HPO_SCALE=full` runs the
/// paper's exact epoch grid; the default divides epochs by 10 so the
/// binaries finish in minutes on a laptop.
pub fn epoch_scale() -> u32 {
    match std::env::var("HPO_SCALE").as_deref() {
        Ok("full") => 1,
        _ => 10,
    }
}

/// Print a standard figure header.
pub fn banner(fig: &str, what: &str) {
    println!("================================================================");
    println!("{fig} — {what}");
    println!("================================================================");
}

/// Format µs of virtual time like the paper reports it (minutes).
pub fn fmt_min(us: u64) -> String {
    format!("{:.1} min", us as f64 / 60e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_27_unique_configs() {
        let g = paper_grid_configs();
        assert_eq!(g.len(), 27);
        let mut labels: Vec<String> = g.iter().map(Config::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 27);
    }

    #[test]
    fn durations_scale_with_epochs_and_cores() {
        let short = Config::new()
            .with("num_epochs", ConfigValue::Int(20))
            .with("batch_size", ConfigValue::Int(64));
        let long = Config::new()
            .with("num_epochs", ConfigValue::Int(100))
            .with("batch_size", ConfigValue::Int(64));
        assert!(mnist_sim_duration(&long, 1, 0.9) > 4 * mnist_sim_duration(&short, 1, 0.9));
        assert!(mnist_sim_duration(&long, 8, 0.9) < mnist_sim_duration(&long, 1, 0.9));
        assert!(
            cifar_sim_duration(&long, 4, Some(GpuModel::V100), 0.9)
                < cifar_sim_duration(&long, 4, None, 0.9)
        );
    }

    #[test]
    fn fmt_min_rounds() {
        assert_eq!(fmt_min(90_000_000), "1.5 min");
    }
}
