//! Figure 5 — the full 27-experiment grid on one 48-core node whose worker
//! reserves half the cores.
//!
//! Paper: "From the configuration file, 27 different experiments are
//! created … Since the worker takes half of the cores in a node, 24 cores
//! are left for the tasks. As such, not all tasks will run in parallel.
//! However, the next task is assigned a computational unit as soon as one
//! is available … 24 tasks were started at the same time … The entire
//! application takes 207 minutes."

use cluster::{Cluster, NodeSpec};
use hpo_bench::{banner, fmt_min, mnist_sim_duration, out_dir, paper_grid_configs};
use paratrace::gantt::{render, GanttOptions};
use paratrace::TraceStats;
use rcompss::{Constraint, Runtime, RuntimeConfig, SubmitOpts, Value};

fn main() {
    banner("Figure 5", "27 grid-search tasks on one 48-core node (worker reserves 24 cores)");

    let cfg =
        RuntimeConfig::on_cluster(Cluster::homogeneous(1, NodeSpec::marenostrum4())).reserve(0, 24);
    let rt = Runtime::simulated(cfg);
    let experiment =
        rt.register("graph.experiment", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));

    let configs = paper_grid_configs();
    for config in &configs {
        let duration = mnist_sim_duration(config, 1, 0.9);
        rt.submit_with(&experiment, vec![], SubmitOpts { sim_duration_us: Some(duration) })
            .expect("submit");
    }
    rt.barrier();

    let records = rt.trace();
    let stats = TraceStats::compute(&records);
    let immediate = TraceStats::tasks_started_within(&records, 0);
    println!("experiments created: {} (3 optimisers × 3 epochs × 3 batch sizes)", configs.len());
    println!("tasks started at t=0: {immediate} (paper: 24)");
    println!("peak parallelism: {}", stats.peak_parallelism);
    println!("makespan: {} (paper: 207 min on their TF/CNN cost profile)", fmt_min(stats.makespan));
    println!("utilisation over 24 task cores: {:.1}%", stats.utilisation(24) * 100.0);
    assert_eq!(immediate, 24);
    assert_eq!(stats.tasks_run, 27);
    assert_eq!(stats.peak_parallelism, 24);

    println!("\ntimeline ('#'=worker-reserved, letters=tasks):");
    print!("{}", render(&records, &GanttOptions { width: 72, ..Default::default() }));

    let prv = paratrace::prv::export("fig5_single_node", &records);
    let stem = out_dir().join("fig5_single_node");
    paratrace::prv::write_files(&stem, &prv).expect("write prv");
    println!("\nParaver trace written to {}.prv", stem.display());
}
