//! §3/§4 — fault tolerance.
//!
//! Paper: "If a task fails for whatever reason (such as node failure), the
//! runtime tries to start the same task in the same node, if it fails
//! again, its restarted in another node … The failure of task does not
//! affect the other tasks unless there are some dependencies."
//!
//! Two scenarios:
//! 1. injected *task* failures exercising the same-node-then-move policy;
//! 2. a *node* death mid-run, with every task it hosted restarted
//!    elsewhere while unaffected tasks continue.

use cluster::{Cluster, FailureInjector, NodeSpec};
use hpo_bench::{banner, fmt_min};
use paratrace::gantt::{render, GanttOptions};
use paratrace::TraceStats;
use rcompss::{Constraint, Runtime, RuntimeConfig, SubmitOpts, Value};

fn main() {
    banner("Fault tolerance", "task retries and node-failure recovery");

    // Scenario 1: task 3 fails twice (same-node retry, then move).
    println!("--- scenario 1: flaky task, default retry policy ---");
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(3, NodeSpec::new("n", 8, vec![], 16)))
        .with_failures(FailureInjector::none().with_task_failure(3, 1).with_task_failure(3, 2));
    let rt = Runtime::simulated(cfg);
    let work = rt.register("experiment", Constraint::cpus(8), 1, |ctx, _| {
        Ok(vec![Value::new((ctx.node, ctx.attempt))])
    });
    let outs: Vec<_> = (0..6)
        .map(|_| {
            rt.submit_with(&work, vec![], SubmitOpts { sim_duration_us: Some(60_000_000) })
                .expect("submit")
                .returns[0]
        })
        .collect();
    rt.barrier();
    for (i, h) in outs.iter().enumerate() {
        let v = rt.wait_on(h).expect("all tasks eventually succeed");
        let (node, attempt) = *v.downcast_ref::<(u32, u32)>().unwrap();
        println!("task {}: completed on node {node}, attempt {attempt}", i + 1);
    }
    let stats = rt.stats();
    println!("failed attempts: {} | permanently failed: {}", stats.failed_attempts, stats.failed);
    assert_eq!(stats.failed_attempts, 2);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.completed, 6);

    // Scenario 2: node 1 dies mid-run.
    println!("\n--- scenario 2: node failure at t=30s ---");
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(4, NodeSpec::new("n", 8, vec![], 16)))
        .with_failures(FailureInjector::none().with_node_failure(30_000_000, 1));
    let rt = Runtime::simulated(cfg);
    let work =
        rt.register("experiment", Constraint::cpus(8), 1, |ctx, _| Ok(vec![Value::new(ctx.node)]));
    for _ in 0..8 {
        rt.submit_with(&work, vec![], SubmitOpts { sim_duration_us: Some(60_000_000) })
            .expect("submit");
    }
    rt.barrier();
    let records = rt.trace();
    let tstats = TraceStats::compute(&records);
    println!("makespan: {}", fmt_min(tstats.makespan));
    println!(
        "tasks completed: {} | failed attempts (node kill): {}",
        rt.stats().completed,
        rt.stats().failed_attempts
    );
    println!("\ntimeline (node rows; the truncated bar on node 1 is the killed attempt):");
    print!(
        "{}",
        render(&records, &GanttOptions { width: 72, per_node: true, ..Default::default() })
    );
    assert_eq!(rt.stats().completed, 8, "every task recovers");
    assert!(rt.stats().failed_attempts >= 1, "the kill is recorded");
    // no task may complete on the dead node after t=30s
    for r in &records {
        if let paratrace::Record::State {
            core,
            start,
            state: paratrace::StateKind::Running(_),
            ..
        } = r
        {
            assert!(!(core.node == 1 && *start >= 30_000_000), "scheduled on dead node: {r:?}");
        }
    }
    println!("\nall tasks recovered; dead node received no work after failure");
}
