//! Ablation: parallel file system vs per-node staged copies.
//!
//! Paper §4: "When not using a Parallel File System … the data required by
//! the task is copied to the specific node that the task will be executed.
//! Otherwise all tasks can read and write to the PFS." This ablation
//! quantifies what the PFS buys: the same 27-task HPO with a shared 150 MB
//! dataset per task, on (a) a PFS cluster and (b) a staged-copy cluster
//! over HPC and Ethernet interconnects.

use cluster::{Cluster, Interconnect, NodeSpec};
use hpo_bench::{banner, fmt_min, paper_grid_configs};
use rcompss::{ArgSpec, Constraint, Runtime, RuntimeConfig, SubmitOpts, Value};

fn run(cluster: Cluster, dataset_bytes: u64) -> u64 {
    let rt = Runtime::simulated(RuntimeConfig::on_cluster(cluster));
    let dataset = rt.literal::<&str>("the-training-set");
    rt.set_data_bytes(dataset, dataset_bytes);
    let experiment =
        rt.register("experiment", Constraint::cpus(48), 1, |_, _| Ok(vec![Value::new(())]));
    for (i, _config) in paper_grid_configs().iter().enumerate() {
        rt.submit_with(
            &experiment,
            vec![ArgSpec::In(dataset)],
            SubmitOpts { sim_duration_us: Some(120_000_000 + i as u64 * 1_000_000) },
        )
        .expect("submit");
    }
    rt.barrier();
    rt.now_us()
}

fn main() {
    banner("Ablation", "PFS vs staged data transfers (27 tasks × 150 MB input)");
    let bytes = 150_000_000u64;
    let nodes = 9; // 27 tasks, 3 waves of 9 whole-node tasks

    let pfs = run(Cluster::homogeneous(nodes, NodeSpec::marenostrum4()), bytes);
    let staged_hpc = run(
        Cluster::homogeneous(nodes, NodeSpec::marenostrum4())
            .without_pfs()
            .with_interconnect(Interconnect::hpc()),
        bytes,
    );
    let staged_eth = run(
        Cluster::homogeneous(nodes, NodeSpec::marenostrum4())
            .without_pfs()
            .with_interconnect(Interconnect::ethernet()),
        bytes,
    );

    println!("{:<28} {:>12}", "configuration", "makespan");
    println!("{:<28} {:>12}", "PFS (GPFS-class)", fmt_min(pfs));
    println!("{:<28} {:>12}", "staged, HPC interconnect", fmt_min(staged_hpc));
    println!("{:<28} {:>12}", "staged, 10 GbE", fmt_min(staged_eth));
    println!(
        "\nstaging penalty vs PFS: {:+.2}% (HPC), {:+.2}% (Ethernet)",
        (staged_hpc as f64 / pfs as f64 - 1.0) * 100.0,
        (staged_eth as f64 / pfs as f64 - 1.0) * 100.0
    );
    println!(
        "note: a 12 GB/s HPC fabric can beat the 8 GB/s PFS read path — the\n\
         PFS advantage the paper leans on is operational (no staging step,\n\
         uniform access), and only becomes a bandwidth win vs commodity nets."
    );

    assert!(staged_eth > staged_hpc, "slower fabric, bigger penalty");
    assert!(staged_eth >= pfs, "10 GbE staging cannot beat GPFS-class reads");
    // Data locality caps the damage: once a node holds the dataset, later
    // waves on that node stage nothing, so the worst case (re-staging for
    // all 27 tasks over Ethernet) is never approached.
    assert!(
        staged_eth < pfs + 27 * (bytes / 1_200),
        "locality must avoid re-staging for every task"
    );

    // The penalty grows with data size.
    let small = run(
        Cluster::homogeneous(nodes, NodeSpec::marenostrum4())
            .without_pfs()
            .with_interconnect(Interconnect::ethernet()),
        1_000_000,
    );
    let big = run(
        Cluster::homogeneous(nodes, NodeSpec::marenostrum4())
            .without_pfs()
            .with_interconnect(Interconnect::ethernet()),
        15_000_000_000,
    );
    println!(
        "\n10 GbE staging with 1 MB inputs: {} | with 15 GB inputs: {}",
        fmt_min(small),
        fmt_min(big)
    );
    assert!(big > small);
}
