//! Ablation: early stopping and wave sizing.
//!
//! Paper §6.2: "early stopping is of paramount significance as it makes no
//! sense to continue with other tasks after one has achieved the desired
//! accuracy." We quantify the saved work on the 27-task grid with a
//! synthetic objective whose best configs clear the target, sweeping the
//! wave size (how many experiments launch per scheduling round): big waves
//! maximise parallelism but commit work before results arrive; small waves
//! react faster.

use std::sync::Arc;

use hpo::experiment::TrialOutcome;
use hpo::prelude::*;
use hpo_bench::banner;
use rcompss::{Runtime, RuntimeConfig};

fn objective() -> hpo::experiment::Objective {
    Arc::new(|config: &Config, _| {
        let epochs = config.get_int("num_epochs").unwrap_or(20) as f64;
        let opt = match config.get_str("optimizer") {
            Some("Adam") => 0.12,
            Some("RMSprop") => 0.05,
            _ => 0.0,
        };
        Ok(TrialOutcome::with_accuracy(0.70 + epochs / 1000.0 + opt))
    })
}

fn run(wave_size: Option<usize>, early_stop: Option<EarlyStop>) -> (usize, bool) {
    let rt = Runtime::simulated(RuntimeConfig::single_node(8));
    let mut opts = ExperimentOptions::default()
        .with_sim_duration(|c| 60_000_000 * c.get_int("num_epochs").unwrap_or(20) as u64 / 20);
    opts.wave_size = wave_size;
    if let Some(es) = early_stop {
        opts.early_stop = Some(es);
    }
    let report = HpoRunner::new(opts)
        .run(&rt, &mut GridSearch::new(&SearchSpace::paper_grid()), objective())
        .expect("run");
    (report.trials.len(), report.early_stopped)
}

fn main() {
    banner("Ablation", "early stopping × wave size (27-config grid, target 0.90)");
    let target = EarlyStop::at_accuracy(0.90);

    let (full, stopped) = run(None, None);
    println!("no early stop           : {full} trials (early_stopped={stopped})");
    assert_eq!(full, 27);

    println!("\n{:>10} {:>10} {:>14}", "wave size", "trials", "work saved");
    let mut best_saving = 0usize;
    for &wave in &[27usize, 8, 4, 1] {
        let (trials, stopped) = run(Some(wave), Some(target));
        assert!(stopped, "target 0.90 is reachable (Adam @ 100 epochs = 0.92)");
        println!("{:>10} {:>10} {:>13.0}%", wave, trials, (1.0 - trials as f64 / 27.0) * 100.0);
        best_saving = best_saving.max(27 - trials);
    }
    assert!(best_saving >= 9, "small waves must save substantial work");
    println!("\nsmaller waves react to the first target-reaching result sooner,");
    println!("at the cost of lower peak parallelism — the paper's trade-off.");
}
