//! §5 — instrumentation overhead: tracing × metrics.
//!
//! Paper: "Both tracing and graph generation create a performance overhead.
//! These two features can easily be turned off by a simple flag when
//! launching the application." This repo adds live metrics under the same
//! contract, so we quantify all four combinations: the Figure 5 workload
//! runs with tracing and metrics independently on/off, measuring the real
//! time the runtime machinery takes (virtual makespans are identical by
//! construction — neither flag may change scheduling).
//!
//! A microbenchmark then pins down the disabled hot path: a counter add and
//! a histogram record against a switched-off registry must each cost no
//! more than a relaxed atomic load and a branch. Regressions here fail the
//! run (ci.sh executes this binary in smoke mode).
//!
//! Pass `smoke` as the first argument for a fast CI-friendly run.

use std::time::Instant;

use cluster::{Cluster, NodeSpec};
use hpo_bench::{banner, mnist_sim_duration, paper_grid_configs};
use rcompss::{Constraint, Runtime, RuntimeConfig, SubmitOpts, Value};

struct RunOutcome {
    wall_us: u64,
    makespan: u64,
    trace_records: usize,
    tasks_dispatched: u64,
}

fn run(tracing: bool, metrics: bool, repeats: u32) -> RunOutcome {
    let mut wall_total = 0u64;
    let mut makespan = 0u64;
    let mut trace_records = 0usize;
    let mut tasks_dispatched = 0u64;
    for _ in 0..repeats {
        let mut cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(1, NodeSpec::marenostrum4()))
            .reserve(0, 24)
            .with_tracing(tracing)
            .with_metrics(metrics);
        cfg.graph = tracing;
        let rt = Runtime::simulated(cfg);
        let experiment =
            rt.register("experiment", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
        let t0 = Instant::now();
        for config in paper_grid_configs() {
            let d = mnist_sim_duration(&config, 1, 0.9);
            rt.submit_with(&experiment, vec![], SubmitOpts { sim_duration_us: Some(d) })
                .expect("submit");
        }
        rt.barrier();
        wall_total += t0.elapsed().as_micros() as u64;
        makespan = rt.now_us();
        trace_records = rt.trace().len();
        tasks_dispatched =
            rt.metrics().snapshot().counter("rcompss_tasks_dispatched_total").unwrap_or(0);
    }
    RunOutcome { wall_us: wall_total / repeats as u64, makespan, trace_records, tasks_dispatched }
}

/// ns/op of one counter add + one histogram record against `registry`.
fn hot_path_ns(registry: &runmetrics::MetricsRegistry, iters: u64) -> f64 {
    let counter = registry.counter("bench_ops_total");
    let histogram = registry.histogram("bench_lat_us");
    let t0 = Instant::now();
    for i in 0..iters {
        counter.incr();
        histogram.record(i & 0xFFFF);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    banner(
        "Instrumentation overhead",
        "Figure 5 workload: tracing × metrics on/off, plus the disabled hot path",
    );
    let repeats = if smoke { 3 } else { 50 };
    // Warm up thread spawn / allocator paths so the first measured
    // combination doesn't absorb one-time costs.
    let _ = run(true, true, 2);
    let combos = [(false, false), (true, false), (false, true), (true, true)];
    let outcomes: Vec<RunOutcome> = combos.iter().map(|&(t, m)| run(t, m, repeats)).collect();
    let baseline = outcomes[0].wall_us.max(1);

    println!("{repeats} repeats per combination\n");
    println!("tracing  metrics   wall µs/run   vs baseline");
    for (&(t, m), o) in combos.iter().zip(&outcomes) {
        let onoff = |b: bool| if b { "on " } else { "off" };
        let delta = (o.wall_us as f64 / baseline as f64 - 1.0) * 100.0;
        println!("  {}      {}    {:>10}      {delta:+9.1}%", onoff(t), onoff(m), o.wall_us);
    }

    // Neither flag may change what the scheduler does.
    for o in &outcomes[1..] {
        assert_eq!(o.makespan, outcomes[0].makespan, "flags must not change scheduling");
    }
    assert_eq!(outcomes[0].trace_records, 0, "tracing off keeps no records");
    assert!(outcomes[1].trace_records > 27, "tracing on captures intervals and events");
    assert_eq!(outcomes[0].tasks_dispatched, 0, "metrics off records nothing");
    assert_eq!(outcomes[3].tasks_dispatched, 27, "metrics on counts every dispatch");

    // Disabled hot path: one relaxed load + branch per call site.
    let iters: u64 = if smoke { 2_000_000 } else { 20_000_000 };
    let off = hot_path_ns(&runmetrics::MetricsRegistry::new(false), iters);
    let on = hot_path_ns(&runmetrics::MetricsRegistry::new(true), iters);
    println!("\nhot path (counter add + histogram record, {iters} iters):");
    println!("  metrics off: {off:>7.2} ns/op");
    println!("  metrics on : {on:>7.2} ns/op");
    // Generous bound — a regression that turns the disabled path into a
    // lock or allocation lands orders of magnitude above this.
    assert!(off < 150.0, "disabled hot path regressed: {off:.1} ns/op (budget 150)");

    println!("\nvirtual makespan (all combinations): {} µs", outcomes[0].makespan);
    println!("OK");
}
