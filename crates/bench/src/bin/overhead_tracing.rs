//! §5 — tracing overhead.
//!
//! Paper: "Both tracing and graph generation create a performance overhead.
//! These two features can easily be turned off by a simple flag when
//! launching the application." We quantify that: the Figure 5 workload runs
//! once with tracing+graph on and once off, measuring the real time the
//! runtime machinery takes (virtual makespans are identical by
//! construction — the flag must not change scheduling).

use std::time::Instant;

use cluster::{Cluster, NodeSpec};
use hpo_bench::{banner, mnist_sim_duration, paper_grid_configs};
use rcompss::{Constraint, Runtime, RuntimeConfig, SubmitOpts, Value};

fn run(tracing: bool, graph: bool, repeats: u32) -> (u64, u64, usize) {
    let mut wall_total = 0u64;
    let mut makespan = 0u64;
    let mut records = 0usize;
    for _ in 0..repeats {
        let mut cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(1, NodeSpec::marenostrum4()))
            .reserve(0, 24)
            .with_tracing(tracing);
        cfg.graph = graph;
        let rt = Runtime::simulated(cfg);
        let experiment =
            rt.register("experiment", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
        let t0 = Instant::now();
        for config in paper_grid_configs() {
            let d = mnist_sim_duration(&config, 1, 0.9);
            rt.submit_with(&experiment, vec![], SubmitOpts { sim_duration_us: Some(d) })
                .expect("submit");
        }
        rt.barrier();
        wall_total += t0.elapsed().as_micros() as u64;
        makespan = rt.now_us();
        records = rt.trace().len();
    }
    (wall_total / repeats as u64, makespan, records)
}

fn main() {
    banner("Tracing overhead", "Figure 5 workload with instrumentation on vs off");
    let repeats = 50;
    let (on_us, on_makespan, on_records) = run(true, true, repeats);
    let (off_us, off_makespan, off_records) = run(false, false, repeats);

    println!("instrumentation ON : {on_us:>7} µs wall/run, {on_records} trace records");
    println!("instrumentation OFF: {off_us:>7} µs wall/run, {off_records} trace records");
    println!(
        "overhead: {:+.1}% runtime-machinery time",
        (on_us as f64 / off_us.max(1) as f64 - 1.0) * 100.0
    );
    println!("virtual makespans identical: {} == {}", on_makespan, off_makespan);
    assert_eq!(on_makespan, off_makespan, "the flag must not change scheduling");
    assert_eq!(off_records, 0, "tracing off keeps no records");
    assert!(on_records > 27, "tracing on captures task intervals and events");
}
