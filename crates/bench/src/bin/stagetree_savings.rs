//! Stage-tree savings: training epochs naive vs prefix-deduped, for the
//! paper grid and a successive-halving bracket.
//!
//! The stage tree's contract is *exact* dedup: the staged sweep's
//! leaderboard is bit-identical to the naive sweep (the integration tests
//! assert that), so the interesting number here is purely how much
//! training it avoids. Those counts are deterministic — the planner and
//! the bracket arithmetic are pure functions of the config set — which
//! makes this bench an exact regression gate rather than a timing gate:
//! a planner change that shares less shows up as `staged` epochs creeping
//! up against the checked-in baseline, with zero measurement noise.
//!
//! Modes:
//! * default / `full` — the planning table below **plus** a real measured
//!   run of a small grid and bracket on `tinyml` training (threaded
//!   backend), confirming the executed epoch counts match the plan and
//!   reporting wall-clock; JSON snapshot to
//!   `results/stagetree_savings.json`.
//! * `smoke` / `--smoke` — planning table only, compared exactly against
//!   `crates/bench/baselines/stagetree_savings.json`; exits non-zero if
//!   a scenario's `staged` epochs exceed the baseline (the planner got
//!   worse at sharing) or its `naive` epochs changed (the scenario
//!   itself changed — rebaseline deliberately). ci.sh runs this gate.
//! * `rebaseline` — overwrite the baseline with the current counts.

use std::sync::Arc;
use std::time::Instant;

use hpo::algo::hyperband::Bracket;
use hpo::algo::random::RandomSearch;
use hpo::experiment::{tinyml_objective, ExperimentOptions};
use hpo::prelude::*;
use hpo::runner::materialize;
use hpo::space::{ConfigValue, ParamDomain};
use hpo::stagetree::{StageObjective, StagePlan};
use hpo_bench::{banner, out_dir, paper_grid_configs};
use rcompss::{Runtime, RuntimeConfig};
use tinyml::Dataset;

/// The bracket the planning rows use: the paper's 27 configs pushed
/// through an eta-3 halving up to the grid's 50-epoch midpoint.
fn paper_bracket() -> Bracket {
    Bracket::new(27, 2, 50, 3)
}

/// Epochs a staged successive-halving run trains: rung 0 planned as a
/// prefix tree under the rung budget, later rungs as per-survivor
/// continuations of the budget delta — the same arithmetic
/// `HpoRunner::run_successive_halving_staged` executes.
fn staged_bracket_epochs(space: &SearchSpace, bracket: &Bracket, seed: u64) -> u64 {
    let candidates = materialize(&mut RandomSearch::new(space, bracket.rungs[0].n_configs, seed));
    let rung0 = StagePlan::build(&candidates, Some(bracket.rungs[0].budget));
    let continuations: u64 = bracket
        .rungs
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, r)| r.n_configs as u64 * u64::from(bracket.resume_epochs(i)))
        .sum();
    rung0.staged_epochs + continuations
}

/// One planning row: scenario key plus the two deterministic counts.
struct Row {
    key: &'static str,
    naive: u64,
    staged: u64,
}

fn planning_rows() -> Vec<Row> {
    let grid = paper_grid_configs();
    let plan = StagePlan::build(&grid, None);
    let bracket = paper_bracket();
    let space = SearchSpace::paper_grid();
    vec![
        Row { key: "grid", naive: plan.naive_epochs, staged: plan.staged_epochs },
        Row {
            key: "hyperband",
            naive: bracket.total_epochs(),
            staged: staged_bracket_epochs(&space, &bracket, 7),
        },
    ]
}

fn print_rows(rows: &[Row]) {
    println!("{:<12} {:>12} {:>12} {:>10} {:>8}", "scenario", "naive", "staged", "saved", "%");
    for r in rows {
        let saved = r.naive.saturating_sub(r.staged);
        println!(
            "{:<12} {:>12} {:>12} {:>10} {:>7.1}%",
            r.key,
            r.naive,
            r.staged,
            saved,
            100.0 * saved as f64 / r.naive as f64
        );
    }
}

/// Measured pass of `full` mode: actually train a small grid and bracket
/// both ways and report executed epochs and wall-clock. The epoch counts
/// must agree with the planner — they come from the same `StageStats`
/// the runner records into `hpo_stage_epochs_saved_total`.
fn measured() {
    let data = Arc::new(Dataset::synthetic_mnist(400, 11));
    let stage = StageObjective::new(Arc::clone(&data), vec![16]);
    let runner = HpoRunner::new(ExperimentOptions::default());
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));

    let space = SearchSpace::new()
        .with("optimizer", ParamDomain::choice_strs(&["Adam", "SGD"]))
        .with("num_epochs", ParamDomain::choice_ints(&[4, 8]))
        .with("lr_decay_every", ParamDomain::choice_ints(&[2]))
        .with(
            "lr_decay_factor",
            ParamDomain::Choice(vec![ConfigValue::Float(0.5), ConfigValue::Float(0.25)]),
        );
    let configs = materialize(&mut GridSearch::new(&space));

    println!("\nmeasured (real tinyml training, threaded backend):");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "scenario", "naive ep", "staged ep", "naive s", "staged s"
    );

    let t0 = Instant::now();
    let naive_report = runner
        .run(&rt, &mut GridSearch::new(&space), tinyml_objective(Arc::clone(&data), vec![16]))
        .expect("naive grid");
    let naive_wall = t0.elapsed().as_secs_f64();
    let naive_ep: u64 = naive_report.trials.iter().map(|t| u64::from(t.outcome.epochs_run)).sum();
    let t1 = Instant::now();
    let (_, stats) =
        runner.run_staged(&rt, "grid", &configs, &stage, None, |_| {}).expect("staged grid");
    let staged_wall = t1.elapsed().as_secs_f64();
    assert_eq!(stats.naive_epochs, naive_ep, "runner stats must match the executed naive epochs");
    println!(
        "{:<12} {:>12} {:>12} {:>12.2} {:>12.2}",
        "grid", stats.naive_epochs, stats.staged_epochs, naive_wall, staged_wall
    );

    let sh_space = SearchSpace::new()
        .with("optimizer", ParamDomain::choice_strs(&["Adam", "SGD", "RMSprop"]))
        .with("batch_size", ParamDomain::choice_ints(&[16, 32]));
    let bracket = Bracket::new(6, 2, 8, 2);
    let t2 = Instant::now();
    let naive_sh = runner
        .run_successive_halving(
            &rt,
            &sh_space,
            tinyml_objective(Arc::clone(&data), vec![16]),
            &bracket,
            7,
        )
        .expect("naive bracket");
    let sh_naive_wall = t2.elapsed().as_secs_f64();
    let sh_naive_ep: u64 = naive_sh.trials.iter().map(|t| u64::from(t.outcome.epochs_run)).sum();
    let t3 = Instant::now();
    let (_, sh_stats) = runner
        .run_successive_halving_staged(&rt, &sh_space, &stage, &bracket, 7)
        .expect("staged bracket");
    let sh_staged_wall = t3.elapsed().as_secs_f64();
    assert_eq!(sh_stats.naive_epochs, sh_naive_ep);
    println!(
        "{:<12} {:>12} {:>12} {:>12.2} {:>12.2}",
        "hyperband", sh_stats.naive_epochs, sh_stats.staged_epochs, sh_naive_wall, sh_staged_wall
    );
}

fn write_json(path: &std::path::Path, rows: &[Row]) {
    let mut s = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!("  \"{}_naive\": {},\n", r.key, r.naive));
        s.push_str(&format!("  \"{}_staged\": {}{sep}\n", r.key, r.staged));
    }
    s.push_str("}\n");
    std::fs::write(path, s).expect("write json");
}

/// Parse the flat `{"key": number, ...}` JSON this binary writes.
fn read_json(path: &std::path::Path) -> Option<Vec<(String, u64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((key, val)) = rest.split_once("\":") else { continue };
        if let Ok(v) = val.trim().parse::<u64>() {
            out.push((key.to_string(), v));
        }
    }
    Some(out)
}

fn baseline_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join("stagetree_savings.json")
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let smoke = mode == "smoke" || mode == "--smoke";
    let rebaseline = mode == "rebaseline";
    banner("Stage-tree savings", "training epochs naive vs prefix-deduped (exact, deterministic)");

    let rows = planning_rows();
    print_rows(&rows);

    if rebaseline {
        let path = baseline_path();
        std::fs::create_dir_all(path.parent().unwrap()).expect("baseline dir");
        write_json(&path, &rows);
        println!("\nbaseline written to {}", path.display());
        return;
    }

    if smoke {
        let path = baseline_path();
        let Some(baseline) = read_json(&path) else {
            println!("no baseline at {} — gate skipped (run `rebaseline`)", path.display());
            return;
        };
        let base = |key: String| baseline.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        let mut failed = false;
        println!("\ngate: naive unchanged, staged not above baseline (exact counts)");
        for r in &rows {
            let bn = base(format!("{}_naive", r.key));
            let bs = base(format!("{}_staged", r.key));
            let verdict = match (bn, bs) {
                (Some(bn), _) if bn != r.naive => {
                    failed = true;
                    "SCENARIO CHANGED (rebaseline deliberately)"
                }
                (_, Some(bs)) if r.staged > bs => {
                    failed = true;
                    "REGRESSION (planner shares less)"
                }
                (_, Some(bs)) if r.staged < bs => "ok (improved — consider rebaselining)",
                (Some(_), Some(_)) => "ok",
                _ => "no baseline entry",
            };
            println!(
                "  {:<12} naive {:>8} vs {:>8?}, staged {:>8} vs {:>8?}  {verdict}",
                r.key, r.naive, bn, r.staged, bs
            );
        }
        assert!(!failed, "stage-tree savings regressed vs checked-in baseline");
        println!("OK");
        return;
    }

    measured();
    let out = out_dir().join("stagetree_savings.json");
    write_json(&out, &rows);
    println!("\nJSON snapshot: {}", out.display());
}
