//! Figure 8 — CIFAR-10 hyperparameter optimisation with grid search.
//!
//! Paper: "CIFAR 10 is a slightly bigger and more complex benchmark in
//! comparison with MNIST … Most of the experiments perform well on the
//! given hyperparameters. As mentioned earlier, random search would be a
//! better alternative in this case."
//!
//! We run both: the 27-point grid (the figure) and a 9-trial random search
//! demonstrating the paper's closing observation that random reaches a good
//! configuration with a fraction of the experiments.

use std::sync::Arc;

use hpo::prelude::*;
use hpo_bench::{banner, epoch_scale, out_dir};
use tinyml::Dataset;

fn main() {
    banner("Figure 8", "CIFAR-10 grid-search HPO — real training, accuracy curves");
    let scale = epoch_scale();
    println!("epoch scale: 1/{scale} (HPO_SCALE=full for the paper's grid)\n");

    let space = SearchSpace::new()
        .with("optimizer", ParamDomain::choice_strs(&["Adam", "SGD", "RMSprop"]))
        .with(
            "num_epochs",
            ParamDomain::choice_ints(&[20 / scale as i64, 50 / scale as i64, 100 / scale as i64]),
        )
        .with("batch_size", ParamDomain::choice_ints(&[32, 64, 128]));

    let cores = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(4);
    let rt = rcompss::Runtime::threaded(rcompss::RuntimeConfig::single_node(cores));
    let data = Arc::new(Dataset::synthetic_cifar10(1_200, 1));
    let objective = hpo::experiment::tinyml_objective(Arc::clone(&data), vec![48]);
    let runner = HpoRunner::new(ExperimentOptions::default());

    let report =
        runner.run(&rt, &mut GridSearch::new(&space), objective.clone()).expect("grid run");
    println!("{}", report.summary());
    print!("{}", report.ascii_curves(72, 16));
    println!("\nmean final accuracy, optimizer × epochs (averaged over batch sizes):");
    print!("{}", report.accuracy_table("optimizer", "num_epochs"));

    let csv_path = out_dir().join("fig8_cifar_hpo.csv");
    std::fs::write(&csv_path, report.to_csv()).expect("write csv");
    println!("\nCSV written to {}", csv_path.display());

    // The paper's aside: random search finds a good config in a fraction of
    // the trials. Compare trials-to-reach-90%-of-grid-best.
    let grid_best = report.best().expect("grid best").outcome.accuracy;
    let rt2 = rcompss::Runtime::threaded(rcompss::RuntimeConfig::single_node(cores));
    let runner2 = HpoRunner::new(ExperimentOptions::default());
    let random_report =
        runner2.run(&rt2, &mut RandomSearch::new(&space, 9, 7), objective).expect("random run");
    let target = grid_best * 0.95;
    println!(
        "\nrandom search: best {:.3} in 9 trials (grid best {:.3} in 27); \
         reached {:.0}% of grid best after {:?} trials",
        random_report.best().map(|t| t.outcome.accuracy).unwrap_or(0.0),
        grid_best,
        95.0,
        random_report.trials_to_reach(target)
    );

    assert_eq!(report.trials.len(), 27);
    assert_eq!(report.failures(), 0);
}
