//! Checkpointing overhead: training epochs/sec with model snapshots off,
//! saved every epoch, and saved every 5 epochs.
//!
//! The checkpoint subsystem's contract is that durability is cheap: a
//! snapshot is one `encode` (weights + optimiser slots + history) plus a
//! tmp-file write and rename in `ckpt::DirStore`. This binary measures
//! exactly that tax on real `tinyml` training — the same
//! `train_with_checkpoints` path the HPO objective uses — so a snapshot
//! encode regression or an accidental fsync-per-batch shows up as an
//! epochs/sec drop.
//!
//! Modes:
//! * default — full scenario grid (MLP + CNN at each cadence), table to
//!   stdout, JSON snapshot to `results/ckpt_overhead.json`.
//! * `smoke` / `--smoke` — the MLP subset, compared against the
//!   checked-in baseline (`crates/bench/baselines/ckpt_overhead.json`);
//!   exits non-zero on a >20 % epochs/sec regression in any scenario.
//!   Scenarios below threshold are re-measured up to four times with
//!   growing back-off before the gate fails, so transient slow windows
//!   on a shared CI box don't flake it — only regressions that persist
//!   across re-measurement do.
//!   ci.sh runs this as a gate next to `runtime_throughput smoke`.
//! * `rebaseline` — re-measure the smoke grid and overwrite the baseline.
//!
//! The baseline is machine-calibrated (median of three best-of-3 batches
//! on the box that recorded it — a typical fast measurement, not the
//! luckiest window); regenerate with `ckpt_overhead rebaseline` after
//! intentional snapshot-format or store changes and commit the JSON
//! alongside them.

use std::time::Instant;

use hpo_bench::{banner, out_dir};
use tinyml::data::SyntheticSpec;
use tinyml::train::{train_with_checkpoints, Checkpointing, EpochSignal, TrainConfig};
use tinyml::{Dataset, ModelArch};

/// Model family under training.
#[derive(Clone, Copy, PartialEq)]
enum Arch {
    /// Dense MLP (hidden `[32]`) on MNIST-like rows.
    Mlp,
    /// Small two-block CNN on spatial MNIST-like images.
    Cnn,
}

struct Scenario {
    arch: Arch,
    /// Snapshot cadence in epochs; `0` = checkpointing off.
    every: u32,
    epochs: u32,
    samples: usize,
}

impl Scenario {
    fn key(&self) -> String {
        let a = match self.arch {
            Arch::Mlp => "mlp",
            Arch::Cnn => "cnn",
        };
        let c = match self.every {
            0 => "off".to_string(),
            n => format!("every{n}"),
        };
        format!("{a}_{c}")
    }
}

fn dataset(sc: &Scenario) -> Dataset {
    match sc.arch {
        Arch::Mlp => Dataset::synthetic("bench-mnist", sc.samples, &SyntheticSpec::mnist_like(), 7),
        Arch::Cnn => Dataset::synthetic(
            "bench-mnist-spatial",
            sc.samples,
            &SyntheticSpec::mnist_like_spatial(),
            7,
        ),
    }
}

fn train_config(sc: &Scenario) -> TrainConfig {
    TrainConfig {
        epochs: sc.epochs,
        batch_size: 64,
        hidden_layers: vec![32],
        arch: match sc.arch {
            Arch::Mlp => ModelArch::Dense,
            Arch::Cnn => ModelArch::Cnn { conv1_channels: 4, conv2_channels: 8 },
        },
        threads: 1,
        ..TrainConfig::default()
    }
}

/// Run one scenario once; returns (epochs/sec, bytes of the last snapshot).
fn run(sc: &Scenario) -> (f64, usize) {
    let data = dataset(sc);
    let cfg = train_config(sc);
    let dir = std::env::temp_dir().join(format!("ckpt-overhead-{}", std::process::id()));
    let store = ckpt::DirStore::open(&dir, 2).expect("open snapshot store");
    let mut snap_bytes = 0usize;
    let mut saves = 0u32;
    let mut sink = |snap: &tinyml::TrainSnapshot| {
        let blob = snap.encode();
        snap_bytes = blob.len();
        saves += 1;
        store.save(0x8E7C, snap.next_epoch, &blob).expect("save snapshot");
    };
    let t0 = Instant::now();
    let history = train_with_checkpoints(
        &cfg,
        &data,
        Checkpointing {
            every: sc.every,
            resume: None,
            sink: if sc.every > 0 { Some(&mut sink) } else { None },
        },
        &mut |_, _, _| EpochSignal::Continue,
    );
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(history.epochs_run(), sc.epochs as usize, "bench must train the full budget");
    if let Some(expected) = sc.epochs.saturating_sub(1).checked_div(sc.every) {
        // cadence skips the final epoch (the outcome supersedes it)
        assert_eq!(saves, expected, "snapshot cadence");
    }
    let _ = std::fs::remove_dir_all(&dir);
    (f64::from(sc.epochs) / wall, snap_bytes)
}

/// Best epochs/sec over `reps` runs (noise is one-sided: take max).
fn best_of(sc: &Scenario, reps: u32) -> (f64, usize) {
    (0..reps).map(|_| run(sc)).fold((0.0f64, 0usize), |acc, r| (acc.0.max(r.0), acc.1.max(r.1)))
}

/// Median of three best-of-`reps` batches. Baselines are recorded with
/// this rather than a single batch: a shared box is bimodal (noisy
/// neighbours can halve effective CPU for seconds), and a baseline taken
/// in the luckiest window is a ceiling later gate runs can't reliably
/// clear. The median of three spaced batches is a *typical* fast
/// measurement instead.
fn typical_of(sc: &Scenario, reps: u32) -> (f64, usize) {
    let mut eps = Vec::new();
    let mut bytes = 0usize;
    for i in 0..3 {
        if i > 0 {
            std::thread::sleep(std::time::Duration::from_secs(2));
        }
        let (e, b) = best_of(sc, reps);
        eps.push(e);
        bytes = bytes.max(b);
    }
    eps.sort_by(f64::total_cmp);
    (eps[1], bytes)
}

fn sc(arch: Arch, every: u32) -> Scenario {
    let (epochs, samples) = match arch {
        Arch::Mlp => (12, 2_000),
        Arch::Cnn => (6, 400),
    };
    Scenario { arch, every, epochs, samples }
}

fn smoke_grid() -> Vec<Scenario> {
    vec![sc(Arch::Mlp, 0), sc(Arch::Mlp, 1), sc(Arch::Mlp, 5)]
}

fn full_grid() -> Vec<Scenario> {
    let mut g = smoke_grid();
    g.push(sc(Arch::Cnn, 0));
    g.push(sc(Arch::Cnn, 1));
    g
}

fn write_json(path: &std::path::Path, rows: &[(String, f64)]) {
    let mut s = String::from("{\n");
    for (i, (k, v)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!("  \"{k}\": {v:.1}{sep}\n"));
    }
    s.push_str("}\n");
    std::fs::write(path, s).expect("write json");
}

/// Parse the flat `{"key": number, ...}` JSON this binary writes.
fn read_json(path: &std::path::Path) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((key, val)) = rest.split_once("\":") else { continue };
        if let Ok(v) = val.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    Some(out)
}

fn baseline_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join("ckpt_overhead.json")
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let smoke = mode == "smoke" || mode == "--smoke";
    let rebaseline = mode == "rebaseline";
    banner(
        "Checkpoint overhead",
        "training epochs/sec with snapshots off / every epoch / every 5 epochs",
    );

    let grid = if smoke || rebaseline { smoke_grid() } else { full_grid() };
    let reps = if smoke || rebaseline { 3 } else { 2 };
    // Warm up allocator and kernel paths.
    let _ = run(&Scenario { arch: Arch::Mlp, every: 0, epochs: 2, samples: 500 });

    println!(
        "{:<14} {:>8} {:>8} {:>12} {:>12}",
        "scenario", "epochs", "samples", "epochs/sec", "snap bytes"
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    let mut off_eps: Option<f64> = None;
    for sc in &grid {
        // Baselines record a typical fast batch (median of three), not a
        // single lucky one — see `typical_of`.
        let (eps, bytes) = if rebaseline { typical_of(sc, reps) } else { best_of(sc, reps) };
        println!("{:<14} {:>8} {:>8} {:>12.1} {:>12}", sc.key(), sc.epochs, sc.samples, eps, bytes);
        if sc.every == 0 {
            off_eps = Some(eps);
        } else if let Some(off) = off_eps {
            println!("{:<14} {:>42.1}% overhead vs off", "", (off / eps - 1.0) * 100.0);
        }
        rows.push((sc.key(), eps));
    }

    if rebaseline {
        let path = baseline_path();
        std::fs::create_dir_all(path.parent().unwrap()).expect("baseline dir");
        write_json(&path, &rows);
        println!("\nbaseline written to {}", path.display());
        return;
    }

    let out = out_dir().join("ckpt_overhead.json");
    write_json(&out, &rows);
    println!("\nJSON snapshot: {}", out.display());

    if smoke {
        let path = baseline_path();
        let Some(baseline) = read_json(&path) else {
            println!("no baseline at {} — gate skipped (run `rebaseline`)", path.display());
            return;
        };
        let base_for =
            |key: &str| baseline.iter().find(|(k, b)| k == key && *b > 0.0).map(|(_, b)| *b);
        // A shared CI box can halve its effective CPU for seconds at a time.
        // A *real* regression survives re-measurement; a slow window does
        // not — so scenarios below threshold are re-measured up to
        // `RETRIES` times with growing back-off, keeping the best observed
        // rate, before the gate fails.
        const RETRIES: u32 = 4;
        for round in 0..RETRIES {
            let failing: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, (key, eps))| base_for(key).is_some_and(|b| eps / b < 0.8))
                .map(|(i, _)| i)
                .collect();
            if failing.is_empty() {
                break;
            }
            println!(
                "\nretry {}/{RETRIES}: re-measuring {} scenario(s) below threshold",
                round + 1,
                failing.len()
            );
            std::thread::sleep(std::time::Duration::from_secs(2u64 << round));
            for i in failing {
                let (again, _) = best_of(&grid[i], reps);
                println!("  {:<14} {:>10.1} (was {:.1})", rows[i].0, again, rows[i].1);
                rows[i].1 = rows[i].1.max(again);
            }
        }
        let mut failed = false;
        println!("\ngate: >= 80% of baseline epochs/sec (best across retries)");
        for (key, eps) in &rows {
            match base_for(key) {
                Some(base) => {
                    let ratio = eps / base;
                    let verdict = if ratio >= 0.8 { "ok" } else { "REGRESSION" };
                    println!("  {key:<14} {eps:>10.1} vs {base:>10.1}  ({ratio:>5.2}x) {verdict}");
                    if ratio < 0.8 {
                        failed = true;
                    }
                }
                None => println!("  {key:<14} {eps:>10.1} (no baseline entry)"),
            }
        }
        assert!(!failed, "epochs/sec regressed >20% vs checked-in baseline");
        println!("OK");
    }
}
