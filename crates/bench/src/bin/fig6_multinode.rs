//! Figure 6 — 27 whole-node CIFAR-10 tasks on (a) 28 nodes and (b) 14
//! nodes.
//!
//! Paper: "A total of 27 experiments are created to be distributed across
//! 27 nodes. However, during job submission, we request an extra node for
//! the worker … We assign 48 cores to each task … it is possible to run the
//! same application with half the number of nodes for almost the same
//! amount of time as the nodes remain idle for the tasks that complete.
//! Clearly, this is a better utilisation of resources."

use cluster::{Cluster, NodeSpec};
use hpo_bench::{banner, cifar_sim_duration, fmt_min, out_dir, paper_grid_configs};
use paratrace::gantt::{render, GanttOptions};
use paratrace::TraceStats;
use rcompss::{Constraint, Runtime, RuntimeConfig, SubmitOpts, Value};

fn run(nodes: usize) -> (u64, f64, usize, Vec<paratrace::Record>) {
    // one extra node (node 0) is fully reserved for the COMPSs worker
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(nodes, NodeSpec::marenostrum4()))
        .reserve(0, 48);
    let rt = Runtime::simulated(cfg);
    let experiment =
        rt.register("graph.experiment", Constraint::cpus(48), 1, |_, _| Ok(vec![Value::new(())]));
    // Longest-first submission (descending epoch count): with fewer nodes
    // than tasks, short stragglers then pack under the long tasks — the
    // behaviour behind the paper's "almost the same amount of time".
    let mut durations: Vec<u64> = paper_grid_configs()
        .iter()
        .map(|config| cifar_sim_duration(config, 48, None, 0.9))
        .collect();
    durations.sort_unstable_by(|a, b| b.cmp(a));
    for duration in durations {
        rt.submit_with(&experiment, vec![], SubmitOpts { sim_duration_us: Some(duration) })
            .expect("submit");
    }
    rt.barrier();
    let records = rt.trace();
    let stats = TraceStats::compute(&records);
    let task_cores = (nodes - 1) * 48;
    (
        stats.makespan,
        stats.utilisation(task_cores),
        TraceStats::tasks_started_within(&records, 0),
        records,
    )
}

fn main() {
    banner("Figure 6", "27 whole-node tasks: 28 nodes (a) vs 14 nodes (b)");

    let (m28, u28, imm28, rec28) = run(28);
    let (m14, u14, imm14, rec14) = run(14);

    println!(
        "(a) 28 nodes: makespan {}, {} tasks started immediately, utilisation {:.1}%",
        fmt_min(m28),
        imm28,
        u28 * 100.0
    );
    println!(
        "(b) 14 nodes: makespan {}, {} tasks started immediately, utilisation {:.1}%",
        fmt_min(m14),
        imm14,
        u14 * 100.0
    );
    println!(
        "slowdown from halving the nodes: {:.2}× (paper: \"almost the same\")",
        m14 as f64 / m28 as f64
    );

    assert_eq!(imm28, 27, "with 27 free nodes every task starts at once");
    assert_eq!(imm14, 13, "13 free nodes host the first wave");
    assert!(m14 < 2 * m28, "halving nodes must cost < 2× (idle-tail reuse)");
    assert!(u14 > u28, "14-node run utilises its cores better");

    println!("\n(a) per-node busy-core counts, 28 nodes:");
    print!("{}", render(&rec28, &GanttOptions { width: 64, per_node: true, ..Default::default() }));
    println!("\n(b) per-node busy-core counts, 14 nodes:");
    print!("{}", render(&rec14, &GanttOptions { width: 64, per_node: true, ..Default::default() }));

    for (records, name) in [(&rec28, "fig6a_28nodes"), (&rec14, "fig6b_14nodes")] {
        let prv = paratrace::prv::export(name, records);
        let stem = out_dir().join(name);
        paratrace::prv::write_files(&stem, &prv).expect("write prv");
    }
    println!("\nParaver traces written to results/fig6a_28nodes.prv and results/fig6b_14nodes.prv");
}
