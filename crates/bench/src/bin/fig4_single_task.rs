//! Figure 4 — a single task pinned to a single core of a 48-core node.
//!
//! Paper: "we launch just one task and assign one core in a node with 48
//! cores … The task takes around 29 mins to run to completion and its
//! constrained to a single core. Even though tensorflow's default behavior
//! is to span across all available resources, PyCOMPSs is able to enforce
//! CPU affinity."

use cluster::{Cluster, NodeSpec};
use hpo::prelude::{Config, ConfigValue};
use hpo_bench::{banner, fmt_min, mnist_sim_duration, out_dir};
use paratrace::gantt::{render, GanttOptions};
use paratrace::TraceStats;
use rcompss::{Constraint, Runtime, RuntimeConfig, SubmitOpts, Value};

fn main() {
    banner("Figure 4", "one MNIST training constrained to 1 core of a 48-core node");

    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(1, NodeSpec::marenostrum4()));
    let rt = Runtime::simulated(cfg);

    // The paper's single experiment: default config (50 epochs, batch 64).
    let config = Config::new()
        .with("optimizer", ConfigValue::Str("Adam".into()))
        .with("num_epochs", ConfigValue::Int(50))
        .with("batch_size", ConfigValue::Int(64));
    let duration = mnist_sim_duration(&config, 1, 0.9);

    let experiment = rt.register("graph.experiment", Constraint::cpus(1), 1, |ctx, _| {
        assert_eq!(ctx.cores.len(), 1, "affinity: exactly one core granted");
        Ok(vec![Value::new(0.97f64)])
    });
    rt.submit_with(&experiment, vec![], SubmitOpts { sim_duration_us: Some(duration) })
        .expect("submit");
    rt.barrier();

    let records = rt.trace();
    let stats = TraceStats::compute(&records);
    println!("task duration: {} (paper: ~29 min)", fmt_min(stats.makespan));
    println!("cores that ever ran a task: {} of 48 (affinity enforced)", stats.cores_used());
    assert_eq!(stats.cores_used(), 1, "CPU affinity must confine the task to one core");
    assert_eq!(stats.peak_parallelism, 1);
    let mins = stats.makespan as f64 / 60e6;
    assert!((24.0..34.0).contains(&mins), "≈29 min expected, got {mins:.1}");

    // Show the first 8 rows of the node — one busy bar, the rest idle.
    println!("\ntimeline (cores 0–7 of node 0; '#'=worker, letters=task, '.'=idle):");
    let gantt = render(&records, &GanttOptions { width: 72, ..Default::default() });
    for line in gantt.lines().take(9) {
        println!("{line}");
    }

    let prv = paratrace::prv::export("fig4_single_task", &records);
    let stem = out_dir().join("fig4_single_task");
    paratrace::prv::write_files(&stem, &prv).expect("write prv");
    println!("\nParaver trace written to {}.prv/.row/.pcf", stem.display());
}
