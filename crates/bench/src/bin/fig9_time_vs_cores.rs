//! Figure 9 — total HPO time versus cores assigned to each task.
//!
//! Three curves, as in the paper:
//!
//! * **1 CPU node** (MNIST, MareNostrum 4, worker holds 24 of 48 cores):
//!   time falls as cores/task grow, then *rises* once requesting more cores
//!   serialises the task waves — "in the case of a single node, the time
//!   starts to increase after 4 cores".
//! * **2 CPU nodes** (MNIST): the bigger pool keeps the curve falling —
//!   "One should therefore increase the number of nodes as they increase
//!   the number of cores per task".
//! * **1 GPU node** (CIFAR-10, CTE-POWER9, 1 GPU/task ⇒ only 4 parallel
//!   tasks): with one CPU core the GPU starves on preprocessing and the
//!   total is the worst of the chart; adding cores collapses it to under an
//!   hour.

use cluster::{Cluster, ClusterSim, GpuModel, Job, NodeSpec};
use hpo_bench::{
    banner, cifar_sim_duration, fmt_min, mnist_sim_duration, out_dir, paper_grid_configs,
};

/// Makespan of the 27-task grid on `cluster` with `cores` per task.
fn cpu_sweep_point(nodes: usize, cores: u32, alpha: f64) -> u64 {
    let sim =
        ClusterSim::new(Cluster::homogeneous(nodes, NodeSpec::marenostrum4())).reserve_cores(0, 24); // the COMPSs worker holds half of node 0
    let jobs: Vec<Job> = paper_grid_configs()
        .iter()
        .enumerate()
        .map(|(i, config)| Job {
            id: i as u64,
            name: format!("exp{i}"),
            cores,
            gpus: 0,
            duration_us: mnist_sim_duration(config, cores, alpha),
        })
        .collect();
    sim.run(&jobs).makespan
}

/// Makespan of the 27-task CIFAR grid on one GPU node, 1 GPU + `cores`
/// CPU cores per task.
fn gpu_sweep_point_on(node: NodeSpec, model: GpuModel, cores: u32, alpha: f64) -> u64 {
    let sim = ClusterSim::new(Cluster::homogeneous(1, node));
    let jobs: Vec<Job> = paper_grid_configs()
        .iter()
        .enumerate()
        .map(|(i, config)| Job {
            id: i as u64,
            name: format!("exp{i}"),
            cores,
            gpus: 1,
            duration_us: cifar_sim_duration(config, cores, Some(model), alpha),
        })
        .collect();
    sim.run(&jobs).makespan
}

/// POWER9 + V100 sweep point (the paper's CTE-POWER9 runs).
fn gpu_sweep_point(cores: u32, alpha: f64) -> u64 {
    gpu_sweep_point_on(NodeSpec::cte_power9(), GpuModel::V100, cores, alpha)
}

fn main() {
    banner("Figure 9", "HPO makespan vs cores per task (27-task grid)");
    // Slightly stronger scaling decay than the calibration default: Fig 9's
    // per-task speedup flattens hard beyond a few cores on shared-memory TF.
    let alpha = 0.85;

    let cpu_cores = [1u32, 2, 4, 8, 12, 24];
    let gpu_cores = [1u32, 2, 4, 8, 16, 32, 40];

    println!(
        "{:>12} {:>16} {:>16} {:>20}",
        "cores/task", "1 node (MNIST)", "2 nodes (MNIST)", "GPU node (CIFAR10)"
    );
    let mut one_node = Vec::new();
    let mut two_nodes = Vec::new();
    let mut gpu_node = Vec::new();
    let mut csv = String::from("cores,one_node_us,two_nodes_us,gpu_node_us\n");
    for (i, &c) in cpu_cores.iter().enumerate() {
        let t1 = cpu_sweep_point(1, c, alpha);
        let t2 = cpu_sweep_point(2, c, alpha);
        let tg = gpu_sweep_point(gpu_cores[i.min(gpu_cores.len() - 1)], alpha);
        one_node.push(t1);
        two_nodes.push(t2);
        gpu_node.push(tg);
        println!("{c:>12} {:>16} {:>16} {:>20}", fmt_min(t1), fmt_min(t2), fmt_min(tg));
        csv.push_str(&format!("{c},{t1},{t2},{tg}\n"));
    }
    // extend the GPU sweep to its full range
    println!("\nGPU node full sweep (1 GPU + N cores per task, 4 tasks in parallel):");
    for &c in &gpu_cores {
        let tg = gpu_sweep_point(c, alpha);
        println!("{c:>12} cores: {}", fmt_min(tg));
    }

    // The paper also ran MinoTauro (2× K80, 16 Haswell cores): older GPUs,
    // only 2 schedulable cards → fewer parallel tasks and slower compute.
    println!("\nMinoTauro comparison (2× K80, ≤2 parallel tasks):");
    for &c in &[1u32, 4, 8] {
        let mt = gpu_sweep_point_on(NodeSpec::minotauro(), GpuModel::K80, c, alpha);
        let p9 = gpu_sweep_point(c, alpha);
        println!("{c:>12} cores: MinoTauro {} vs POWER9 {}", fmt_min(mt), fmt_min(p9));
        assert!(mt > p9, "the newer testbed wins at equal cores/task");
    }

    let csv_path = out_dir().join("fig9_time_vs_cores.csv");
    std::fs::write(&csv_path, csv).expect("write csv");
    println!("\nCSV written to {}", csv_path.display());

    // Shape assertions — the paper's three claims.
    let min_idx = (0..one_node.len()).min_by_key(|&i| one_node[i]).unwrap();
    println!(
        "\n1-node minimum at {} cores/task; rises after (paper: increases after 4 cores)",
        cpu_cores[min_idx]
    );
    assert!(
        (1..=3).contains(&min_idx),
        "single-node optimum should sit at 2–8 cores, found at {} cores",
        cpu_cores[min_idx]
    );
    assert!(
        one_node.last().unwrap() > &one_node[min_idx],
        "single-node curve must rise after its minimum"
    );
    assert!(
        two_nodes[min_idx..].iter().min().unwrap() <= &two_nodes[min_idx],
        "two-node curve keeps improving past the single-node optimum"
    );
    assert!(
        two_nodes.last().unwrap() < one_node.last().unwrap(),
        "bigger pool wins at high cores/task"
    );
    // GPU claims: 1-core GPU run is preprocessing-bound and worse than the
    // best CPU point; with enough cores the whole HPO drops under an hour.
    assert!(gpu_node[0] > *one_node.iter().min().unwrap());
    let gpu_best = gpu_sweep_point(*gpu_cores.last().unwrap(), alpha);
    println!(
        "GPU node: {} at 1 core vs {} at 40 cores (paper: \"less than an hour\")",
        fmt_min(gpu_node[0]),
        fmt_min(gpu_best)
    );
    assert!(gpu_best < 60 * 60_000_000, "GPU HPO should finish in under an hour");
}
