//! Runtime task-churn throughput: tasks/sec through the threaded backend.
//!
//! The paper's runtime keeps hundreds of HPO trials saturating a 48-core
//! node; the analogous failure mode here is the *runtime's own* per-task
//! overhead — dispatch, completion, worker wakeup — dominating when task
//! bodies are tiny (the "Runtime vs Scheduler" decomposition of Dask's
//! overheads). This binary measures that churn directly: no-op and ~100 µs
//! spin tasks submitted as chain / fan-out / diamond graphs at several
//! worker-pool sizes, reporting tasks/sec end to end (first submission to
//! barrier return) with tracing, graph recording, and metrics all off.
//!
//! Modes:
//! * default — full scenario grid, table to stdout, JSON snapshot to
//!   `results/runtime_throughput.json`.
//! * `smoke` / `--smoke` — a fast subset, compared against the checked-in
//!   baseline (`crates/bench/baselines/runtime_throughput.json`); exits
//!   non-zero on a >20 % tasks/sec regression in any smoke scenario.
//!   Scenarios below threshold are re-measured up to four times with
//!   growing back-off before the gate fails, so transient slow windows on
//!   a shared CI box (noisy neighbours can halve effective CPU for
//!   seconds) don't flake it — only regressions that persist across
//!   re-measurement do.
//!   ci.sh runs this as a gate next to `overhead_tracing smoke`.
//! * `net` / `net_throughput` — the same churn shapes through the
//!   *distributed* backend: two in-process `WorkerServer`s on loopback
//!   TCP, so every task pays frame encode → socket → decode → execute →
//!   result frame. Gated against the same baseline file (keys prefixed
//!   `net_`); this is the wire-protocol overhead regression gate.
//!
//! The baseline is machine-calibrated (median of three best-of-3 batches
//! on the box that recorded it — a typical fast measurement, not the
//! luckiest window); regenerate with `runtime_throughput rebaseline`
//! after intentional scheduler changes and commit the JSON alongside them.

use std::sync::Arc;
use std::time::Instant;

use hpo_bench::{banner, out_dir};
use rcompss::{
    ArgSpec, Constraint, DistributedConfig, Runtime, RuntimeConfig, TaskDef, TaskRegistry, Value,
    WorkerConfig, WorkerServer,
};

/// Task body flavour.
#[derive(Clone, Copy, PartialEq)]
enum Work {
    /// Return immediately — pure runtime overhead.
    Noop,
    /// Busy-spin ~100 µs of real work.
    Spin100,
}

/// Dependency shape of the submitted graph.
#[derive(Clone, Copy, PartialEq)]
enum Shape {
    /// One root, then `n-1` children all reading the root's output: every
    /// child becomes ready in a single completion — the dispatch storm that
    /// punishes an O(ready) scheduler scan hardest.
    FanOut,
    /// `n` strictly dependent tasks: measures per-task latency through
    /// submit → dispatch → complete → next-dispatch with no parallelism.
    Chain,
    /// Repeated fan-out/fan-in cells of width 8: alternating storms and
    /// joins, the shape of iterative HPO rounds.
    Diamond,
}

struct Scenario {
    work: Work,
    shape: Shape,
    workers: u32,
    tasks: u64,
    /// Run through the distributed backend (loopback workers) instead of
    /// the threaded one; `workers` cores are split across two daemons.
    net: bool,
    /// Key suffix distinguishing scenarios that differ only in task count
    /// (the `hundredk` scale curve and its smoke entry).
    tag: &'static str,
}

impl Scenario {
    fn key(&self) -> String {
        let w = match self.work {
            Work::Noop => "noop",
            Work::Spin100 => "spin100",
        };
        let s = match self.shape {
            Shape::FanOut => "fanout",
            Shape::Chain => "chain",
            Shape::Diamond => "diamond",
        };
        let prefix = if self.net { "net_" } else { "" };
        format!("{prefix}{w}_{s}_w{}{}", self.workers, self.tag)
    }
}

fn body(work: Work) -> impl Fn() + Send + Sync + Clone {
    move || {
        if work == Work::Spin100 {
            let t0 = Instant::now();
            while t0.elapsed().as_micros() < 100 {
                std::hint::spin_loop();
            }
        }
    }
}

/// Run one scenario once; returns tasks/sec.
fn run(sc: &Scenario) -> f64 {
    if sc.net {
        return run_net(sc);
    }
    let cfg = RuntimeConfig::single_node(sc.workers).with_tracing(false).with_metrics(false);
    let mut cfg = cfg;
    cfg.graph = false;
    let rt = Runtime::threaded(cfg);
    let work = body(sc.work);
    let task = rt.register("churn", Constraint::cpus(1), 1, move |_, _| {
        work();
        Ok(vec![Value::new(1u64)])
    });
    measure(&rt, &task, sc)
}

/// Same churn, but through the distributed backend: two in-process
/// loopback workers splitting `sc.workers` cores between them, so every
/// dispatch and completion crosses a real TCP socket.
fn run_net(sc: &Scenario) -> f64 {
    let work = body(sc.work);
    let churn = TaskDef {
        name: "churn".into(),
        constraint: Constraint::cpus(1),
        returns: 1,
        priority: false,
        body: Arc::new(move |_, _| {
            work();
            Ok(vec![Value::new(1u64)])
        }),
        alternatives: Vec::new(),
    };
    let registry = TaskRegistry::new().with(churn);
    let per_worker = (sc.workers / 2).max(1);
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let cfg = WorkerConfig {
                name: format!("bench-w{i}"),
                cores: per_worker,
                ..WorkerConfig::default()
            };
            WorkerServer::bind("127.0.0.1:0", cfg, registry.clone())
                .expect("bind loopback worker")
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr()).collect();
    let mut cfg = RuntimeConfig::single_node(1).with_tracing(false).with_metrics(false);
    cfg.graph = false;
    let rt = Runtime::distributed(cfg, &addrs, DistributedConfig::default())
        .expect("connect to loopback workers");
    let task = registry.get("churn").expect("registered").clone();
    let tps = measure(&rt, &task, sc);
    drop(rt); // shut the connections down before the workers drop
    tps
}

/// Submit the scenario's graph shape, wait for the barrier, and return
/// tasks/sec (first submission to barrier return).
fn measure(rt: &Runtime, task: &TaskDef, sc: &Scenario) -> f64 {
    let n = sc.tasks;
    let t0 = Instant::now();
    match sc.shape {
        Shape::FanOut => {
            let root = rt.submit(task, vec![]).expect("submit root").returns[0];
            for _ in 1..n {
                rt.submit(task, vec![ArgSpec::In(root)]).expect("submit child");
            }
        }
        Shape::Chain => {
            let mut prev = rt.submit(task, vec![]).expect("submit head").returns[0];
            for _ in 1..n {
                prev = rt.submit(task, vec![ArgSpec::In(prev)]).expect("submit link").returns[0];
            }
        }
        Shape::Diamond => {
            const WIDTH: u64 = 8;
            let mut join = rt.submit(task, vec![]).expect("submit root").returns[0];
            let mut left = n.saturating_sub(1);
            while left > 0 {
                let fan = WIDTH.min(left);
                let mids: Vec<_> = (0..fan)
                    .map(|_| rt.submit(task, vec![ArgSpec::In(join)]).expect("mid").returns[0])
                    .collect();
                left -= fan;
                if left == 0 {
                    break;
                }
                let args: Vec<ArgSpec> = mids.iter().map(|&h| ArgSpec::In(h)).collect();
                join = rt.submit(task, args).expect("join").returns[0];
                left -= 1;
            }
        }
    }
    rt.barrier();
    let wall = t0.elapsed().as_secs_f64();
    let stats = rt.stats();
    assert_eq!(stats.completed, stats.submitted, "all tasks must complete");
    assert_eq!(stats.failed, 0);
    stats.completed as f64 / wall
}

/// Best tasks/sec over `reps` runs (scheduling noise is one-sided: take max).
fn best_of(sc: &Scenario, reps: u32) -> f64 {
    (0..reps).map(|_| run(sc)).fold(0.0f64, f64::max)
}

/// Median of three best-of-`reps` batches. Baselines are recorded with
/// this rather than a single batch: a shared box is bimodal (noisy
/// neighbours can halve effective CPU for seconds), and a baseline taken
/// in the luckiest window is a ceiling later gate runs can't reliably
/// clear. The median of three spaced batches is a *typical* fast
/// measurement instead.
fn typical_of(sc: &Scenario, reps: u32) -> f64 {
    let mut batches: Vec<f64> = (0..3)
        .map(|i| {
            if i > 0 {
                std::thread::sleep(std::time::Duration::from_secs(2));
            }
            best_of(sc, reps)
        })
        .collect();
    batches.sort_by(f64::total_cmp);
    batches[1]
}

fn sc(work: Work, shape: Shape, workers: u32, tasks: u64) -> Scenario {
    Scenario { work, shape, workers, tasks, net: false, tag: "" }
}

fn full_grid() -> Vec<Scenario> {
    let mut grid = Vec::new();
    for &workers in &[1u32, 4, 16, 64] {
        grid.push(sc(Work::Noop, Shape::FanOut, workers, 8_000));
        grid.push(sc(Work::Noop, Shape::Chain, workers, 3_000));
        grid.push(sc(Work::Noop, Shape::Diamond, workers, 4_000));
        grid.push(sc(Work::Spin100, Shape::FanOut, workers, 2_000));
    }
    grid
}

fn smoke_grid() -> Vec<Scenario> {
    vec![
        sc(Work::Noop, Shape::FanOut, 16, 4_000),
        sc(Work::Noop, Shape::Chain, 4, 1_500),
        sc(Work::Noop, Shape::Diamond, 16, 2_000),
        sc(Work::Spin100, Shape::FanOut, 16, 800),
        // The 100k-task storm: graph build, ready-queue churn, and
        // completion fan-in at two orders of magnitude above the other
        // smoke entries — catches superlinear overhead the small
        // scenarios hide. The full scale curve lives in `hundredk` mode.
        Scenario { tag: "_100k", ..sc(Work::Noop, Shape::FanOut, 16, 100_000) },
    ]
}

/// Scale curve for per-task runtime overhead: the same fan-out/chain
/// shapes at 1k → 10k → 100k tasks, threaded and over loopback TCP.
/// Run via `runtime_throughput hundredk`; reported as µs/task so growth
/// with scale (superlinear scheduling, allocator pressure, frame-buffer
/// churn) is directly visible. Results feed EXPERIMENTS.md.
fn hundredk_grid() -> Vec<Scenario> {
    let mut g = Vec::new();
    for &(tasks, tag) in &[(1_000u64, "_n1k"), (10_000, "_n10k"), (100_000, "_n100k")] {
        g.push(Scenario { tag, ..sc(Work::Noop, Shape::FanOut, 16, tasks) });
        g.push(Scenario { tag, ..sc(Work::Noop, Shape::Chain, 16, tasks) });
        g.push(Scenario { net: true, tag, ..sc(Work::Noop, Shape::FanOut, 4, tasks) });
        g.push(Scenario { net: true, tag, ..sc(Work::Noop, Shape::Chain, 2, tasks) });
    }
    g
}

/// Distributed-backend churn over loopback: the wire-protocol gate.
/// Kept small — every task is a full RPC round trip, so these are orders
/// of magnitude slower per task than the in-process scenarios.
fn net_grid() -> Vec<Scenario> {
    vec![
        Scenario { net: true, ..sc(Work::Noop, Shape::FanOut, 4, 600) },
        Scenario { net: true, ..sc(Work::Noop, Shape::Chain, 2, 200) },
        Scenario { net: true, ..sc(Work::Spin100, Shape::FanOut, 4, 300) },
    ]
}

fn write_json(path: &std::path::Path, rows: &[(String, f64)]) {
    let mut s = String::from("{\n");
    for (i, (k, v)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!("  \"{k}\": {v:.1}{sep}\n"));
    }
    s.push_str("}\n");
    std::fs::write(path, s).expect("write json");
}

/// Parse the flat `{"key": number, ...}` JSON this binary writes.
fn read_json(path: &std::path::Path) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((key, val)) = rest.split_once("\":") else { continue };
        if let Ok(v) = val.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    Some(out)
}

fn baseline_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join("runtime_throughput.json")
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let smoke = mode == "smoke" || mode == "--smoke";
    let net = mode == "net" || mode == "net_throughput";
    let rebaseline = mode == "rebaseline";
    let hundredk = mode == "hundredk";
    banner(
        "Runtime throughput",
        "tasks/sec through the threaded and distributed backends (chain / fan-out / diamond)",
    );

    let grid = if net {
        net_grid()
    } else if smoke {
        smoke_grid()
    } else if hundredk {
        hundredk_grid()
    } else if rebaseline {
        let mut g = smoke_grid();
        g.extend(net_grid());
        g
    } else {
        let mut g = full_grid();
        g.extend(net_grid());
        g
    };
    // The scale curve runs each point once: at 100k tasks the law of large
    // numbers does the averaging, and best-of-N would triple a long run.
    let reps = if hundredk {
        1
    } else if smoke || net || rebaseline {
        3
    } else {
        2
    };
    // Warm up thread-spawn and allocator paths.
    let _ = run(&sc(Work::Noop, Shape::Chain, 4, 200));

    println!(
        "{:<26} {:>8} {:>8} {:>14} {:>10}",
        "scenario", "workers", "tasks", "tasks/sec", "us/task"
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    for sc in &grid {
        // Baselines record a typical fast batch (median of three), not a
        // single lucky one — see `typical_of`.
        let tps = if rebaseline { typical_of(sc, reps) } else { best_of(sc, reps) };
        println!(
            "{:<26} {:>8} {:>8} {:>14.0} {:>10.2}",
            sc.key(),
            sc.workers,
            sc.tasks,
            tps,
            1e6 / tps
        );
        rows.push((sc.key(), tps));
    }

    if hundredk {
        let out = out_dir().join("hundredk.json");
        write_json(&out, &rows);
        println!("\nJSON snapshot: {}", out.display());
        return;
    }

    if rebaseline {
        let path = baseline_path();
        std::fs::create_dir_all(path.parent().unwrap()).expect("baseline dir");
        write_json(&path, &rows);
        println!("\nbaseline written to {}", path.display());
        return;
    }

    let out = out_dir().join("runtime_throughput.json");
    write_json(&out, &rows);
    println!("\nJSON snapshot: {}", out.display());

    if smoke || net {
        let path = baseline_path();
        let Some(baseline) = read_json(&path) else {
            println!("no baseline at {} — gate skipped (run `rebaseline`)", path.display());
            return;
        };
        let base_for =
            |key: &str| baseline.iter().find(|(k, b)| k == key && *b > 0.0).map(|(_, b)| *b);
        // A shared CI box can halve its effective CPU for seconds at a time
        // (noisy neighbours, frequency throttling). A *real* regression
        // survives re-measurement; a slow window does not — so scenarios
        // below threshold are re-measured up to `RETRIES` times with
        // growing back-off (slow windows can outlast a few seconds),
        // keeping the best observed rate, before the gate fails.
        const RETRIES: u32 = 4;
        for round in 0..RETRIES {
            let failing: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, (key, tps))| base_for(key).is_some_and(|b| tps / b < 0.8))
                .map(|(i, _)| i)
                .collect();
            if failing.is_empty() {
                break;
            }
            println!(
                "\nretry {}/{RETRIES}: re-measuring {} scenario(s) below threshold",
                round + 1,
                failing.len()
            );
            std::thread::sleep(std::time::Duration::from_secs(2u64 << round));
            for i in failing {
                let again = best_of(&grid[i], reps);
                println!("  {:<22} {:>14.0} (was {:.0})", rows[i].0, again, rows[i].1);
                rows[i].1 = rows[i].1.max(again);
            }
        }
        let mut failed = false;
        println!("\ngate: >= 80% of baseline tasks/sec (best across retries)");
        for (key, tps) in &rows {
            match base_for(key) {
                Some(base) => {
                    let ratio = tps / base;
                    let verdict = if ratio >= 0.8 { "ok" } else { "REGRESSION" };
                    println!("  {key:<22} {tps:>12.0} vs {base:>12.0}  ({ratio:>5.2}x) {verdict}");
                    if ratio < 0.8 {
                        failed = true;
                    }
                }
                None => println!("  {key:<22} {tps:>12.0} (no baseline entry)"),
            }
        }
        assert!(!failed, "tasks/sec regressed >20% vs checked-in baseline");
        println!("OK");
    }
}
