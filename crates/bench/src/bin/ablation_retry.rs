//! Ablation: the fault-tolerance policy.
//!
//! The paper's policy is "retry on the same node, then move". This ablation
//! compares, under seeded random task failures:
//!
//! * **no retries** — the "sequential application has a single point of
//!   failure" world the paper contrasts against;
//! * **paper policy** (3 attempts, same node first);
//! * **always-move** (3 attempts, never the same node first);
//! * **5 attempts** — diminishing returns.

use cluster::{Cluster, ClusterSim, FailureInjector, Job, NodeSpec};
use hpo_bench::banner;

fn run(max_attempts: u32, rate: f64, seed: u64) -> (usize, usize, u64) {
    let mut sim = ClusterSim::new(Cluster::homogeneous(4, NodeSpec::marenostrum4()))
        .with_failures(FailureInjector::random(seed, rate));
    sim.max_attempts = max_attempts;
    let jobs: Vec<Job> = (0..64).map(|i| Job::cpu(i, 12, 60_000_000 + i * 500_000)).collect();
    let out = sim.run(&jobs);
    (out.jobs_completed(), out.failed_jobs.len(), out.makespan)
}

fn main() {
    banner("Ablation", "retry policy under random task failures");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14}",
        "rate", "attempts", "completed", "lost", "makespan(min)"
    );
    for &rate in &[0.05f64, 0.15, 0.30] {
        for &attempts in &[1u32, 3, 5] {
            let mut completed_total = 0usize;
            let mut lost_total = 0usize;
            let mut makespan_total = 0u64;
            let seeds = 5u64;
            for seed in 0..seeds {
                let (c, l, m) = run(attempts, rate, seed);
                completed_total += c;
                lost_total += l;
                makespan_total += m;
            }
            println!(
                "{:>8.2} {:>12} {:>12.1} {:>12.1} {:>14.1}",
                rate,
                attempts,
                completed_total as f64 / seeds as f64,
                lost_total as f64 / seeds as f64,
                makespan_total as f64 / seeds as f64 / 60e6
            );
        }
    }

    // Sanity: the paper's 3-attempt policy rescues nearly everything at a
    // 15% failure rate, where no-retry loses a noticeable share.
    let (c1, l1, _) = run(1, 0.15, 1);
    let (c3, l3, m3) = run(3, 0.15, 1);
    println!("\nat 15% failures (seed 1): no-retry loses {l1}/64, paper policy loses {l3}/64");
    assert!(c3 > c1, "retries rescue jobs");
    assert_eq!(c3 + l3, 64);
    assert!(l3 <= 1, "triple-attempt at p=0.15 ⇒ loss rate ≈ 0.3%");
    let (_, _, m1) = run(1, 0.15, 1);
    println!(
        "makespan cost of retrying: {:+.1}% over giving up",
        (m3 as f64 / m1 as f64 - 1.0) * 100.0
    );
}
