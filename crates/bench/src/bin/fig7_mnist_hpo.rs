//! Figure 7 — MNIST hyperparameter optimisation with grid search:
//! per-epoch validation-accuracy curves for all 27 configurations, with
//! *real* training (tinyml MLPs on the synthetic MNIST-difficulty dataset).
//!
//! Paper: "MNIST is a relatively simple application that generalises well
//! after just a few epochs. Most of the combinations of hyperparameters are
//! able to attain above 90% accuracy."
//!
//! Epochs are scaled down by 10× by default so the binary finishes in
//! minutes; set `HPO_SCALE=full` for the paper's exact 20/50/100 grid.

use std::sync::Arc;

use hpo::prelude::*;
use hpo_bench::{banner, epoch_scale, out_dir};
use tinyml::Dataset;

fn main() {
    banner("Figure 7", "MNIST grid-search HPO — real training, accuracy curves");
    let scale = epoch_scale();
    println!("epoch scale: 1/{scale} (HPO_SCALE=full for the paper's grid)\n");

    let space = SearchSpace::new()
        .with("optimizer", ParamDomain::choice_strs(&["Adam", "SGD", "RMSprop"]))
        .with(
            "num_epochs",
            ParamDomain::choice_ints(&[20 / scale as i64, 50 / scale as i64, 100 / scale as i64]),
        )
        .with("batch_size", ParamDomain::choice_ints(&[32, 64, 128]));

    let cores = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(4);
    let rt = rcompss::Runtime::threaded(rcompss::RuntimeConfig::single_node(cores));
    let data = Arc::new(Dataset::synthetic_mnist(2_000, 1));
    let objective = hpo::experiment::tinyml_objective(data, vec![32]);
    let runner = HpoRunner::new(ExperimentOptions::default());

    let report = runner.run(&rt, &mut GridSearch::new(&space), objective).expect("run");

    println!("{}", report.summary());
    let above_90 = report.trials.iter().filter(|t| t.outcome.accuracy > 0.9).count();
    println!("configs above 90% accuracy: {above_90}/27 (paper: \"most of the combinations\")");
    println!("\nvalidation-accuracy curves (one glyph per config):");
    print!("{}", report.ascii_curves(72, 16));
    println!("\nmean final accuracy, optimizer × epochs (averaged over batch sizes):");
    print!("{}", report.accuracy_table("optimizer", "num_epochs"));

    let csv_path = out_dir().join("fig7_mnist_hpo.csv");
    std::fs::write(&csv_path, report.to_csv()).expect("write csv");
    println!("\nCSV written to {}", csv_path.display());

    assert_eq!(report.trials.len(), 27);
    assert!(above_90 >= 14, "most configs should clear 90%: got {above_90}");
}
