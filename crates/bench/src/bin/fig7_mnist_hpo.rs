//! Figure 7 — MNIST hyperparameter optimisation with grid search:
//! per-epoch validation-accuracy curves for all 27 configurations, with
//! *real* training (tinyml MLPs on the synthetic MNIST-difficulty dataset).
//!
//! Paper: "MNIST is a relatively simple application that generalises well
//! after just a few epochs. Most of the combinations of hyperparameters are
//! able to attain above 90% accuracy."
//!
//! Epochs are scaled down by 10× by default so the binary finishes in
//! minutes; set `HPO_SCALE=full` for the paper's exact 20/50/100 grid.

use std::sync::Arc;

use hpo::prelude::*;
use hpo_bench::{banner, epoch_scale, out_dir};
use tinyml::Dataset;

fn main() {
    banner("Figure 7", "MNIST grid-search HPO — real training, accuracy curves");
    let scale = epoch_scale();
    println!("epoch scale: 1/{scale} (HPO_SCALE=full for the paper's grid)\n");

    let space = SearchSpace::new()
        .with("optimizer", ParamDomain::choice_strs(&["Adam", "SGD", "RMSprop"]))
        .with(
            "num_epochs",
            ParamDomain::choice_ints(&[20 / scale as i64, 50 / scale as i64, 100 / scale as i64]),
        )
        .with("batch_size", ParamDomain::choice_ints(&[32, 64, 128]));

    let cores = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(4);
    let rt =
        rcompss::Runtime::threaded(rcompss::RuntimeConfig::single_node(cores).with_metrics(true));
    runmetrics::global().set_enabled(true);
    let data = Arc::new(Dataset::synthetic_mnist(2_000, 1));
    let objective = hpo::experiment::tinyml_objective(data, vec![32]);
    let runner = HpoRunner::new(ExperimentOptions::default());

    // One JSON-lines snapshot per completed trial: a time series of the
    // whole run for offline analysis (jq, pandas, Grafana via import).
    let mut jsonl = String::new();
    let report = runner
        .run_observed(&rt, &mut GridSearch::new(&space), objective, |_| {
            let mut snap = rt.metrics().snapshot();
            snap.merge(runmetrics::global().snapshot());
            jsonl.push_str(&runmetrics::to_jsonl_line(rt.now_us(), &snap));
            jsonl.push('\n');
        })
        .expect("run");

    println!("{}", report.summary());
    let above_90 = report.trials.iter().filter(|t| t.outcome.accuracy > 0.9).count();
    println!("configs above 90% accuracy: {above_90}/27 (paper: \"most of the combinations\")");
    println!("\nvalidation-accuracy curves (one glyph per config):");
    print!("{}", report.ascii_curves(72, 16));
    println!("\nmean final accuracy, optimizer × epochs (averaged over batch sizes):");
    print!("{}", report.accuracy_table("optimizer", "num_epochs"));

    let csv_path = out_dir().join("fig7_mnist_hpo.csv");
    std::fs::write(&csv_path, report.to_csv()).expect("write csv");
    println!("\nCSV written to {}", csv_path.display());

    // Final metrics exports next to the CSV.
    let mut final_snap = rt.metrics().snapshot();
    final_snap.merge(runmetrics::global().snapshot());
    let prom = runmetrics::to_prometheus(&final_snap);
    let prom_path = out_dir().join("fig7_mnist_hpo.prom");
    std::fs::write(&prom_path, &prom).expect("write prom");
    let jsonl_path = out_dir().join("fig7_mnist_hpo.metrics.jsonl");
    std::fs::write(&jsonl_path, &jsonl).expect("write jsonl");
    println!("metrics written to {} and {}", prom_path.display(), jsonl_path.display());

    assert_eq!(report.trials.len(), 27);
    assert!(above_90 >= 14, "most configs should clear 90%: got {above_90}");

    // The observability contract: every headline series is in the export.
    for series in [
        "rcompss_task_latency_us{fn=",
        "rcompss_ready_queue_depth",
        "rcompss_sched_decision_us",
        "rcompss_tasks_retried_total",
        "hpo_trials_completed_total",
        "hpo_trials_failed_total",
        "tinyml_epoch_us",
    ] {
        assert!(prom.contains(series), "missing series {series} in Prometheus export");
    }
    assert_eq!(final_snap.counter("hpo_trials_completed_total"), Some(27));
    assert_eq!(jsonl.lines().count(), 27, "one JSONL snapshot per trial");
    let (_, parsed) =
        runmetrics::from_jsonl_line(jsonl.lines().last().unwrap()).expect("valid JSONL");
    assert!(parsed.histogram("tinyml_epoch_us").map(|h| h.count).unwrap_or(0) > 0);
}
