//! Figure 3 — the dynamic task graph.
//!
//! Rebuilds the paper's example application: ten `graph.experiment` tasks,
//! one `graph.visualisation` task per experiment (immediate, interactive
//! feedback), and a final `graph.plot` fan-in behind the `compss_wait_on`
//! sync. Exports Graphviz DOT with the `dNvM` versioned-data edge labels.

use hpo_bench::{banner, out_dir};
use rcompss::{ArgSpec, Constraint, Runtime, RuntimeConfig, Value};

fn main() {
    banner("Figure 3", "dynamic dependency graph of the HPO application");

    let rt = Runtime::simulated(RuntimeConfig::single_node(16));
    let experiment = rt.register("graph.experiment", Constraint::cpus(1), 1, |ctx, _| {
        Ok(vec![Value::new(0.90 + 0.001 * ctx.task.0 as f64)])
    });
    let visualisation = rt.register("graph.visualisation", Constraint::cpus(1), 1, |_, inputs| {
        Ok(vec![inputs[0].clone()])
    });
    let plot = rt.register("graph.plot", Constraint::cpus(1), 1, |_, inputs| {
        let n = inputs.len();
        Ok(vec![Value::new(n)])
    });

    let mut vis_results = Vec::new();
    for _ in 0..10 {
        let e = rt.submit(&experiment, vec![]).expect("submit experiment").returns[0];
        let v =
            rt.submit(&visualisation, vec![ArgSpec::In(e)]).expect("submit visualisation").returns
                [0];
        vis_results.push(v);
    }
    let args: Vec<ArgSpec> = vis_results.iter().map(|&h| ArgSpec::In(h)).collect();
    let p = rt.submit(&plot, args).expect("submit plot").returns[0];
    let plotted = rt.wait_on(&p).expect("plot result");
    println!("plot task aggregated {} visualisations", plotted.downcast_ref::<usize>().unwrap());

    let dot = rt.dot();
    let path = out_dir().join("fig3_task_graph.dot");
    std::fs::write(&path, &dot).expect("write dot");
    println!("\n{dot}");
    println!("DOT written to {}", path.display());
    println!(
        "tasks: {} | graph edges labelled with versioned data (dNvM) as in the paper",
        rt.stats().submitted
    );
}
