//! Dependency-graph construction benchmarks — the cost of the paper's
//! "dynamic graph is created and all dependencies are established" step,
//! plus DOT export.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rcompss::{ArgSpec, Constraint, Runtime, RuntimeConfig, Value};

fn build_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    for &n in &[27usize, 270, 1_000] {
        group.bench_with_input(BenchmarkId::new("independent_tasks", n), &n, |b, &n| {
            b.iter(|| {
                let rt = Runtime::simulated(RuntimeConfig::single_node(48));
                let t = rt.register("t", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
                for _ in 0..n {
                    black_box(rt.submit(&t, vec![]).unwrap());
                }
                rt.stats().submitted
            });
        });
        group.bench_with_input(BenchmarkId::new("dependency_chain", n), &n, |b, &n| {
            b.iter(|| {
                let rt = Runtime::simulated(RuntimeConfig::single_node(48));
                let t = rt
                    .register("t", Constraint::cpus(1), 1, |_, inputs| Ok(vec![inputs[0].clone()]));
                let mut h = rt.literal(0u64);
                for _ in 0..n {
                    h = rt.submit(&t, vec![ArgSpec::In(h)]).unwrap().returns[0];
                }
                black_box(h)
            });
        });
    }
    group.finish();
}

fn dot_export(c: &mut Criterion) {
    c.bench_function("graph_dot_export_100_tasks", |b| {
        let rt = Runtime::simulated(RuntimeConfig::single_node(48));
        let exp =
            rt.register("experiment", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
        let vis = rt.register("vis", Constraint::cpus(1), 1, |_, i| Ok(vec![i[0].clone()]));
        for _ in 0..50 {
            let e = rt.submit(&exp, vec![]).unwrap().returns[0];
            rt.submit(&vis, vec![ArgSpec::In(e)]).unwrap();
        }
        b.iter(|| black_box(rt.dot()).len());
    });
}

criterion_group!(benches, build_fanout, dot_export);
criterion_main!(benches);
