//! Discrete-event-engine benchmarks: raw event-queue throughput and
//! end-to-end simulated-runtime event rates. These bound how large a
//! virtual cluster the Figure 6/9 experiments can sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cluster::EventQueue;
use rcompss::{Constraint, Runtime, RuntimeConfig, SubmitOpts, Value};

fn event_queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n as u64 {
                    q.schedule_at(i * 31 % 7_919, i);
                }
                let mut sum = 0u64;
                while let Some((_, e)) = q.pop() {
                    sum = sum.wrapping_add(e);
                }
                black_box(sum)
            });
        });
    }
    group.finish();
}

fn simulated_runtime_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_runtime");
    group.sample_size(10);
    for &n in &[100usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("independent_tasks", n), &n, |b, &n| {
            b.iter(|| {
                let mut cfg = RuntimeConfig::single_node(48);
                cfg.tracing = false;
                cfg.graph = false;
                let rt = Runtime::simulated(cfg);
                let t = rt.register("t", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
                for i in 0..n as u64 {
                    rt.submit_with(&t, vec![], SubmitOpts { sim_duration_us: Some(100 + i) })
                        .unwrap();
                }
                rt.barrier();
                black_box(rt.now_us())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, event_queue_throughput, simulated_runtime_tasks);
criterion_main!(benches);
