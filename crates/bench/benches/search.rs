//! Search-algorithm benchmarks: suggestion throughput of grid/random/TPE,
//! and the Bergstra-style efficiency comparison — expected trials to reach
//! a target on a synthetic response surface (the paper: "random research is
//! more efficient than grid search and arrives at parameters that are good
//! or better at a fraction of the time").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hpo::experiment::TrialOutcome;
use hpo::prelude::*;
use hpo::results::TrialResult;

fn synthetic_accuracy(cfg: &Config) -> f64 {
    let opt = match cfg.get_str("optimizer") {
        Some("Adam") => 0.12,
        Some("RMSprop") => 0.06,
        _ => 0.0,
    };
    let e = cfg.get_int("num_epochs").unwrap_or(20) as f64;
    let b = cfg.get_int("batch_size").unwrap_or(64) as f64;
    0.55 + opt + 0.002 * e - b / 3000.0
}

fn suggestion_throughput(c: &mut Criterion) {
    let space = SearchSpace::paper_grid();
    c.bench_function("grid_27_suggestions", |b| {
        b.iter(|| {
            let mut g = GridSearch::new(&space);
            let mut n = 0;
            while black_box(g.suggest(&[])).is_some() {
                n += 1;
            }
            n
        });
    });
    c.bench_function("random_27_suggestions", |b| {
        b.iter(|| {
            let mut r = RandomSearch::new(&space, 27, 1);
            let mut n = 0;
            while black_box(r.suggest(&[])).is_some() {
                n += 1;
            }
            n
        });
    });
    c.bench_function("tpe_27_suggestions_with_feedback", |b| {
        b.iter(|| {
            let mut t = TpeSearch::new(&space, 27, 1);
            let mut hist: Vec<TrialResult> = Vec::new();
            while let Some(cfg) = t.suggest(&hist) {
                let acc = synthetic_accuracy(&cfg);
                hist.push(TrialResult {
                    config: cfg,
                    outcome: TrialOutcome::with_accuracy(acc),
                    task_us: 0,
                });
            }
            hist.len()
        });
    });
}

fn trials_to_target(c: &mut Criterion) {
    let space = SearchSpace::paper_grid();
    let target = 0.85; // reachable by a handful of the 27 cells
    c.bench_function("random_trials_to_target", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for seed in 0..20u64 {
                let mut r = RandomSearch::new(&space, 27, seed);
                let mut n = 0u64;
                while let Some(cfg) = r.suggest(&[]) {
                    n += 1;
                    if synthetic_accuracy(&cfg) >= target {
                        break;
                    }
                }
                total += n;
            }
            black_box(total)
        });
    });
    c.bench_function("grid_trials_to_target", |b| {
        b.iter(|| {
            let mut g = GridSearch::new(&space);
            let mut n = 0u64;
            while let Some(cfg) = g.suggest(&[]) {
                n += 1;
                if synthetic_accuracy(&cfg) >= target {
                    break;
                }
            }
            black_box(n)
        });
    });
}

criterion_group!(benches, suggestion_throughput, trials_to_target);
criterion_main!(benches);
