//! tinyml training-throughput benchmarks: the per-batch and per-epoch cost
//! that the cluster cost models abstract. Useful to sanity-check that the
//! real substrate behaves like the calibrated `TrainingCost` (shape-wise).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tinyml::optim::OptimizerKind;
use tinyml::train::{train, TrainConfig};
use tinyml::Dataset;

fn one_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_one_epoch");
    group.sample_size(10);
    for &batch in &[32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::new("mnist_like_bs", batch), &batch, |b, &batch| {
            let data = Dataset::synthetic_mnist(1_000, 1);
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: batch,
                hidden_layers: vec![32],
                ..TrainConfig::default()
            };
            b.iter(|| black_box(train(&cfg, &data)).final_val_accuracy());
        });
    }
    group.finish();
}

fn optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_optimizer");
    group.sample_size(10);
    for kind in OptimizerKind::ALL {
        group.bench_with_input(BenchmarkId::new("epoch", kind.name()), &kind, |b, &kind| {
            let data = Dataset::synthetic_mnist(800, 2);
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: 64,
                optimizer: kind,
                hidden_layers: vec![32],
                ..TrainConfig::default()
            };
            b.iter(|| black_box(train(&cfg, &data)).final_val_accuracy());
        });
    }
    group.finish();
}

fn gemm(c: &mut Criterion) {
    use tinyml::Matrix;
    c.bench_function("gemm_64x784x64", |b| {
        let a = Matrix::from_fn(64, 784, |r, col| ((r * col) as f32).sin());
        let w = Matrix::from_fn(784, 64, |r, col| ((r + col) as f32).cos());
        let mut out = Matrix::zeros(64, 64);
        b.iter(|| {
            a.matmul_into(&w, &mut out);
            black_box(out.get(0, 0))
        });
    });
}

/// Intra-task scaling of the dense kernel: the same GEMM under 1/2/4/8
/// worker threads, i.e. what an experiment task gains from a
/// `@constraint(computing_units=N)` core grant (paper Figures 5/9).
fn gemm_threads(c: &mut Criterion) {
    use tinyml::{par, Matrix};
    let mut group = c.benchmark_group("gemm_threads_128x784x128");
    group.sample_size(20);
    let a = Matrix::from_fn(128, 784, |r, col| ((r * col) as f32).sin());
    let w = Matrix::from_fn(784, 128, |r, col| ((r + col) as f32).cos());
    for &t in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let mut out = Matrix::zeros(128, 128);
            b.iter(|| {
                par::with_threads(t, || a.matmul_into(&w, &mut out));
                black_box(out.get(0, 0))
            });
        });
    }
    group.finish();
}

/// Conv2d forward + backward (im2col → blocked GEMM) under 1/2/4/8 worker
/// threads, on an MNIST-shaped batch — the CNN trial's inner loop.
fn conv_threads(c: &mut Criterion) {
    use tinyml::conv::{Conv2d, Tensor4};
    use tinyml::par;
    let mut group = c.benchmark_group("conv_threads_32x1x28x28_8ch");
    group.sample_size(20);
    let layer = Conv2d::new(1, 8, 3, 1, 42);
    let mut x = Tensor4::zeros(32, 1, 28, 28);
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 31) as f32 * 0.01).sin();
    }
    for &t in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                par::with_threads(t, || {
                    let y = layer.forward(&x);
                    let (dw, _db, _dx) = layer.backward(&x, &y);
                    black_box(dw.get(0, 0))
                })
            });
        });
    }
    group.finish();
}

/// Whole-epoch serial-vs-parallel comparison: identical training run (and
/// bit-identical resulting model) under 1 vs 4 worker threads.
fn epoch_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_one_epoch_threads");
    group.sample_size(10);
    for &t in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("mnist_like", t), &t, |b, &t| {
            let data = Dataset::synthetic_mnist(1_000, 1);
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: 64,
                hidden_layers: vec![64],
                threads: t,
                ..TrainConfig::default()
            };
            b.iter(|| black_box(train(&cfg, &data)).final_val_accuracy());
        });
    }
    group.finish();
}

criterion_group!(benches, one_epoch, optimizers, gemm, gemm_threads, conv_threads, epoch_threads);
criterion_main!(benches);
