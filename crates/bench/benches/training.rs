//! tinyml training-throughput benchmarks: the per-batch and per-epoch cost
//! that the cluster cost models abstract. Useful to sanity-check that the
//! real substrate behaves like the calibrated `TrainingCost` (shape-wise).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tinyml::optim::OptimizerKind;
use tinyml::train::{train, TrainConfig};
use tinyml::Dataset;

fn one_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_one_epoch");
    group.sample_size(10);
    for &batch in &[32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::new("mnist_like_bs", batch), &batch, |b, &batch| {
            let data = Dataset::synthetic_mnist(1_000, 1);
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: batch,
                hidden_layers: vec![32],
                ..TrainConfig::default()
            };
            b.iter(|| black_box(train(&cfg, &data)).final_val_accuracy());
        });
    }
    group.finish();
}

fn optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_optimizer");
    group.sample_size(10);
    for kind in OptimizerKind::ALL {
        group.bench_with_input(BenchmarkId::new("epoch", kind.name()), &kind, |b, &kind| {
            let data = Dataset::synthetic_mnist(800, 2);
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: 64,
                optimizer: kind,
                hidden_layers: vec![32],
                ..TrainConfig::default()
            };
            b.iter(|| black_box(train(&cfg, &data)).final_val_accuracy());
        });
    }
    group.finish();
}

fn gemm(c: &mut Criterion) {
    use tinyml::Matrix;
    c.bench_function("gemm_64x784x64", |b| {
        let a = Matrix::from_fn(64, 784, |r, col| ((r * col) as f32).sin());
        let w = Matrix::from_fn(784, 64, |r, col| ((r + col) as f32).cos());
        let mut out = Matrix::zeros(64, 64);
        b.iter(|| {
            a.matmul_into(&w, &mut out);
            black_box(out.get(0, 0))
        });
    });
}

criterion_group!(benches, one_epoch, optimizers, gemm);
criterion_main!(benches);
