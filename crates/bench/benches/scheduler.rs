//! Scheduler microbenchmarks: how fast the constraint-aware placement loop
//! runs. The paper's scalability claims rest on scheduling being cheap
//! relative to training tasks; these benches quantify "cheap".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cluster::{Cluster, ClusterSim, Job, NodeSpec};

fn schedule_rigid_jobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim_schedule");
    for &n_jobs in &[27usize, 270, 2_700] {
        group.bench_with_input(BenchmarkId::new("fifo_first_fit", n_jobs), &n_jobs, |b, &n| {
            let sim = ClusterSim::new(Cluster::homogeneous(28, NodeSpec::marenostrum4()));
            let jobs: Vec<Job> =
                (0..n as u64).map(|i| Job::cpu(i, (i % 48 + 1) as u32, 1_000 + i * 7)).collect();
            b.iter(|| black_box(sim.run(&jobs)).makespan);
        });
    }
    group.finish();
}

fn schedule_gpu_constraints(c: &mut Criterion) {
    c.bench_function("cluster_sim_gpu_tasks_256", |b| {
        let sim = ClusterSim::new(Cluster::homogeneous(8, NodeSpec::cte_power9()));
        let jobs: Vec<Job> = (0..256u64)
            .map(|i| Job { id: i, name: String::new(), cores: 10, gpus: 1, duration_us: 5_000 })
            .collect();
        b.iter(|| black_box(sim.run(&jobs)).makespan);
    });
}

criterion_group!(benches, schedule_rigid_jobs, schedule_gpu_constraints);
criterion_main!(benches);
