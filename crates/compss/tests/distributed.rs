//! End-to-end tests of the distributed backend over loopback TCP:
//! in-process [`WorkerServer`]s on 127.0.0.1, a driver [`Runtime`] wired to
//! them, and the same task graphs the threaded backend runs — results must
//! be identical. Also exercises the failure path: a worker killed mid-run
//! must not sink the run; its in-flight tasks are resubmitted to survivors.

use std::sync::Arc;
use std::time::Duration;

use rcompss::{
    ArgSpec, Constraint, DistributedConfig, RetryPolicy, Runtime, RuntimeConfig, TaskContext,
    TaskDef, TaskError, TaskRegistry, Value, WorkerConfig, WorkerHandle, WorkerServer,
};

fn def(
    name: &str,
    body: impl Fn(&TaskContext, &[Value]) -> Result<Vec<Value>, TaskError> + Send + Sync + 'static,
) -> TaskDef {
    TaskDef {
        name: name.into(),
        constraint: Constraint::cpus(1),
        returns: 1,
        priority: false,
        body: Arc::new(body),
        alternatives: Vec::new(),
    }
}

/// The shared task set both sides agree on: the worker resolves incoming
/// submits against this registry; the driver uses the same defs to submit.
fn task_set() -> TaskRegistry {
    let add = def("add", |_, inputs| {
        let a: i64 = *inputs[0].downcast_ref::<i64>().unwrap();
        let b: i64 = *inputs[1].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(a + b)])
    });
    let square = def("square", |_, inputs| {
        let x: i64 = *inputs[0].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(x * x)])
    });
    let sum = def("sum", |_, inputs| {
        let total: i64 = inputs.iter().map(|v| *v.downcast_ref::<i64>().unwrap()).sum();
        Ok(vec![Value::new(total)])
    });
    let slow_square = def("slow_square", |_, inputs| {
        std::thread::sleep(Duration::from_millis(15));
        let x: i64 = *inputs[0].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(x * x)])
    });
    TaskRegistry::new().with(add).with(square).with(sum).with(slow_square)
}

fn spawn_workers(n: usize, cores: u32) -> Vec<WorkerHandle> {
    let registry = task_set();
    (0..n)
        .map(|i| {
            let cfg = WorkerConfig { name: format!("w{i}"), cores, ..WorkerConfig::default() };
            WorkerServer::bind("127.0.0.1:0", cfg, registry.clone())
                .expect("bind loopback")
                .spawn()
                .expect("spawn worker")
        })
        .collect()
}

fn addrs(workers: &[WorkerHandle]) -> Vec<String> {
    workers.iter().map(|w| w.addr()).collect()
}

/// Fan-out/fan-in over `n` inputs; returns the final reduced value.
fn run_fan_out_fan_in(rt: &Runtime, n: i64) -> i64 {
    let square = task_set().get("square").unwrap().clone();
    let sum = task_set().get("sum").unwrap().clone();
    let squares: Vec<_> = (1..=n)
        .map(|i| {
            let h = rt.literal(i);
            rt.submit(&square, vec![ArgSpec::In(h)]).unwrap().returns[0]
        })
        .collect();
    let args: Vec<ArgSpec> = squares.iter().map(|&h| ArgSpec::In(h)).collect();
    let total = rt.submit(&sum, args).unwrap().returns[0];
    *rt.wait_on(&total).unwrap().downcast_ref::<i64>().unwrap()
}

#[test]
fn loopback_fan_out_matches_threaded() {
    let workers = spawn_workers(2, 2);
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1),
        &addrs(&workers),
        DistributedConfig::default(),
    )
    .expect("connect to loopback workers");
    let distributed = run_fan_out_fan_in(&rt, 12);

    let threaded = {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        run_fan_out_fan_in(&rt, 12)
    };
    assert_eq!(distributed, threaded);
    assert_eq!(distributed, (1..=12i64).map(|i| i * i).sum::<i64>());

    let stats = rt.stats();
    assert_eq!(stats.submitted, 13);
    assert_eq!(stats.completed, 13);
    assert_eq!(stats.failed, 0);
}

#[test]
fn loopback_dependent_chain_and_labels() {
    let workers = spawn_workers(2, 1);
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1),
        &addrs(&workers),
        DistributedConfig::default(),
    )
    .expect("connect");
    let labels = rt.node_labels();
    assert_eq!(labels.len(), 2);
    assert!(labels[0].starts_with("w0@127.0.0.1:"), "label {:?}", labels[0]);
    assert!(labels[1].starts_with("w1@127.0.0.1:"), "label {:?}", labels[1]);

    let add = task_set().get("add").unwrap().clone();
    let one = rt.literal(1i64);
    let mut acc = rt.literal(0i64);
    for _ in 0..10 {
        acc = rt.submit(&add, vec![ArgSpec::In(acc), ArgSpec::In(one)]).unwrap().returns[0];
    }
    let v = rt.wait_on(&acc).unwrap();
    assert_eq!(*v.downcast_ref::<i64>().unwrap(), 10);

    // Every completion is attributed to a worker label in the metrics.
    let snap = rt.metrics().snapshot();
    let per_node: u64 = labels
        .iter()
        .filter_map(|l| {
            snap.counter(&runmetrics::labeled("rcompss_node_tasks_completed_total", "node", l))
        })
        .sum();
    assert_eq!(per_node, 10, "all completions attributed to workers");
}

#[test]
fn tiny_window_still_drains_everything() {
    let workers = spawn_workers(1, 2);
    let dcfg = DistributedConfig { window: Some(1), ..DistributedConfig::default() };
    let rt = Runtime::distributed(RuntimeConfig::single_node(1), &addrs(&workers), dcfg)
        .expect("connect");
    assert_eq!(run_fan_out_fan_in(&rt, 20), (1..=20i64).map(|i| i * i).sum::<i64>());
}

#[test]
fn killed_worker_mid_run_resubmits_to_survivors() {
    let workers = spawn_workers(3, 2);
    let dcfg = DistributedConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(300),
        ..DistributedConfig::default()
    };
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1)
            .with_retry(RetryPolicy { max_attempts: 4, same_node_first: false }),
        &addrs(&workers),
        dcfg,
    )
    .expect("connect");

    let slow = task_set().get("slow_square").unwrap().clone();
    let handles: Vec<_> = (1..=30i64)
        .map(|i| {
            let h = rt.literal(i);
            rt.submit(&slow, vec![ArgSpec::In(h)]).unwrap().returns[0]
        })
        .collect();

    // Let the run get going, then SIGKILL-style drop one worker: its
    // executor threads stop reporting and its socket goes dark.
    std::thread::sleep(Duration::from_millis(40));
    workers[0].halt();

    for (i, h) in handles.iter().enumerate() {
        let v = rt.wait_on(h).expect("survivors finish the work");
        let x = (i + 1) as i64;
        assert_eq!(*v.downcast_ref::<i64>().unwrap(), x * x);
    }

    let snap = rt.metrics().snapshot();
    assert_eq!(snap.counter("rcompss_workers_lost_total"), Some(1));
    assert!(
        snap.counter("rcompss_tasks_retried_total").unwrap_or(0) > 0,
        "in-flight tasks on the dead worker were resubmitted"
    );
    assert_eq!(rt.stats().completed, 30);
}

#[test]
fn killed_worker_resumes_from_snapshot_not_epoch_zero() {
    use std::sync::Mutex;

    const EPOCHS: u32 = 10;
    const SNAP_KEY: u64 = 0x5EED;

    // Each attempt records (node, start_epoch) when it begins; loopback
    // workers run in this process, so the statics are shared.
    static ATTEMPTS: Mutex<Vec<(u32, u32)>> = Mutex::new(Vec::new());

    let stepper = def("stepper", |ctx, _| {
        let start = rcompss::snapshot::load(SNAP_KEY)
            .map(|b| u32::from_le_bytes(b[..4].try_into().unwrap()))
            .unwrap_or(0);
        ATTEMPTS.lock().unwrap().push((ctx.node, start));
        for epoch in start..EPOCHS {
            std::thread::sleep(Duration::from_millis(40));
            rcompss::snapshot::save(SNAP_KEY, &(epoch + 1).to_le_bytes());
        }
        rcompss::snapshot::discard(SNAP_KEY);
        Ok(vec![Value::new(i64::from(EPOCHS))])
    });
    let registry = TaskRegistry::new().with(stepper.clone());

    let workers: Vec<WorkerHandle> = (0..2)
        .map(|i| {
            let cfg = WorkerConfig { name: format!("w{i}"), cores: 1, ..WorkerConfig::default() };
            WorkerServer::bind("127.0.0.1:0", cfg, registry.clone())
                .expect("bind loopback")
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    let dcfg = DistributedConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(300),
        ..DistributedConfig::default()
    };
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1)
            .with_retry(RetryPolicy { max_attempts: 4, same_node_first: false }),
        &addrs(&workers),
        dcfg,
    )
    .expect("connect");

    let h = rt.submit(&stepper, vec![]).unwrap().returns[0];

    // Let a few epochs checkpoint, then kill whichever worker runs the task.
    std::thread::sleep(Duration::from_millis(150));
    let node = ATTEMPTS.lock().unwrap().first().expect("task started").0;
    workers[node as usize].halt();

    let v = rt.wait_on(&h).expect("survivor finishes the task");
    assert_eq!(*v.downcast_ref::<i64>().unwrap(), i64::from(EPOCHS));

    let attempts = ATTEMPTS.lock().unwrap().clone();
    assert!(attempts.len() >= 2, "task was retried after the kill: {attempts:?}");
    assert_eq!(attempts[0].1, 0, "first attempt trains from scratch");
    let resumed = attempts.last().unwrap();
    assert_ne!(resumed.0, node, "retry lands on the surviving worker");
    assert!(
        resumed.1 > 0,
        "replacement worker resumes from the driver-held snapshot, \
         not epoch 0: {attempts:?}"
    );
    assert_eq!(rt.metrics().snapshot().counter("rcompss_workers_lost_total"), Some(1));
}

#[test]
fn all_workers_dead_fails_tasks_instead_of_hanging() {
    let workers = spawn_workers(1, 1);
    let dcfg = DistributedConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(250),
        ..DistributedConfig::default()
    };
    let rt = Runtime::distributed(RuntimeConfig::single_node(1), &addrs(&workers), dcfg)
        .expect("connect");
    let slow = task_set().get("slow_square").unwrap().clone();
    let mut handles = Vec::new();
    for i in 1..=8i64 {
        let h = rt.literal(i);
        handles.push(rt.submit(&slow, vec![ArgSpec::In(h)]).unwrap().returns[0]);
    }
    std::thread::sleep(Duration::from_millis(30));
    workers[0].halt();
    // With no survivors the retry policy runs out of nodes: tasks must be
    // failed (poisoned handles), not parked forever.
    let mut failures = 0;
    for h in &handles {
        if rt.wait_on(h).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0, "at least the in-flight tasks fail cleanly");
    assert!(rt.stats().failed > 0);
}

#[test]
fn tracing_disabled_ships_zero_telemetry_bytes() {
    let workers = spawn_workers(2, 2);
    let dcfg = DistributedConfig {
        heartbeat_interval: Duration::from_millis(30),
        ..DistributedConfig::default()
    };
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1).with_tracing(false),
        &addrs(&workers),
        dcfg,
    )
    .expect("connect");
    assert_eq!(run_fan_out_fan_in(&rt, 16), (1..=16i64).map(|i| i * i).sum::<i64>());

    // Give several heartbeats a chance to (incorrectly) solicit telemetry.
    std::thread::sleep(Duration::from_millis(120));

    // With tracing off the heartbeat advertises `telemetry: false`, workers
    // drop their buffered spans locally, and not a single TraceChunk or
    // StatsSnapshot byte crosses the wire.
    let snap = rt.metrics().snapshot();
    assert_eq!(
        snap.counter("rnet_telemetry_bytes_total").unwrap_or(0),
        0,
        "telemetry frames must not ship when tracing is disabled"
    );
    assert!(rt.trace().is_empty(), "no trace records when tracing is disabled");
    for (name, _) in &snap.gauges {
        assert!(
            !name.starts_with("rnet_last_stats_us"),
            "no worker stats snapshot should have arrived: {name}"
        );
    }
}

#[test]
fn merged_trace_has_worker_spans_for_every_completed_task() {
    const N: i64 = 30;
    let workers = spawn_workers(3, 2);
    let dcfg = DistributedConfig {
        heartbeat_interval: Duration::from_millis(40),
        heartbeat_timeout: Duration::from_millis(300),
        ..DistributedConfig::default()
    };
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1)
            .with_retry(RetryPolicy { max_attempts: 4, same_node_first: false }),
        &addrs(&workers),
        dcfg,
    )
    .expect("connect");

    let slow = task_set().get("slow_square").unwrap().clone();
    let handles: Vec<_> = (1..=N)
        .map(|i| {
            let h = rt.literal(i);
            rt.submit(&slow, vec![ArgSpec::In(h)]).unwrap().returns[0]
        })
        .collect();

    // Kill one worker mid-run: its in-flight tasks are resubmitted, and the
    // merged trace must still account for every *completed* execution.
    std::thread::sleep(Duration::from_millis(60));
    workers[0].halt();
    for (i, h) in handles.iter().enumerate() {
        let x = (i + 1) as i64;
        assert_eq!(*rt.wait_on(h).unwrap().downcast_ref::<i64>().unwrap(), x * x);
    }
    assert_eq!(rt.stats().completed, N as u64);

    // A couple more heartbeats so survivors ship their last trace chunks.
    std::thread::sleep(Duration::from_millis(150));

    let records = rt.trace();
    // Worker span shipping actually happened (ground truth, not estimates).
    let snap = rt.metrics().snapshot();
    assert!(
        snap.counter("rnet_telemetry_bytes_total").unwrap_or(0) > 0,
        "workers shipped trace chunks over the wire"
    );

    // Every completed slow_square has an execution span in the merged trace.
    let mut seen = std::collections::HashSet::new();
    for r in &records {
        if let Some(t) = r.running_task() {
            if &*t.name == "slow_square" {
                assert!(r.end_time() > r.time(), "non-empty exec span: {r:?}");
                seen.insert(t.id);
            }
        }
    }
    assert_eq!(seen.len() as i64, N, "one exec span per completed task");

    // Rebasing kept the merged timeline monotonic — records sorted by start
    // time with no span extending past the run horizon.
    let horizon = records.iter().map(|r| r.end_time()).max().unwrap_or(0);
    let mut prev = 0;
    for r in &records {
        assert!(r.time() >= prev, "merged trace sorted on driver timeline");
        assert!(r.end_time() <= horizon);
        prev = r.time();
    }

    // The lifecycle histograms decompose queue → wire → exec → ship.
    for phase in ["queue", "wire", "exec", "ship"] {
        let h = snap
            .histogram(&runmetrics::labeled("rcompss_task_phase_us", "phase", phase))
            .unwrap_or_else(|| panic!("task_phase_us{{phase={phase}}} registered"));
        assert!(h.count >= N as u64, "phase {phase} recorded per completion: {}", h.count);
    }
    // Exec time is worker ground truth: slow_square sleeps 15 ms, so the
    // median must sit at or above that floor.
    let exec = snap.histogram(&runmetrics::labeled("rcompss_task_phase_us", "phase", "exec"));
    assert!(exec.unwrap().p50 >= 10_000, "exec phase reflects the 15 ms body");
}

/// Task set for the block-plane tests: `dot` folds a shared `Vec<f64>`
/// dataset with a per-trial scale — the dataset is what the block plane
/// should ship once per worker instead of once per trial.
fn block_task_set(sleep: Duration) -> TaskRegistry {
    let dot = def("dot", move |_, inputs| {
        std::thread::sleep(sleep);
        let data: &Vec<f64> = inputs[0].downcast_ref().unwrap();
        let scale: i64 = *inputs[1].downcast_ref::<i64>().unwrap();
        let sum: f64 = data.iter().sum();
        Ok(vec![Value::new(sum * scale as f64)])
    });
    TaskRegistry::new().with(dot)
}

fn spawn_block_workers(n: usize, cores: u32, sleep: Duration) -> Vec<WorkerHandle> {
    let registry = block_task_set(sleep);
    (0..n)
        .map(|i| {
            let cfg = WorkerConfig { name: format!("w{i}"), cores, ..WorkerConfig::default() };
            WorkerServer::bind("127.0.0.1:0", cfg, registry.clone())
                .expect("bind loopback")
                .spawn()
                .expect("spawn worker")
        })
        .collect()
}

/// Submit `trials` dot-products, each against its *own* literal holding
/// the same dataset bytes — the realistic sweep shape where every trial
/// materialises its copy of a shared input under a fresh handle. The
/// version-keyed cache cannot dedup across handles; the content-addressed
/// plane collapses them onto one block. Returns the result bit patterns
/// (f64 → u64, so equality is exact).
fn run_block_sweep(rt: &Runtime, dataset: &[f64], trials: i64, sleep: Duration) -> Vec<u64> {
    let dot = block_task_set(sleep).get("dot").unwrap().clone();
    let handles: Vec<_> = (1..=trials)
        .map(|i| {
            let ds = rt.literal(dataset.to_vec());
            // Declare the real size so the distributed backend routes the
            // dataset through the block plane (the per-trial i64 keeps the
            // 1 KiB default and stays inline).
            rt.set_data_bytes(ds, (dataset.len() * 8) as u64);
            let scale = rt.literal(i);
            rt.submit(&dot, vec![ArgSpec::In(ds), ArgSpec::In(scale)]).unwrap().returns[0]
        })
        .collect();
    handles
        .iter()
        .map(|h| rt.wait_on(h).unwrap().downcast_ref::<f64>().unwrap().to_bits())
        .collect()
}

#[test]
fn block_plane_ships_shared_dataset_once_per_worker_not_once_per_trial() {
    const TRIALS: i64 = 12;
    let dataset: Vec<f64> = (0..4096).map(|i| (i as f64).sin()).collect();
    let ds_wire = rcompss::codec::encode_value(&Value::new(dataset.clone()))
        .expect("builtin vec_f64 codec")
        .bytes
        .len() as u64;

    // Worker block-cache counters live in the process-global registry
    // (opt-in, like the worker binary's `serve`) and loopback workers
    // share this process, so enable it and measure deltas.
    runmetrics::global().set_enabled(true);
    let hits_before =
        runmetrics::global().snapshot().counter("rcompss_block_cache_hits_total").unwrap_or(0);

    // Control: the same sweep with the block plane disabled ships the
    // dataset inline in every Submit — the O(trials × dataset) baseline.
    let inline_sent = {
        let workers = spawn_block_workers(2, 2, Duration::ZERO);
        let dcfg = DistributedConfig { inline_threshold: u64::MAX, ..DistributedConfig::default() };
        let rt = Runtime::distributed(RuntimeConfig::single_node(1), &addrs(&workers), dcfg)
            .expect("connect");
        run_block_sweep(&rt, &dataset, TRIALS, Duration::ZERO);
        rt.metrics().snapshot().counter("rnet_bytes_sent_total").expect("bytes counted")
    };

    let workers = spawn_block_workers(2, 2, Duration::ZERO);
    let dcfg = DistributedConfig { inline_threshold: 16 * 1024, ..DistributedConfig::default() };
    let rt = Runtime::distributed(RuntimeConfig::single_node(1), &addrs(&workers), dcfg)
        .expect("connect");
    let distributed = run_block_sweep(&rt, &dataset, TRIALS, Duration::ZERO);

    // Bit-identical to the threaded backend: the block plane changes how
    // bytes move, never what tasks compute.
    let threaded = {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        run_block_sweep(&rt, &dataset, TRIALS, Duration::ZERO)
    };
    assert_eq!(distributed, threaded, "results identical across backends");

    let snap = rt.metrics().snapshot();
    let sent = snap.counter("rnet_bytes_sent_total").expect("bytes counted");
    let naive = TRIALS as u64 * ds_wire;
    let deduped = 2 * ds_wire; // once per worker
    println!(
        "bytes on wire for {TRIALS} trials over a {ds_wire}-byte dataset: \
         inline {inline_sent}, block plane {sent} ({:.1}x less)",
        inline_sent as f64 / sent as f64
    );
    assert!(sent < naive, "block plane beats inline shipping: sent {sent} >= naive {naive}");
    assert!(
        sent <= 2 * deduped + 96 * 1024,
        "sent {sent} exceeds O(workers × dataset) + control-plane slack"
    );
    assert!(
        sent * 2 < inline_sent,
        "block plane at least halves the measured inline bytes \
         ({inline_sent} -> {sent})"
    );

    // Every trial resolved the dataset from the local cache: the block
    // rode a BlockPut ahead of the first Submit on each link.
    let hits_after =
        runmetrics::global().snapshot().counter("rcompss_block_cache_hits_total").unwrap_or(0);
    assert!(
        hits_after - hits_before >= TRIALS as u64,
        "each trial hit the worker block cache ({hits_before} -> {hits_after})"
    );

    // Per-link byte counters carry a node label and sum to the global.
    let labelled: u64 = rt
        .node_labels()
        .iter()
        .filter_map(|l| snap.counter(&runmetrics::labeled("rnet_bytes_sent_total", "node", l)))
        .sum();
    assert_eq!(labelled, sent, "per-node byte counters partition the total");
}

#[test]
fn killed_worker_block_inputs_refetch_cleanly_on_survivors() {
    const TRIALS: i64 = 24;
    let dataset: Vec<f64> = (0..4096).map(|i| (i as f64).cos()).collect();

    let workers = spawn_block_workers(2, 2, Duration::from_millis(15));
    let dcfg = DistributedConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(300),
        inline_threshold: 16 * 1024,
        ..DistributedConfig::default()
    };
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1)
            .with_retry(RetryPolicy { max_attempts: 4, same_node_first: false }),
        &addrs(&workers),
        dcfg,
    )
    .expect("connect");

    let dot = block_task_set(Duration::from_millis(15)).get("dot").unwrap().clone();
    let ds = rt.literal(dataset.clone());
    rt.set_data_bytes(ds, (dataset.len() * 8) as u64);
    let handles: Vec<_> = (1..=TRIALS)
        .map(|i| {
            let scale = rt.literal(i);
            rt.submit(&dot, vec![ArgSpec::In(ds), ArgSpec::In(scale)]).unwrap().returns[0]
        })
        .collect();

    // Kill one worker mid-run: failover must retract its block residency
    // (clear_node) so retried tasks re-fetch on survivors instead of the
    // driver assuming the dead node's cache still exists.
    std::thread::sleep(Duration::from_millis(40));
    workers[0].halt();

    let expected: f64 = dataset.iter().sum();
    for (i, h) in handles.iter().enumerate() {
        let v = rt.wait_on(h).expect("survivor finishes block-plane tasks");
        let got = *v.downcast_ref::<f64>().unwrap();
        assert_eq!(got.to_bits(), (expected * (i as f64 + 1.0)).to_bits());
    }
    let snap = rt.metrics().snapshot();
    assert_eq!(snap.counter("rcompss_workers_lost_total"), Some(1));
    assert!(
        snap.counter("rcompss_tasks_retried_total").unwrap_or(0) > 0,
        "in-flight tasks on the dead worker were resubmitted"
    );
    assert_eq!(rt.stats().completed, TRIALS as u64);
}

#[test]
fn reconnect_resumes_after_connection_drop() {
    let workers = spawn_workers(2, 2);
    let dcfg = DistributedConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(300),
        reconnect: true,
        ..DistributedConfig::default()
    };
    let rt = Runtime::distributed(
        RuntimeConfig::single_node(1)
            .with_retry(RetryPolicy { max_attempts: 4, same_node_first: false }),
        &addrs(&workers),
        dcfg,
    )
    .expect("connect");

    let slow = task_set().get("slow_square").unwrap().clone();
    let handles: Vec<_> = (1..=24i64)
        .map(|i| {
            let h = rt.literal(i);
            rt.submit(&slow, vec![ArgSpec::In(h)]).unwrap().returns[0]
        })
        .collect();
    std::thread::sleep(Duration::from_millis(40));
    // Sever the TCP connections but keep the server alive: the driver
    // should reconnect and resume, not write the node off.
    workers[0].drop_connections();

    for (i, h) in handles.iter().enumerate() {
        let v = rt.wait_on(h).expect("run resumes after reconnect");
        let x = (i + 1) as i64;
        assert_eq!(*v.downcast_ref::<i64>().unwrap(), x * x);
    }
    let snap = rt.metrics().snapshot();
    assert!(snap.counter("rnet_reconnects_total").unwrap_or(0) >= 1, "reconnect path exercised");
    assert_eq!(rt.stats().completed, 24);
}
