//! End-to-end tests of the rcompss runtime through its public API,
//! exercising both backends.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

use cluster::{Cluster, FailureInjector, NodeSpec};
use paratrace::TraceStats;
use rcompss::{
    wait_on_all, ArgSpec, Constraint, RetryPolicy, Runtime, RuntimeConfig, SubmitError, SubmitOpts,
    TaskError, Value, WaitError,
};

fn add_task(rt: &Runtime) -> rcompss::TaskDef {
    rt.register("add", Constraint::cpus(1), 1, |_, inputs| {
        let a: i64 = *inputs[0].downcast_ref::<i64>().unwrap();
        let b: i64 = *inputs[1].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(a + b)])
    })
}

#[test]
fn chain_of_dependent_tasks_threaded() {
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let add = add_task(&rt);
    let one = rt.literal(1i64);
    let mut acc = rt.literal(0i64);
    for _ in 0..10 {
        acc = rt.submit(&add, vec![ArgSpec::In(acc), ArgSpec::In(one)]).unwrap().returns[0];
    }
    let v = rt.wait_on(&acc).unwrap();
    assert_eq!(*v.downcast_ref::<i64>().unwrap(), 10);
    let stats = rt.stats();
    assert_eq!(stats.submitted, 10);
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.failed, 0);
}

#[test]
fn chain_of_dependent_tasks_simulated() {
    let rt = Runtime::simulated(RuntimeConfig::single_node(4));
    let add = add_task(&rt);
    let one = rt.literal(1i64);
    let mut acc = rt.literal(0i64);
    for _ in 0..10 {
        acc = rt
            .submit_with(
                &add,
                vec![ArgSpec::In(acc), ArgSpec::In(one)],
                SubmitOpts { sim_duration_us: Some(500) },
            )
            .unwrap()
            .returns[0];
    }
    let v = rt.wait_on(&acc).unwrap();
    assert_eq!(*v.downcast_ref::<i64>().unwrap(), 10);
    // 10 dependent tasks × 500µs must serialise: virtual time ≥ 5000.
    assert!(rt.now_us() >= 5_000, "virtual clock {}", rt.now_us());
}

#[test]
fn fan_out_fan_in_matches_sequential_result() {
    let rt = Runtime::threaded(RuntimeConfig::single_node(8));
    let square = rt.register("square", Constraint::cpus(1), 1, |_, inputs| {
        let x: i64 = *inputs[0].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(x * x)])
    });
    let sum = rt.register("sum", Constraint::cpus(1), 1, |_, inputs| {
        let total: i64 = inputs.iter().map(|v| *v.downcast_ref::<i64>().unwrap()).sum();
        Ok(vec![Value::new(total)])
    });
    let squares: Vec<_> = (1..=10i64)
        .map(|i| {
            let h = rt.literal(i);
            rt.submit(&square, vec![ArgSpec::In(h)]).unwrap().returns[0]
        })
        .collect();
    let args: Vec<ArgSpec> = squares.iter().map(|&h| ArgSpec::In(h)).collect();
    let total = rt.submit(&sum, args).unwrap().returns[0];
    let v = rt.wait_on(&total).unwrap();
    assert_eq!(*v.downcast_ref::<i64>().unwrap(), (1..=10i64).map(|i| i * i).sum::<i64>());
}

#[test]
fn inout_parameter_versions_serialise_updates() {
    // Ten INOUT increments of the same datum must execute in submission
    // order even on many cores — the runtime's sequential-equivalence
    // guarantee ("produce the same result as if executed sequentially").
    let rt = Runtime::threaded(RuntimeConfig::single_node(8));
    let append = rt.register("append", Constraint::cpus(1), 0, |_, inputs| {
        let mut v: Vec<i64> = inputs[0].downcast_ref::<Vec<i64>>().unwrap().clone();
        let next = v.len() as i64;
        v.push(next);
        Ok(vec![Value::new(v)])
    });
    let list = rt.literal(Vec::<i64>::new());
    for _ in 0..10 {
        rt.submit(&append, vec![ArgSpec::InOut(list)]).unwrap();
    }
    let v = rt.wait_on(&list).unwrap();
    assert_eq!(v.downcast_ref::<Vec<i64>>().unwrap(), &(0..10).collect::<Vec<i64>>());
}

#[test]
fn out_parameter_writes_without_reading() {
    let rt = Runtime::threaded(RuntimeConfig::single_node(2));
    let produce = rt.register("produce", Constraint::cpus(1), 0, |_, inputs| {
        assert!(inputs.is_empty(), "OUT args are not passed as inputs");
        Ok(vec![Value::new(String::from("made"))])
    });
    let slot = rt.declare();
    rt.submit(&produce, vec![ArgSpec::Out(slot)]).unwrap();
    let v = rt.wait_on(&slot).unwrap();
    assert_eq!(v.downcast_ref::<String>().unwrap(), "made");
}

#[test]
fn reading_undeclared_data_is_a_submit_error() {
    let rt = Runtime::threaded(RuntimeConfig::single_node(2));
    let add = add_task(&rt);
    let empty = rt.declare(); // never written, no producer
    let err = rt.submit(&add, vec![ArgSpec::In(empty), ArgSpec::In(empty)]).unwrap_err();
    assert!(matches!(err, SubmitError::UnwrittenData(_)));
}

#[test]
fn foreign_handle_is_rejected() {
    let rt1 = Runtime::threaded(RuntimeConfig::single_node(1));
    let rt2 = Runtime::threaded(RuntimeConfig::single_node(1));
    let h = rt2.literal(1i64);
    // handles are opaque ids; rt1 doesn't know this one (ids collide only
    // if both runtimes created them — use a fresh id beyond rt1's range)
    let _ = h;
    let foreign = {
        // create several in rt2 so the raw id exceeds anything rt1 knows
        let mut last = rt2.literal(0i64);
        for _ in 0..5 {
            last = rt2.literal(0i64);
        }
        last
    };
    let add = add_task(&rt1);
    let err = rt1.submit(&add, vec![ArgSpec::In(foreign), ArgSpec::In(foreign)]).unwrap_err();
    assert!(matches!(err, SubmitError::UnknownData(_) | SubmitError::UnwrittenData(_)));
}

#[test]
fn unsatisfiable_constraint_rejected_at_submit() {
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let big = rt.register("big", Constraint::cpus(5), 1, |_, _| Ok(vec![Value::new(0u8)]));
    let err = rt.submit(&big, vec![]).unwrap_err();
    assert!(matches!(err, SubmitError::Unsatisfiable(_)));

    let gpu =
        rt.register("gpu", Constraint::cpus(1).with_gpus(1), 1, |_, _| Ok(vec![Value::new(0u8)]));
    assert!(matches!(rt.submit(&gpu, vec![]), Err(SubmitError::Unsatisfiable(_))));
}

#[test]
fn tasks_run_in_parallel_on_threaded_backend() {
    // Observe real concurrency: 4 tasks that each wait until all 4 started.
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let started = Arc::new(AtomicUsize::new(0));
    let s = Arc::clone(&started);
    let rendezvous = rt.register("rendezvous", Constraint::cpus(1), 1, move |_, _| {
        s.fetch_add(1, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while s.load(Ordering::SeqCst) < 4 {
            if std::time::Instant::now() > deadline {
                return Err(TaskError::new("peers never arrived — no parallelism"));
            }
            std::thread::yield_now();
        }
        Ok(vec![Value::new(true)])
    });
    let outs: Vec<_> = (0..4).map(|_| rt.submit(&rendezvous, vec![]).unwrap().returns[0]).collect();
    let vals = wait_on_all(&rt, &outs).unwrap();
    assert_eq!(vals.len(), 4);
    assert!(vals.iter().all(|v| *v.downcast_ref::<bool>().unwrap()));
}

#[test]
fn resource_slots_bound_concurrency() {
    // 2 cores, tasks of 1 core each: concurrent executions must never
    // exceed 2. Tracked with an in-task high-water mark.
    let rt = Runtime::threaded(RuntimeConfig::single_node(2));
    let current = Arc::new(AtomicI64::new(0));
    let peak = Arc::new(AtomicI64::new(0));
    let (c, p) = (Arc::clone(&current), Arc::clone(&peak));
    let work = rt.register("work", Constraint::cpus(1), 1, move |_, _| {
        let now = c.fetch_add(1, Ordering::SeqCst) + 1;
        p.fetch_max(now, Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.fetch_sub(1, Ordering::SeqCst);
        Ok(vec![Value::new(())])
    });
    for _ in 0..8 {
        rt.submit(&work, vec![]).unwrap();
    }
    rt.barrier();
    assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
    assert!(peak.load(Ordering::SeqCst) >= 2, "should have reached the slot bound");
}

#[test]
fn affinity_core_sets_are_disjoint() {
    let rt = Runtime::threaded(RuntimeConfig::single_node(8));
    let seen = Arc::new(parking_lot_for_tests::Mutex::new(Vec::<(u32, Vec<u32>)>::new()));
    let s = Arc::clone(&seen);
    let work = rt.register("work", Constraint::cpus(2), 1, move |ctx, _| {
        assert_eq!(ctx.cores.len(), 2, "constraint grants exactly 2 cores");
        s.lock().push((ctx.node, ctx.cores.clone()));
        std::thread::sleep(std::time::Duration::from_millis(10));
        Ok(vec![Value::new(())])
    });
    for _ in 0..4 {
        rt.submit(&work, vec![]).unwrap();
    }
    rt.barrier();
    let seen = seen.lock();
    assert_eq!(seen.len(), 4);
    // cores granted to simultaneously-running tasks are disjoint; here all
    // 4 run together on 8 cores, so all 8 granted ids are distinct.
    let mut all: Vec<u32> = seen.iter().flat_map(|(_, c)| c.clone()).collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), 8, "granted cores overlap: {seen:?}");
}

// tiny shim so the test above can use parking_lot without a dev-dependency
// on the crate root name
mod parking_lot_for_tests {
    pub use parking_lot::Mutex;
}

#[test]
fn failed_task_is_retried_and_recovers() {
    // Fail attempts 1 and 2 of task 1: the paper's escalation retries on
    // the same node, then elsewhere; attempt 3 succeeds.
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(2, NodeSpec::new("n", 4, vec![], 8)))
        .with_failures(FailureInjector::none().with_task_failure(1, 1).with_task_failure(1, 2));
    let rt = Runtime::threaded(cfg);
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    let flaky = rt.register("flaky", Constraint::cpus(1), 1, move |ctx, _| {
        a.fetch_add(1, Ordering::SeqCst);
        Ok(vec![Value::new(ctx.attempt)])
    });
    let out = rt.submit(&flaky, vec![]).unwrap().returns[0];
    let v = rt.wait_on(&out).unwrap();
    assert_eq!(*v.downcast_ref::<u32>().unwrap(), 3, "succeeded on 3rd attempt");
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
    let stats = rt.stats();
    assert_eq!(stats.failed_attempts, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn task_error_exhausts_retries_and_poisons_dependents() {
    let cfg = RuntimeConfig::single_node(2)
        .with_retry(RetryPolicy { max_attempts: 2, same_node_first: true });
    let rt = Runtime::threaded(cfg);
    let boom = rt.register("boom", Constraint::cpus(1), 1, |_, _| {
        Err::<Vec<Value>, _>(TaskError::new("always fails"))
    });
    let double = rt.register("double", Constraint::cpus(1), 1, |_, inputs| {
        let x: i64 = *inputs[0].downcast_ref::<i64>().unwrap();
        Ok(vec![Value::new(x * 2)])
    });
    let bad = rt.submit(&boom, vec![]).unwrap().returns[0];
    let dependent = rt.submit(&double, vec![ArgSpec::In(bad)]).unwrap().returns[0];
    assert!(matches!(rt.wait_on(&bad), Err(WaitError::ProducerFailed(_))));
    assert!(matches!(rt.wait_on(&dependent), Err(WaitError::ProducerFailed(_))));
    let stats = rt.stats();
    assert_eq!(stats.failed, 2, "task + dependent both permanently failed");
    assert_eq!(rt.failed_tasks().len(), 2);
}

#[test]
fn panicking_task_is_caught_and_counted_as_failure() {
    let cfg = RuntimeConfig::single_node(2).with_retry(RetryPolicy::none());
    let rt = Runtime::threaded(cfg);
    let bad = rt.register("panics", Constraint::cpus(1), 1, |_, _| panic!("deliberate"));
    let out = rt.submit(&bad, vec![]).unwrap().returns[0];
    assert!(matches!(rt.wait_on(&out), Err(WaitError::ProducerFailed(_))));
    // and the runtime is still usable
    let add = add_task(&rt);
    let a = rt.literal(20i64);
    let b = rt.literal(22i64);
    let ok = rt.submit(&add, vec![ArgSpec::In(a), ArgSpec::In(b)]).unwrap().returns[0];
    assert_eq!(*rt.wait_on(&ok).unwrap().downcast_ref::<i64>().unwrap(), 42);
}

#[test]
fn independent_tasks_unaffected_by_failures() {
    // "The failure of task does not affect the other tasks unless there
    // are some dependencies."
    let cfg = RuntimeConfig::single_node(4)
        .with_retry(RetryPolicy::none())
        .with_failures(FailureInjector::none().with_task_failure(3, 1));
    let rt = Runtime::threaded(cfg);
    let ok = rt.register("ok", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(1i64)]));
    let outs: Vec<_> = (0..6).map(|_| rt.submit(&ok, vec![]).unwrap().returns[0]).collect();
    rt.barrier();
    let mut good = 0;
    let mut bad = 0;
    for h in &outs {
        match rt.wait_on(h) {
            Ok(_) => good += 1,
            Err(WaitError::ProducerFailed(_)) => bad += 1,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert_eq!((good, bad), (5, 1));
}

#[test]
fn simulated_node_failure_moves_tasks() {
    // Two whole-node tasks; node 0 dies mid-run; its task restarts on
    // node 1 after the surviving task finishes.
    let cluster = Cluster::homogeneous(2, NodeSpec::new("n", 4, vec![], 8));
    let cfg = RuntimeConfig::on_cluster(cluster)
        .with_failures(FailureInjector::none().with_node_failure(5_000, 0));
    let rt = Runtime::simulated(cfg);
    let work = rt.register("work", Constraint::cpus(4), 1, |ctx, _| Ok(vec![Value::new(ctx.node)]));
    let outs: Vec<_> = (0..2)
        .map(|_| {
            rt.submit_with(&work, vec![], SubmitOpts { sim_duration_us: Some(10_000) })
                .unwrap()
                .returns[0]
        })
        .collect();
    rt.barrier();
    let nodes: Vec<u32> =
        outs.iter().map(|h| *rt.wait_on(h).unwrap().downcast_ref::<u32>().unwrap()).collect();
    assert_eq!(nodes, vec![1, 1], "both ultimately completed on the surviving node");
    assert!(rt.now_us() >= 20_000, "restart serialised on one node: {}", rt.now_us());
    assert_eq!(rt.stats().failed_attempts, 1);
}

#[test]
fn sim_twenty_seven_tasks_on_reserved_node_matches_figure5_shape() {
    // Figure 5: 48-core node, worker reserves 24 cores, 27 single-core
    // tasks → 24 start at t=0, 3 wait for freed cores.
    let cfg =
        RuntimeConfig::on_cluster(Cluster::homogeneous(1, NodeSpec::marenostrum4())).reserve(0, 24);
    let rt = Runtime::simulated(cfg);
    let exp = rt.register("experiment", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
    for i in 0..27u64 {
        // heterogeneous durations like the epochs axis
        let d = 1_000 + (i % 3) * 1_000;
        rt.submit_with(&exp, vec![], SubmitOpts { sim_duration_us: Some(d) }).unwrap();
    }
    rt.barrier();
    let records = rt.trace();
    let stats = TraceStats::compute(&records);
    assert_eq!(stats.tasks_run, 27);
    assert_eq!(stats.peak_parallelism, 24, "24 free cores → 24-way parallel");
    assert_eq!(TraceStats::tasks_started_within(&records, 0), 24);
    // no task may run on a reserved core (ids 0..24)
    for r in &records {
        if r.running_task().is_some() {
            assert!(r.core().core >= 24, "task on reserved core: {r:?}");
        }
    }
}

#[test]
fn sim_is_deterministic() {
    let run = || {
        let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(3, NodeSpec::marenostrum4()))
            .with_failures(FailureInjector::random(7, 0.1));
        let rt = Runtime::simulated(cfg);
        let t = rt.register("t", Constraint::cpus(8), 1, |_, _| Ok(vec![Value::new(())]));
        for i in 0..40u64 {
            rt.submit_with(&t, vec![], SubmitOpts { sim_duration_us: Some(100 + i * 17) }).unwrap();
        }
        rt.barrier();
        (rt.now_us(), rt.stats(), rt.trace().len())
    };
    assert_eq!(run(), run());
}

#[test]
fn trace_disabled_by_flag() {
    let cfg = RuntimeConfig::single_node(2).with_tracing(false);
    let rt = Runtime::threaded(cfg);
    assert!(!rt.tracing_enabled());
    let t = rt.register("t", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
    rt.submit(&t, vec![]).unwrap();
    rt.barrier();
    assert!(rt.trace().is_empty());
}

#[test]
fn dot_export_shows_hpo_application_structure() {
    // The paper's Figure 3 graph: experiments → per-experiment
    // visualisation → final plot, with dNvM edge labels and a sync node.
    let rt = Runtime::simulated(RuntimeConfig::single_node(8));
    let experiment = rt
        .register("graph.experiment", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(0.9f64)]));
    let visualisation = rt.register("graph.visualisation", Constraint::cpus(1), 1, |_, inputs| {
        Ok(vec![inputs[0].clone()])
    });
    let plot = rt.register("graph.plot", Constraint::cpus(1), 1, |_, inputs| {
        Ok(vec![Value::new(inputs.len())])
    });
    let mut vis_outs = Vec::new();
    for _ in 0..10 {
        let e = rt.submit(&experiment, vec![]).unwrap().returns[0];
        let v = rt.submit(&visualisation, vec![ArgSpec::In(e)]).unwrap().returns[0];
        vis_outs.push(v);
    }
    let args: Vec<ArgSpec> = vis_outs.iter().map(|&h| ArgSpec::In(h)).collect();
    let p = rt.submit(&plot, args).unwrap().returns[0];
    let n = rt.wait_on(&p).unwrap();
    assert_eq!(*n.downcast_ref::<usize>().unwrap(), 10);
    let dot = rt.dot();
    assert!(dot.contains("graph.experiment"));
    assert!(dot.contains("graph.visualisation"));
    assert!(dot.contains("graph.plot"));
    assert!(dot.contains("sync"));
    assert!(dot.contains("v1"), "versioned edge labels present: {dot}");
}

#[test]
fn barrier_on_empty_runtime_returns_immediately() {
    let rt = Runtime::threaded(RuntimeConfig::single_node(1));
    rt.barrier();
    let rt2 = Runtime::simulated(RuntimeConfig::single_node(1));
    rt2.barrier();
    assert_eq!(rt2.now_us(), 0);
}

#[test]
fn gpu_constraint_grants_gpu_ids_in_sim() {
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(1, NodeSpec::cte_power9()));
    let rt = Runtime::simulated(cfg);
    let train = rt.register("train", Constraint::cpus(10).with_gpus(1), 1, |ctx, _| {
        Ok(vec![Value::new(ctx.gpus.clone())])
    });
    let outs: Vec<_> = (0..6)
        .map(|_| {
            rt.submit_with(&train, vec![], SubmitOpts { sim_duration_us: Some(1_000) })
                .unwrap()
                .returns[0]
        })
        .collect();
    rt.barrier();
    for h in &outs {
        let gpus = rt.wait_on(h).unwrap();
        assert_eq!(gpus.downcast_ref::<Vec<u32>>().unwrap().len(), 1);
    }
    // only 4 GPUs → 6 tasks need two waves of ≤4
    assert!(rt.now_us() >= 2_000);
}

#[test]
fn wait_on_literal_returns_without_tasks() {
    let rt = Runtime::threaded(RuntimeConfig::single_node(1));
    let h = rt.literal(String::from("direct"));
    assert_eq!(rt.wait_on(&h).unwrap().downcast_ref::<String>().unwrap(), "direct");
}

#[test]
fn implement_decorator_picks_feasible_variant() {
    // Primary implementation wants a GPU; the @implement alternative is
    // CPU-only. On a GPU node the primary runs; once GPUs are exhausted the
    // scheduler falls back to the alternative — "the most appropriate task
    // considering the resources".
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(1, NodeSpec::cte_power9()));
    let rt = Runtime::simulated(cfg);
    let train = rt
        .register("train", Constraint::cpus(4).with_gpus(1), 1, |ctx, _| {
            Ok(vec![Value::new(format!("gpu:{}", ctx.gpus.len()))])
        })
        .with_implementation(Constraint::cpus(4), |ctx, _| {
            Ok(vec![Value::new(format!("cpu:{}", ctx.gpus.len()))])
        });
    let outs: Vec<_> = (0..8)
        .map(|_| {
            rt.submit_with(&train, vec![], SubmitOpts { sim_duration_us: Some(1_000) })
                .unwrap()
                .returns[0]
        })
        .collect();
    rt.barrier();
    let kinds: Vec<String> = outs
        .iter()
        .map(|h| rt.wait_on(h).unwrap().downcast_ref::<String>().unwrap().clone())
        .collect();
    let gpu_runs = kinds.iter().filter(|k| k.as_str() == "gpu:1").count();
    let cpu_runs = kinds.iter().filter(|k| k.as_str() == "cpu:0").count();
    assert_eq!(gpu_runs, 4, "4 GPUs → 4 tasks on the GPU implementation: {kinds:?}");
    assert_eq!(cpu_runs, 4, "overflow falls back to the CPU implementation");
    // everything ran in one wave: enough CPU cores for all 8
    assert!(rt.now_us() <= 1_100, "one parallel wave, took {}", rt.now_us());
}

#[test]
fn implement_makes_otherwise_unsatisfiable_task_admissible() {
    // Primary wants a GPU on a CPU-only cluster: alone it would be
    // rejected at submission; an alternative CPU implementation makes it
    // admissible and is the one that runs.
    let rt = Runtime::threaded(RuntimeConfig::single_node(4));
    let gpu_only =
        rt.register("t", Constraint::cpus(1).with_gpus(1), 1, |_, _| Ok(vec![Value::new("gpu")]));
    assert!(matches!(rt.submit(&gpu_only, vec![]), Err(SubmitError::Unsatisfiable(_))));

    let with_fallback =
        gpu_only.with_implementation(Constraint::cpus(1), |_, _| Ok(vec![Value::new("cpu")]));
    let out = rt.submit(&with_fallback, vec![]).unwrap().returns[0];
    let v = rt.wait_on(&out).unwrap();
    assert_eq!(*v.downcast_ref::<&str>().unwrap(), "cpu");
}

#[test]
fn implement_variants_retry_like_the_primary() {
    // Failures of whichever implementation ran still follow the retry
    // policy.
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(2, NodeSpec::new("n", 2, vec![], 8)))
        .with_failures(FailureInjector::none().with_task_failure(1, 1));
    let rt = Runtime::simulated(cfg);
    let t = rt
        .register("t", Constraint::cpus(2), 1, |ctx, _| Ok(vec![Value::new(ctx.attempt)]))
        .with_implementation(Constraint::cpus(1), |ctx, _| Ok(vec![Value::new(ctx.attempt)]));
    let out =
        rt.submit_with(&t, vec![], SubmitOpts { sim_duration_us: Some(100) }).unwrap().returns[0];
    let v = rt.wait_on(&out).unwrap();
    assert_eq!(*v.downcast_ref::<u32>().unwrap(), 2, "second attempt succeeded");
    assert_eq!(rt.stats().failed_attempts, 1);
}

#[test]
fn multinode_task_spans_nodes_and_blocks_them() {
    // @multinode: one task takes 2 whole 8-core nodes; a second such task
    // must wait on a 3-node cluster.
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(3, NodeSpec::new("n", 8, vec![], 16)));
    let rt = Runtime::simulated(cfg);
    let mpi = rt.register("mpi_train", Constraint::multinode(2, 8), 1, |ctx, _| {
        assert_eq!(ctx.cores.len(), 8, "8 cores on the primary node");
        assert_eq!(ctx.peer_nodes.len(), 1, "one peer node");
        Ok(vec![Value::new((ctx.node, ctx.peer_nodes.clone()))])
    });
    let outs: Vec<_> = (0..2)
        .map(|_| {
            rt.submit_with(&mpi, vec![], SubmitOpts { sim_duration_us: Some(1_000) })
                .unwrap()
                .returns[0]
        })
        .collect();
    rt.barrier();
    for h in &outs {
        let v = rt.wait_on(h).unwrap();
        let (node, peers) = v.downcast_ref::<(u32, Vec<u32>)>().unwrap();
        assert!(!peers.contains(node), "peer differs from primary");
    }
    // 3 nodes, each task needs 2 ⇒ the tasks serialise: makespan ≥ 2ms.
    assert!(rt.now_us() >= 2_000, "multinode tasks serialised: {}", rt.now_us());
    // trace shows both nodes of each allocation busy
    let stats = TraceStats::compute(&rt.trace());
    assert_eq!(stats.tasks_run, 2);
    assert_eq!(stats.peak_busy_cores, 16, "2 nodes × 8 cores");
    assert_eq!(stats.peak_parallelism, 1, "one task instance at a time");
}

#[test]
fn multinode_unsatisfiable_when_too_few_nodes() {
    let rt = Runtime::simulated(RuntimeConfig::on_cluster(Cluster::homogeneous(
        2,
        NodeSpec::new("n", 4, vec![], 8),
    )));
    let mpi = rt.register("mpi", Constraint::multinode(3, 4), 1, |_, _| Ok(vec![Value::new(())]));
    assert!(matches!(rt.submit(&mpi, vec![]), Err(SubmitError::Unsatisfiable(_))));
    // 2 nodes is fine
    let ok = rt.register("mpi2", Constraint::multinode(2, 4), 1, |_, _| Ok(vec![Value::new(())]));
    assert!(rt.submit(&ok, vec![]).is_ok());
    rt.barrier();
}

#[test]
fn multinode_coexists_with_single_node_tasks() {
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(3, NodeSpec::new("n", 4, vec![], 8)));
    let rt = Runtime::simulated(cfg);
    let mpi = rt.register("mpi", Constraint::multinode(2, 4), 1, |_, _| Ok(vec![Value::new(())]));
    let small =
        rt.register("small", Constraint::cpus(1), 1, |ctx, _| Ok(vec![Value::new(ctx.node)]));
    rt.submit_with(&mpi, vec![], SubmitOpts { sim_duration_us: Some(5_000) }).unwrap();
    let outs: Vec<_> = (0..4)
        .map(|_| {
            rt.submit_with(&small, vec![], SubmitOpts { sim_duration_us: Some(1_000) })
                .unwrap()
                .returns[0]
        })
        .collect();
    rt.barrier();
    // all small tasks fit on the remaining node concurrently with the MPI job
    assert!(rt.now_us() <= 5_000, "third node hosts the small tasks: {}", rt.now_us());
    for h in &outs {
        let node = *rt.wait_on(h).unwrap().downcast_ref::<u32>().unwrap();
        assert_eq!(node, 2, "small tasks landed on the free node");
    }
}

#[test]
fn node_failure_kills_multinode_task_touching_it() {
    let cfg = RuntimeConfig::on_cluster(Cluster::homogeneous(4, NodeSpec::new("n", 4, vec![], 8)))
        .with_failures(FailureInjector::none().with_node_failure(2_000, 1));
    let rt = Runtime::simulated(cfg);
    let mpi = rt.register("mpi", Constraint::multinode(2, 4), 1, |ctx, _| {
        Ok(vec![Value::new((ctx.node, ctx.peer_nodes.clone()))])
    });
    // first submission grabs nodes 0+1; the failure of node 1 at t=2ms
    // kills it mid-flight and it restarts on surviving nodes.
    let out =
        rt.submit_with(&mpi, vec![], SubmitOpts { sim_duration_us: Some(10_000) }).unwrap().returns
            [0];
    rt.barrier();
    let v = rt.wait_on(&out).unwrap();
    let (node, peers) = v.downcast_ref::<(u32, Vec<u32>)>().unwrap();
    assert_ne!(*node, 1, "dead node is not the primary");
    assert!(!peers.contains(&1), "dead node is not a peer");
    assert_eq!(rt.stats().failed_attempts, 1);
    assert_eq!(rt.stats().completed, 1);
}

#[test]
fn priority_hint_jumps_the_resource_queue() {
    // One core; 3 ordinary tasks queue up, then a priority=True task is
    // submitted. When the core frees, the priority task runs next even
    // though it was submitted last.
    let rt = Runtime::simulated(RuntimeConfig::single_node(1));
    let order = Arc::new(parking_lot_for_tests::Mutex::new(Vec::<String>::new()));
    let mk = |name: &str, order: &Arc<parking_lot_for_tests::Mutex<Vec<String>>>| {
        let o = Arc::clone(order);
        let n = name.to_string();
        rt.register(name, Constraint::cpus(1), 1, move |_, _| {
            o.lock().push(n.clone());
            Ok(vec![Value::new(())])
        })
    };
    let normal = mk("normal", &order);
    let urgent = mk("urgent", &order).with_priority();
    for _ in 0..3 {
        rt.submit_with(&normal, vec![], SubmitOpts { sim_duration_us: Some(100) }).unwrap();
    }
    rt.submit_with(&urgent, vec![], SubmitOpts { sim_duration_us: Some(100) }).unwrap();
    rt.barrier();
    let order = order.lock();
    assert_eq!(order.len(), 4);
    // The simulated backend dispatches lazily at the first synchronisation,
    // so every entry is in the ready queue when scheduling starts and the
    // priority task wins the very first slot.
    assert_eq!(order[0], "urgent", "priority task skips ahead of earlier submissions");
    assert!(order[1..].iter().all(|n| n == "normal"));
}

#[test]
fn staged_cluster_pays_transfer_time_and_uses_locality() {
    // No PFS: a consumer reading a large producer output should (a) pay a
    // visible transfer if placed remotely, and (b) prefer the producer's
    // node when free (locality).
    let cluster = Cluster::homogeneous(2, NodeSpec::new("n", 1, vec![], 8))
        .without_pfs()
        .with_interconnect(cluster::Interconnect::ethernet());
    let rt = Runtime::simulated(RuntimeConfig::on_cluster(cluster));
    let produce =
        rt.register("produce", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(vec![0u8; 4])]));
    let consume =
        rt.register("consume", Constraint::cpus(1), 1, |ctx, _| Ok(vec![Value::new(ctx.node)]));
    let big = rt
        .submit_with(&produce, vec![], SubmitOpts { sim_duration_us: Some(100) })
        .unwrap()
        .returns[0];
    rt.wait_on(&big).unwrap();
    // declare the output as 120 MB for the transfer model
    rt.set_data_bytes(big, 120_000_000);
    let c = rt
        .submit_with(&consume, vec![ArgSpec::In(big)], SubmitOpts { sim_duration_us: Some(100) })
        .unwrap()
        .returns[0];
    let node = *rt.wait_on(&c).unwrap().downcast_ref::<u32>().unwrap();
    assert_eq!(node, 0, "locality: consumer follows the data");
    // Now force a remote consumer by occupying node 0 with a long task.
    let blocker = rt.register("block", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
    let before = rt.now_us();
    rt.submit_with(&blocker, vec![], SubmitOpts { sim_duration_us: Some(10_000_000) }).unwrap();
    let c2 = rt
        .submit_with(&consume, vec![ArgSpec::In(big)], SubmitOpts { sim_duration_us: Some(100) })
        .unwrap()
        .returns[0];
    let node2 = *rt.wait_on(&c2).unwrap().downcast_ref::<u32>().unwrap();
    assert_eq!(node2, 1, "node 0 busy ⇒ remote placement");
    // 120 MB at 1.2 GB/s = 100 ms of staging; 1000× the task itself.
    let elapsed = rt.now_us() - before;
    assert!(elapsed >= 100_000, "staging dominates: {elapsed}");
    // and the trace shows a Transferring interval
    let transferred = rt.trace().iter().any(|r| {
        matches!(
            r,
            paratrace::Record::State { state: paratrace::StateKind::Transferring { .. }, .. }
        )
    });
    assert!(transferred, "transfer recorded in the trace");
}

#[test]
fn pfs_cluster_needs_no_staging_between_nodes() {
    let cluster = Cluster::homogeneous(2, NodeSpec::new("n", 1, vec![], 8)); // pfs = true
    let rt = Runtime::simulated(RuntimeConfig::on_cluster(cluster));
    let produce = rt.register("p", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(1u8)]));
    let consume = rt.register("c", Constraint::cpus(1), 1, |_, i| Ok(vec![i[0].clone()]));
    let h = rt
        .submit_with(&produce, vec![], SubmitOpts { sim_duration_us: Some(100) })
        .unwrap()
        .returns[0];
    rt.set_data_bytes(h, 120_000_000);
    let out = rt
        .submit_with(&consume, vec![ArgSpec::In(h)], SubmitOpts { sim_duration_us: Some(100) })
        .unwrap()
        .returns[0];
    rt.wait_on(&out).unwrap();
    // PFS read of 120 MB at 8 GB/s = 15 ms ≪ the 100 s staged copy above.
    assert!(rt.now_us() < 16_000 + 200, "PFS read is cheap: {}", rt.now_us());
}

#[test]
fn worker_shutdown_is_signal_driven_and_prompt() {
    // Workers park on their shard condvars with no poll timeout; shutdown
    // signals each shard once and joins. With the old 50 ms polling loop a
    // 64-worker pool took up to one poll period to notice the flag — the
    // signal-driven pool must wind down in single-digit milliseconds even
    // with every worker parked idle.
    let rt = Runtime::threaded(RuntimeConfig::single_node(64));
    let noop = rt.register("noop", Constraint::cpus(1), 1, |_, _| Ok(vec![Value::new(())]));
    let h = rt.submit(&noop, vec![]).unwrap().returns[0];
    rt.wait_on(&h).unwrap();
    let t0 = std::time::Instant::now();
    drop(rt);
    let took = t0.elapsed();
    assert!(took.as_millis() < 10, "shutdown of 64 idle workers took {took:?}");
}
