//! Stress tests for the threaded backend's sharded run queues: thousands of
//! tiny tasks with randomized IN/INOUT dependency chains, checked against a
//! sequential replay of the same submissions. Dataflow semantics make the
//! replay exact: whatever order the workers interleave in, each INOUT
//! serialises on its slot's version chain and each IN reads the version
//! current at submission, so the final slot values are fully determined at
//! submission time.

use rand::{Rng, SeedableRng};
use rcompss::{ArgSpec, Constraint, Runtime, RuntimeConfig, Value};

/// Submit `n` tiny tasks over `slots` INOUT accumulators with a seeded
/// random dependency pattern; return the runtime's final slot values next
/// to the sequential model's.
fn run_random_chains(workers: u32, n: u64, slots: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let rt = Runtime::threaded(
        RuntimeConfig::single_node(workers).with_tracing(false).with_metrics(true),
    );
    let step = rt.register("step", Constraint::cpus(1), 0, |_, inputs| {
        let acc: u64 = *inputs[0].downcast_ref::<u64>().unwrap();
        let mixed = inputs[1..]
            .iter()
            .map(|v| *v.downcast_ref::<u64>().unwrap())
            .fold(acc, |a, b| a.wrapping_mul(31).wrapping_add(b));
        Ok(vec![Value::new(mixed.wrapping_add(1))])
    });

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let handles: Vec<_> = (0..slots).map(|i| rt.literal(i as u64)).collect();
    let mut model: Vec<u64> = (0..slots as u64).collect();

    for _ in 0..n {
        let target = rng.gen_range(0..slots);
        // Up to two extra IN reads from *other* slots (their *current*
        // version at submission — the model mirrors that timing). Reading
        // the slot the task itself InOut-writes would alias the write
        // version and self-depend; argument aliasing is out of scope here.
        let extra: Vec<usize> = (0..rng.gen_range(0..3usize))
            .map(|_| rng.gen_range(0..slots))
            .filter(|&s| s != target)
            .collect();
        let mut args = vec![ArgSpec::InOut(handles[target])];
        args.extend(extra.iter().map(|&s| ArgSpec::In(handles[s])));
        rt.submit(&step, args).expect("submit");

        let mixed = extra
            .iter()
            .map(|&s| model[s])
            .fold(model[target], |a, b| a.wrapping_mul(31).wrapping_add(b));
        model[target] = mixed.wrapping_add(1);
    }
    rt.barrier();

    let stats = rt.stats();
    assert_eq!(stats.submitted, n, "workers={workers}");
    assert_eq!(stats.completed, n, "workers={workers}: all tasks must complete");
    assert_eq!(stats.failed, 0, "workers={workers}");
    let snap = rt.metrics().snapshot();
    assert_eq!(snap.counter("rcompss_tasks_submitted_total"), Some(n));
    assert_eq!(snap.counter("rcompss_tasks_completed_total"), Some(n));
    assert_eq!(snap.counter("rcompss_tasks_failed_total"), Some(0));
    // Every dispatched task must have been completed (no retries here).
    assert_eq!(snap.counter("rcompss_tasks_dispatched_total"), Some(n));

    let finals =
        handles.iter().map(|h| *rt.wait_on(h).unwrap().downcast_ref::<u64>().unwrap()).collect();
    (finals, model)
}

#[test]
fn ten_thousand_random_chains_match_sequential_replay() {
    // 10k tasks across pool sizes spanning serial, few-shard, many-shard.
    for (workers, seed) in [(1u32, 7u64), (4, 11), (16, 13)] {
        let (got, want) = run_random_chains(workers, 10_000, 24, seed);
        assert_eq!(got, want, "workers={workers}: final slot values diverge");
    }
}

#[test]
fn deep_single_slot_chain_is_fully_serialised() {
    // Worst case for wakeup latency: every task depends on the previous
    // one, so the pool can never run two at once and every completion must
    // promptly wake a worker for the next link.
    let (got, want) = run_random_chains(16, 4_000, 1, 3);
    assert_eq!(got, want);
}
