//! Property test for transfer-aware placement: driving `pop_placeable`
//! with `DataRegistry::transfer_score` (fewest bytes to move, then most
//! inputs already resident) must pop the exact same `(task, placement)`
//! sequence from the indexed ready-set as from the pre-index linear scan
//! (`pop_placeable_reference`), across random residency maps, declared
//! sizes, and read-sets. The distributed backend's placement decisions —
//! and therefore its bytes-on-wire accounting — rest on this equivalence.

use cluster::{Cluster, NodeSpec};
use proptest::prelude::*;
use rcompss::data::DataRegistry;
use rcompss::scheduler::{Placement, ReadyEntry, Scheduler};
use rcompss::{Constraint, DataVersion, TaskId};

const NODES: u32 = 3;

/// One data item: declared size plus which nodes already hold it.
#[derive(Debug, Clone)]
struct ItemSpec {
    bytes: u64,
    resident_on: Vec<u32>,
}

fn item_strategy() -> impl Strategy<Value = ItemSpec> {
    (
        // Sizes spanning "free" to "dominates the score", with ties likely.
        prop_oneof![Just(0u64), Just(1024), Just(65536), 1u64..1_000_000],
        proptest::collection::vec(0..NODES, 0..=3),
    )
        .prop_map(|(bytes, resident_on)| ItemSpec { bytes, resident_on })
}

/// A ready task: CPU demand plus which data items it reads.
#[derive(Debug, Clone)]
struct TaskSpec {
    cpus: u32,
    reads: Vec<usize>,
}

fn task_strategy(items: usize) -> impl Strategy<Value = TaskSpec> {
    (1u32..=20, proptest::collection::vec(0..items, 0..=4))
        .prop_map(|(cpus, reads)| TaskSpec { cpus, reads })
}

fn sched() -> Scheduler {
    Scheduler::new(&Cluster::homogeneous(NODES as usize, NodeSpec::cte_power9()), &[])
}

proptest! {
    #[test]
    fn transfer_aware_pop_equals_linear_scan(
        items in proptest::collection::vec(item_strategy(), 1..12),
        tasks in proptest::collection::vec(task_strategy(12), 1..40),
        steps in proptest::collection::vec(any::<u8>(), 1..160),
    ) {
        // Registry with random declared sizes and residency claims.
        let mut reg = DataRegistry::new(1024);
        let versions: Vec<DataVersion> = items
            .iter()
            .map(|spec| {
                let h = reg.declare();
                reg.set_bytes(h, spec.bytes);
                DataVersion { handle: h, version: 1 }
            })
            .collect();
        for (spec, &v) in items.iter().zip(&versions) {
            for &n in &spec.resident_on {
                reg.add_location(v, n);
            }
        }
        // Per-task read-sets (indices clamp into whatever was generated).
        let reads: Vec<Vec<DataVersion>> = tasks
            .iter()
            .map(|t| t.reads.iter().map(|&i| versions[i % versions.len()]).collect())
            .collect();

        let mut indexed = sched();
        let mut linear = sched();
        for (seq, t) in tasks.iter().enumerate() {
            let entry = ReadyEntry {
                task: TaskId(seq as u64 + 1),
                constraint: Constraint::cpus(t.cpus),
                alternatives: Vec::new(),
                priority: false,
                seq: seq as u64,
                prefer_node: None,
                exclude_node: None,
            };
            indexed.push_ready(entry.clone());
            linear.push_ready(entry);
        }

        let score = |t: TaskId, n: u32| reg.transfer_score(&reads[(t.0 - 1) as usize], n);
        let mut running: Vec<(ReadyEntry, Placement)> = Vec::new();
        for (i, &step) in steps.iter().enumerate() {
            let a = indexed.pop_placeable(score);
            let b = linear.pop_placeable_reference(score);
            match (&a, &b) {
                (Some((ea, pa)), Some((eb, pb))) => {
                    prop_assert_eq!(ea.task, eb.task, "step {}", i);
                    prop_assert_eq!(pa, pb, "step {}", i);
                }
                (None, None) => {}
                _ => prop_assert!(false, "step {}: indexed {:?} vs linear {:?}", i, a, b),
            }
            if let Some(p) = a {
                running.push(p);
            }
            if !running.is_empty() && (b.is_none() || step % 3 == 0) {
                let (e, p) = running.remove(step as usize % running.len());
                let c = e.variant_constraints()[p.variant];
                indexed.release(&p, &c);
                linear.release(&p, &c);
            }
            if indexed.ready_len() == 0 && running.is_empty() {
                break;
            }
        }
    }

    /// The score itself behaves: a node holding every input is never beaten
    /// by a node holding none of them (for non-trivial input sizes).
    #[test]
    fn full_residency_never_loses_to_cold_node(
        sizes in proptest::collection::vec(1u64..1_000_000, 1..6),
    ) {
        let mut reg = DataRegistry::new(1024);
        let versions: Vec<DataVersion> = sizes
            .iter()
            .map(|&b| {
                let h = reg.declare();
                reg.set_bytes(h, b);
                DataVersion { handle: h, version: 1 }
            })
            .collect();
        for &v in &versions {
            reg.add_location(v, 0);
        }
        let warm = reg.transfer_score(&versions, 0);
        let cold = reg.transfer_score(&versions, 1);
        prop_assert!(warm > cold, "warm {warm:?} must outrank cold {cold:?}");
    }
}
