//! Property test: the indexed ready-set pops the exact same `(task,
//! placement)` sequence as the pre-index linear scan
//! (`Scheduler::pop_placeable_reference`), across random entry mixes
//! (priorities, constraint classes, exclusions, preferences, multi-variant
//! implementations) and random pop/release interleavings. The sim backend's
//! bit-identical makespans rest on this equivalence.

use cluster::{Cluster, NodeSpec};
use proptest::prelude::*;
use rcompss::scheduler::{Placement, ReadyEntry, Scheduler};
use rcompss::{Constraint, TaskId};

#[derive(Debug, Clone)]
struct EntrySpec {
    cpus: u32,
    gpus: u32,
    priority: bool,
    exclude: Option<u32>,
    prefer: Option<u32>,
    alt_cpus: Option<u32>,
}

fn entry_strategy() -> impl Strategy<Value = EntrySpec> {
    (
        1u32..=20,
        0u32..=2,
        any::<bool>(),
        proptest::option::of(0u32..3),
        proptest::option::of(0u32..3),
        proptest::option::of(1u32..=4),
    )
        .prop_map(|(cpus, gpus, priority, exclude, prefer, alt_cpus)| EntrySpec {
            cpus,
            gpus,
            priority,
            exclude,
            prefer,
            alt_cpus,
        })
}

fn build(spec: &EntrySpec, seq: u64) -> ReadyEntry {
    ReadyEntry {
        task: TaskId(seq + 1),
        constraint: Constraint::cpus(spec.cpus).with_gpus(spec.gpus),
        alternatives: spec.alt_cpus.map(Constraint::cpus).into_iter().collect(),
        priority: spec.priority,
        seq,
        prefer_node: spec.prefer,
        exclude_node: spec.exclude,
    }
}

fn sched() -> Scheduler {
    // 3 × POWER9 nodes: 16 allocatable cores and 4 GPUs each, so GPU and
    // CPU exhaustion both happen within a few dozen entries.
    Scheduler::new(&Cluster::homogeneous(3, NodeSpec::cte_power9()), &[])
}

proptest! {
    #[test]
    fn indexed_pop_sequence_equals_linear_scan(
        specs in proptest::collection::vec(entry_strategy(), 1..60),
        // One byte per step drives the pop/release interleaving.
        steps in proptest::collection::vec(any::<u8>(), 1..250),
    ) {
        let mut indexed = sched();
        let mut linear = sched();
        for (seq, spec) in specs.iter().enumerate() {
            indexed.push_ready(build(spec, seq as u64));
            linear.push_ready(build(spec, seq as u64));
        }
        let mut running: Vec<(ReadyEntry, Placement)> = Vec::new();
        for (i, &step) in steps.iter().enumerate() {
            let loc = move |t: TaskId, n: u32| ((t.0 + n as u64 + step as u64) % 7) as usize;
            let a = indexed.pop_placeable(loc);
            let b = linear.pop_placeable_reference(loc);
            match (&a, &b) {
                (Some((ea, pa)), Some((eb, pb))) => {
                    prop_assert_eq!(ea.task, eb.task, "step {}", i);
                    prop_assert_eq!(pa, pb, "step {}", i);
                }
                (None, None) => {}
                _ => prop_assert!(false, "step {}: indexed {:?} vs linear {:?}", i, a, b),
            }
            if let Some(p) = a {
                running.push(p);
            }
            // Release sometimes (always when stuck) so blocked classes
            // re-probe and the infeasibility memo gets invalidated.
            if !running.is_empty() && (b.is_none() || step % 3 == 0) {
                let (e, p) = running.remove(step as usize % running.len());
                let c = e.variant_constraints()[p.variant];
                indexed.release(&p, &c);
                linear.release(&p, &c);
            }
            if indexed.ready_len() == 0 && running.is_empty() {
                break;
            }
        }
    }
}
