//! Wire codecs for type-erased [`Value`]s.
//!
//! The distributed backend ships task arguments and results between
//! processes, but [`Value`] is an `Arc<dyn Any>` — the runtime cannot
//! serialise it generically. This module is the bridge: a process-wide
//! registry mapping concrete Rust types to tagged byte codecs. Both sides
//! of a connection register the same codecs (the built-in primitives are
//! always present; applications add their own, e.g. the HPO layer's
//! `Config` and trial-outcome codecs) and the tag travels with the bytes
//! in each [`rnet::Blob`], so decode never has to guess.
//!
//! Registration is append-only and idempotent per tag; codecs are looked
//! up on the dispatch path, so reads take a shared lock only.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use rnet::{Blob, Reader, WireError};

use crate::data::Value;

/// Serialise the concrete value behind a [`Value`] into bytes.
type EncodeFn = Arc<dyn Fn(&Value) -> Option<Vec<u8>> + Send + Sync>;
/// Rebuild a [`Value`] from codec bytes.
type DecodeFn = Arc<dyn Fn(&[u8]) -> Result<Value, WireError> + Send + Sync>;

#[derive(Default)]
struct Registry {
    by_type: HashMap<TypeId, (Arc<str>, EncodeFn)>,
    by_tag: HashMap<Arc<str>, DecodeFn>,
}

fn registry() -> &'static RwLock<Registry> {
    static REGISTRY: OnceLock<RwLock<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let lock = RwLock::new(Registry::default());
        register_builtins(&lock);
        lock
    })
}

/// Register a codec for concrete type `T` under `tag`.
///
/// `enc` turns a `&T` into bytes, `dec` parses them back. Both sides of a
/// distributed run must register the same `(tag, T)` pairs — tags are the
/// on-wire identity. Re-registering a tag replaces the previous codec
/// (last writer wins), which keeps repeated test setups idempotent.
pub fn register_codec<T, E, D>(tag: &str, enc: E, dec: D)
where
    T: Any + Send + Sync,
    E: Fn(&T) -> Vec<u8> + Send + Sync + 'static,
    D: Fn(&[u8]) -> Result<T, WireError> + Send + Sync + 'static,
{
    let tag: Arc<str> = tag.into();
    let encode: EncodeFn = Arc::new(move |v: &Value| v.downcast_ref::<T>().map(&enc));
    let decode: DecodeFn = Arc::new(move |bytes| dec(bytes).map(Value::new));
    let mut reg = registry().write().expect("codec registry poisoned");
    reg.by_type.insert(TypeId::of::<T>(), (tag.clone(), encode));
    reg.by_tag.insert(tag, decode);
}

/// Encode a [`Value`] into a tagged [`Blob`], or `None` if no codec is
/// registered for its concrete type (the caller fails the task with a
/// useful message rather than panicking the runtime).
pub fn encode_value(value: &Value) -> Option<Blob> {
    let reg = registry().read().expect("codec registry poisoned");
    let (tag, enc) = reg.by_type.get(&value.concrete_type_id())?;
    let bytes = enc(value)?;
    Some(Blob { tag: tag.to_string(), bytes })
}

/// Decode a tagged [`Blob`] back into a [`Value`].
pub fn decode_value(blob: &Blob) -> Result<Value, WireError> {
    decode_tagged(&blob.tag, &blob.bytes)
}

/// Decode borrowed codec bytes under `tag` back into a [`Value`].
///
/// This is the zero-copy entry point: the event-loop backends hand it
/// [`rnet::BlobRef`] fields pointing straight into a connection's receive
/// buffer, so a task result crosses from socket bytes to a typed `Value`
/// without an intermediate owned [`Blob`].
pub fn decode_tagged(tag: &str, bytes: &[u8]) -> Result<Value, WireError> {
    let dec = {
        let reg = registry().read().expect("codec registry poisoned");
        reg.by_tag.get(tag).cloned()
    };
    match dec {
        Some(dec) => dec(bytes),
        None => Err(WireError("no codec registered for blob tag".into())),
    }
}

/// Whether a codec exists for the concrete type inside `value`.
pub fn can_encode(value: &Value) -> bool {
    let reg = registry().read().expect("codec registry poisoned");
    reg.by_type.contains_key(&value.concrete_type_id())
}

fn register_builtins(lock: &RwLock<Registry>) {
    // Inlined register_codec against an explicit lock, because the global
    // registry() is still mid-initialisation when this runs.
    fn put<T, E, D>(lock: &RwLock<Registry>, tag: &str, enc: E, dec: D)
    where
        T: Any + Send + Sync,
        E: Fn(&T) -> Vec<u8> + Send + Sync + 'static,
        D: Fn(&[u8]) -> Result<T, WireError> + Send + Sync + 'static,
    {
        let tag: Arc<str> = tag.into();
        let encode: EncodeFn = Arc::new(move |v: &Value| v.downcast_ref::<T>().map(&enc));
        let decode: DecodeFn = Arc::new(move |bytes| dec(bytes).map(Value::new));
        let mut reg = lock.write().expect("codec registry poisoned");
        reg.by_type.insert(TypeId::of::<T>(), (tag.clone(), encode));
        reg.by_tag.insert(tag, decode);
    }

    fn whole(bytes: &[u8]) -> Reader<'_> {
        Reader::new(bytes)
    }

    put::<i64, _, _>(
        lock,
        "std.i64",
        |v| {
            let mut b = Vec::new();
            rnet::wire::put_u64(&mut b, *v as u64);
            b
        },
        |bytes| whole(bytes).u64().map(|v| v as i64),
    );
    put::<u64, _, _>(
        lock,
        "std.u64",
        |v| {
            let mut b = Vec::new();
            rnet::wire::put_u64(&mut b, *v);
            b
        },
        |bytes| whole(bytes).u64(),
    );
    put::<u32, _, _>(
        lock,
        "std.u32",
        |v| {
            let mut b = Vec::new();
            rnet::wire::put_u32(&mut b, *v);
            b
        },
        |bytes| whole(bytes).u32(),
    );
    put::<f64, _, _>(
        lock,
        "std.f64",
        |v| {
            let mut b = Vec::new();
            rnet::wire::put_f64(&mut b, *v);
            b
        },
        |bytes| whole(bytes).f64(),
    );
    put::<bool, _, _>(
        lock,
        "std.bool",
        |v| vec![u8::from(*v)],
        |bytes| match bytes {
            [0] => Ok(false),
            [1] => Ok(true),
            _ => Err(WireError("bool must be one byte 0/1".into())),
        },
    );
    put::<String, _, _>(
        lock,
        "std.string",
        |v| {
            let mut b = Vec::new();
            rnet::wire::put_str(&mut b, v);
            b
        },
        |bytes| whole(bytes).str(),
    );
    put::<(), _, _>(lock, "std.unit", |_| Vec::new(), |_| Ok(()));
    put::<Vec<f64>, _, _>(
        lock,
        "std.vec_f64",
        |v| {
            let mut b = Vec::new();
            rnet::wire::put_u64(&mut b, v.len() as u64);
            for x in v {
                rnet::wire::put_f64(&mut b, *x);
            }
            b
        },
        |bytes| {
            let mut r = Reader::new(bytes);
            let n = r.u64()? as usize;
            if n > bytes.len() {
                return Err(WireError("vec_f64 length exceeds payload".into()));
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(r.f64()?);
            }
            Ok(out)
        },
    );
    put::<Option<u32>, _, _>(
        lock,
        "std.opt_u32",
        |v| {
            let mut b = Vec::new();
            match v {
                Some(x) => {
                    b.push(1);
                    rnet::wire::put_u32(&mut b, *x);
                }
                None => b.push(0),
            }
            b
        },
        |bytes| match bytes.split_first() {
            Some((0, [])) => Ok(None),
            Some((1, rest)) => Reader::new(rest).u32().map(Some),
            _ => Err(WireError("bad Option<u32> encoding".into())),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) -> Value {
        let blob = encode_value(&v).expect("codec registered");
        decode_value(&blob).expect("decodes")
    }

    #[test]
    fn builtin_primitives_roundtrip() {
        assert_eq!(roundtrip(Value::new(-42i64)).downcast_ref::<i64>(), Some(&-42));
        assert_eq!(roundtrip(Value::new(7u64)).downcast_ref::<u64>(), Some(&7));
        assert_eq!(roundtrip(Value::new(9u32)).downcast_ref::<u32>(), Some(&9));
        assert_eq!(roundtrip(Value::new(1.5f64)).downcast_ref::<f64>(), Some(&1.5));
        assert_eq!(roundtrip(Value::new(true)).downcast_ref::<bool>(), Some(&true));
        assert_eq!(
            roundtrip(Value::new("hi".to_string())).downcast_ref::<String>(),
            Some(&"hi".to_string())
        );
        assert!(roundtrip(Value::new(())).is::<()>());
        assert_eq!(
            roundtrip(Value::new(vec![1.0f64, -2.25])).downcast_ref::<Vec<f64>>(),
            Some(&vec![1.0, -2.25])
        );
        assert_eq!(roundtrip(Value::new(Some(3u32))).downcast_ref::<Option<u32>>(), Some(&Some(3)));
        assert_eq!(roundtrip(Value::new(None::<u32>)).downcast_ref::<Option<u32>>(), Some(&None));
    }

    #[test]
    fn unregistered_type_is_refused_not_panicked() {
        struct Opaque;
        let v = Value::new(Opaque);
        assert!(!can_encode(&v));
        assert!(encode_value(&v).is_none());
    }

    #[test]
    fn unknown_tag_fails_cleanly() {
        let blob = Blob { tag: "nobody.registered.this".into(), bytes: vec![1, 2, 3] };
        assert!(decode_value(&blob).is_err());
    }

    #[test]
    fn custom_codec_registration_and_replacement() {
        #[derive(PartialEq, Debug)]
        struct Pair(u32, u32);
        register_codec::<Pair, _, _>(
            "test.pair",
            |p| {
                let mut b = Vec::new();
                rnet::wire::put_u32(&mut b, p.0);
                rnet::wire::put_u32(&mut b, p.1);
                b
            },
            |bytes| {
                let mut r = Reader::new(bytes);
                Ok(Pair(r.u32()?, r.u32()?))
            },
        );
        let got = roundtrip(Value::new(Pair(3, 9)));
        assert_eq!(got.downcast_ref::<Pair>(), Some(&Pair(3, 9)));
        // Re-register with a different encoding: last writer wins.
        register_codec::<Pair, _, _>(
            "test.pair",
            |p| {
                let mut b = Vec::new();
                rnet::wire::put_u32(&mut b, p.1);
                rnet::wire::put_u32(&mut b, p.0);
                b
            },
            |bytes| {
                let mut r = Reader::new(bytes);
                let (b, a) = (r.u32()?, r.u32()?);
                Ok(Pair(a, b))
            },
        );
        let got = roundtrip(Value::new(Pair(3, 9)));
        assert_eq!(got.downcast_ref::<Pair>(), Some(&Pair(3, 9)));
    }

    #[test]
    fn corrupt_payload_errors() {
        let blob = Blob { tag: "std.string".into(), bytes: vec![0xff, 0xff, 0xff] };
        assert!(decode_value(&blob).is_err());
    }
}
