//! The dynamic task dependency graph.
//!
//! "In order to enable the parallelization, the runtime builds a data
//! dependency graph of the tasks that make up the application at execution
//! time" (paper §3). Nodes are task instances; edges are RAW dependencies
//! labelled with the data version that flows along them (`d1v2` …), exactly
//! the rendering of the paper's Figure 3. The graph also tracks completion
//! state and answers "which tasks just became ready".

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::data::DataVersion;
use crate::task::TaskId;

/// Lifecycle of a task in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting for dependencies.
    Pending,
    /// Dependencies met, waiting for resources.
    Ready,
    /// Executing.
    Running,
    /// Finished successfully.
    Done,
    /// Exhausted all retries.
    Failed,
}

#[derive(Debug)]
struct Node {
    name: String,
    state: TaskState,
    /// predecessor → data versions flowing along that edge
    preds: BTreeMap<TaskId, BTreeSet<DataVersion>>,
    succs: BTreeMap<TaskId, BTreeSet<DataVersion>>,
    unmet: usize,
}

/// The dependency graph.
#[derive(Debug, Default)]
pub struct TaskGraph {
    nodes: BTreeMap<TaskId, Node>,
    /// Synchronisation edges: versions the main program waited on
    /// (rendered like the paper's red `sync` node).
    syncs: Vec<DataVersion>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task with its RAW dependencies: `deps` lists
    /// `(producer task, version read)` pairs. Producers already `Done`
    /// don't count as unmet. Returns the initial state.
    pub fn add_task(
        &mut self,
        id: TaskId,
        name: &str,
        deps: &[(TaskId, DataVersion)],
    ) -> TaskState {
        let mut preds: BTreeMap<TaskId, BTreeSet<DataVersion>> = BTreeMap::new();
        for &(p, v) in deps {
            preds.entry(p).or_default().insert(v);
        }
        let unmet = preds
            .keys()
            .filter(|p| self.nodes.get(p).is_some_and(|n| !matches!(n.state, TaskState::Done)))
            .count();
        for (&p, versions) in &preds {
            if let Some(pn) = self.nodes.get_mut(&p) {
                pn.succs.entry(id).or_default().extend(versions.iter().copied());
            }
        }
        let state = if unmet == 0 { TaskState::Ready } else { TaskState::Pending };
        self.nodes.insert(
            id,
            Node { name: name.to_string(), state, preds, succs: BTreeMap::new(), unmet },
        );
        state
    }

    /// Record that the main program synchronised on `v` (`compss_wait_on`).
    pub fn add_sync(&mut self, v: DataVersion) {
        self.syncs.push(v);
    }

    /// State of `id`.
    pub fn state(&self, id: TaskId) -> Option<TaskState> {
        self.nodes.get(&id).map(|n| n.state)
    }

    /// Mark `id` running.
    pub fn set_running(&mut self, id: TaskId) {
        if let Some(n) = self.nodes.get_mut(&id) {
            n.state = TaskState::Running;
        }
    }

    /// Mark `id` back to ready (failed attempt will be retried).
    pub fn set_ready(&mut self, id: TaskId) {
        if let Some(n) = self.nodes.get_mut(&id) {
            n.state = TaskState::Ready;
        }
    }

    /// Mark `id` permanently failed.
    pub fn set_failed(&mut self, id: TaskId) {
        if let Some(n) = self.nodes.get_mut(&id) {
            n.state = TaskState::Failed;
        }
    }

    /// Mark `id` done; returns the successors that became ready.
    pub fn set_done(&mut self, id: TaskId) -> Vec<TaskId> {
        let succs: Vec<TaskId> = match self.nodes.get_mut(&id) {
            Some(n) => {
                n.state = TaskState::Done;
                n.succs.keys().copied().collect()
            }
            None => return Vec::new(),
        };
        let mut newly_ready = Vec::new();
        for s in succs {
            if let Some(sn) = self.nodes.get_mut(&s) {
                sn.unmet = sn.unmet.saturating_sub(1);
                if sn.unmet == 0 && sn.state == TaskState::Pending {
                    sn.state = TaskState::Ready;
                    newly_ready.push(s);
                }
            }
        }
        newly_ready
    }

    /// All tasks in a given state.
    pub fn tasks_in_state(&self, state: TaskState) -> Vec<TaskId> {
        self.nodes.iter().filter(|(_, n)| n.state == state).map(|(&id, _)| id).collect()
    }

    /// Total number of tasks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether every task is `Done` or `Failed`.
    pub fn all_settled(&self) -> bool {
        self.nodes.values().all(|n| matches!(n.state, TaskState::Done | TaskState::Failed))
    }

    /// Length (in tasks) of the longest dependency chain — the critical
    /// path, a lower bound on parallel makespan in task counts.
    pub fn critical_path_len(&self) -> usize {
        let mut memo: BTreeMap<TaskId, usize> = BTreeMap::new();
        fn depth(
            id: TaskId,
            nodes: &BTreeMap<TaskId, super::graph::Node>,
            memo: &mut BTreeMap<TaskId, usize>,
        ) -> usize {
            if let Some(&d) = memo.get(&id) {
                return d;
            }
            let d = 1 + nodes
                .get(&id)
                .map(|n| n.preds.keys().map(|&p| depth(p, nodes, memo)).max().unwrap_or(0))
                .unwrap_or(0);
            memo.insert(id, d);
            d
        }
        self.nodes.keys().map(|&id| depth(id, &self.nodes, &mut memo)).max().unwrap_or(0)
    }

    /// Graphviz DOT rendering in the visual language of the paper's
    /// Figure 3: blue circles for tasks, labelled edges for data versions,
    /// a red `sync` node for main-program synchronisations.
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph compss {\n  rankdir=TB;\n  node [shape=circle, style=filled];\n");
        // Colour per task name so "graph.experiment" vs "graph.plot" differ.
        let palette = ["#4f81bd", "#9bbb59", "#c0504d", "#8064a2", "#f79646"];
        let mut names: Vec<&str> = self.nodes.values().map(|n| n.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        for (id, n) in &self.nodes {
            let color =
                palette[names.iter().position(|&x| x == n.name).unwrap_or(0) % palette.len()];
            let _ = writeln!(
                out,
                "  {} [label=\"{}\", fillcolor=\"{}\", tooltip=\"{}\"];",
                id.0, id.0, color, n.name
            );
        }
        for (id, n) in &self.nodes {
            for (succ, versions) in &n.succs {
                let labels: Vec<String> = versions.iter().map(|v| v.to_string()).collect();
                let _ = writeln!(out, "  {} -> {} [label=\"{}\"];", id.0, succ.0, labels.join(","));
            }
        }
        if !self.syncs.is_empty() {
            let _ = writeln!(out, "  sync [label=\"sync\", shape=octagon, fillcolor=\"#ff4040\"];");
            for v in &self.syncs {
                // connect the producing task if known, purely cosmetic
                let _ = writeln!(out, "  sync_{v} [label=\"{v}\", shape=plaintext, style=\"\"];");
                let _ = writeln!(out, "  sync_{v} -> sync;");
            }
        }
        // Legend block naming the task functions, as in Figure 3.
        for (i, name) in names.iter().enumerate() {
            let _ = writeln!(
                out,
                "  legend{} [label=\"{}\", shape=box, fillcolor=\"{}\"];",
                i,
                name,
                palette[i % palette.len()]
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataHandle;

    fn v(id: u64, version: u32) -> DataVersion {
        DataVersion { handle: DataHandle::test_only(id), version }
    }

    #[test]
    fn independent_tasks_are_immediately_ready() {
        let mut g = TaskGraph::new();
        for i in 0..5 {
            let s = g.add_task(TaskId(i), "experiment", &[]);
            assert_eq!(s, TaskState::Ready);
        }
        assert_eq!(g.tasks_in_state(TaskState::Ready).len(), 5);
        assert_eq!(g.critical_path_len(), 1);
    }

    #[test]
    fn dependent_task_waits_for_producer() {
        let mut g = TaskGraph::new();
        g.add_task(TaskId(1), "experiment", &[]);
        let s = g.add_task(TaskId(2), "visualisation", &[(TaskId(1), v(1, 1))]);
        assert_eq!(s, TaskState::Pending);
        let ready = g.set_done(TaskId(1));
        assert_eq!(ready, vec![TaskId(2)]);
        assert_eq!(g.state(TaskId(2)), Some(TaskState::Ready));
        assert_eq!(g.critical_path_len(), 2);
    }

    #[test]
    fn dependency_on_finished_task_is_met() {
        let mut g = TaskGraph::new();
        g.add_task(TaskId(1), "a", &[]);
        g.set_done(TaskId(1));
        let s = g.add_task(TaskId(2), "b", &[(TaskId(1), v(1, 1))]);
        assert_eq!(s, TaskState::Ready, "producer already done ⇒ no wait");
    }

    #[test]
    fn fan_in_counts_distinct_predecessors() {
        let mut g = TaskGraph::new();
        g.add_task(TaskId(1), "e", &[]);
        g.add_task(TaskId(2), "e", &[]);
        // plot reads two versions from task 1 and one from task 2
        let s = g.add_task(
            TaskId(3),
            "plot",
            &[(TaskId(1), v(1, 1)), (TaskId(1), v(2, 1)), (TaskId(2), v(3, 1))],
        );
        assert_eq!(s, TaskState::Pending);
        assert!(g.set_done(TaskId(1)).is_empty(), "still waiting on task 2");
        assert_eq!(g.set_done(TaskId(2)), vec![TaskId(3)]);
    }

    #[test]
    fn state_transitions() {
        let mut g = TaskGraph::new();
        g.add_task(TaskId(1), "a", &[]);
        g.set_running(TaskId(1));
        assert_eq!(g.state(TaskId(1)), Some(TaskState::Running));
        g.set_ready(TaskId(1));
        assert_eq!(g.state(TaskId(1)), Some(TaskState::Ready));
        g.set_failed(TaskId(1));
        assert_eq!(g.state(TaskId(1)), Some(TaskState::Failed));
        assert!(g.all_settled());
    }

    #[test]
    fn all_settled_requires_every_task() {
        let mut g = TaskGraph::new();
        g.add_task(TaskId(1), "a", &[]);
        g.add_task(TaskId(2), "a", &[]);
        g.set_done(TaskId(1));
        assert!(!g.all_settled());
        g.set_done(TaskId(2));
        assert!(g.all_settled());
        assert!(TaskGraph::new().all_settled(), "vacuously true when empty");
    }

    #[test]
    fn dot_contains_nodes_edges_and_version_labels() {
        let mut g = TaskGraph::new();
        g.add_task(TaskId(1), "graph.experiment", &[]);
        g.add_task(TaskId(2), "graph.visualisation", &[(TaskId(1), v(1, 2))]);
        g.add_sync(v(1, 2));
        let dot = g.to_dot();
        assert!(dot.contains("digraph compss"));
        assert!(dot.contains("1 -> 2"), "{dot}");
        assert!(dot.contains("d1v2"), "edge labelled with data version: {dot}");
        assert!(dot.contains("sync"), "{dot}");
        assert!(dot.contains("graph.experiment"), "legend: {dot}");
    }

    #[test]
    fn diamond_critical_path() {
        let mut g = TaskGraph::new();
        g.add_task(TaskId(1), "a", &[]);
        g.add_task(TaskId(2), "b", &[(TaskId(1), v(1, 1))]);
        g.add_task(TaskId(3), "c", &[(TaskId(1), v(2, 1))]);
        g.add_task(TaskId(4), "d", &[(TaskId(2), v(3, 1)), (TaskId(3), v(4, 1))]);
        assert_eq!(g.critical_path_len(), 3);
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
    }
}
