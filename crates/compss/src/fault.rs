//! Fault-tolerance policy.
//!
//! Paper §4: "In case a task fails for whatever reason (such as node
//! failure), the runtime tries to start the same task in the same node, if
//! it fails again, its restarted in another node. This way, PyCOMPSs ensures
//! fault tolerance. The failure of task does not affect the other tasks
//! unless there are some dependencies."
//!
//! [`RetryPolicy::on_failure`] encodes exactly that escalation and is shared
//! by both execution backends, so the threaded and the simulated runtime
//! agree on recovery behaviour.
//!
//! A retried attempt does not have to start from scratch: if the failed
//! attempt published intermediate state through the ambient snapshot
//! channel ([`crate::snapshot`]), the replacement attempt — same node,
//! other node, or a freshly joined worker on the distributed backend —
//! loads the latest snapshot first and resumes from it, so a crash costs
//! at most one snapshot interval of work.

/// What to do after a failed execution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Re-run, preferring the node of the failed attempt.
    RetrySameNode,
    /// Re-run anywhere except the node of the failed attempt.
    RetryOtherNode,
    /// Give up; the task is permanently failed.
    GiveUp,
}

/// Retry policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum execution attempts per task (including the first).
    pub max_attempts: u32,
    /// Whether the first retry sticks to the failing node (the COMPSs
    /// behaviour described in the paper). When `false`, every retry avoids
    /// the previous node.
    pub same_node_first: bool,
}

impl Default for RetryPolicy {
    /// Three attempts: original, same-node retry, other-node retry.
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, same_node_first: true }
    }
}

impl RetryPolicy {
    /// No retries at all — the "sequential application has a single point
    /// of failure" behaviour the paper contrasts against.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, same_node_first: true }
    }

    /// Decide the follow-up to a failure of `attempt` (1-based).
    /// `node_gone` signals the host died (no point retrying there).
    pub fn on_failure(&self, attempt: u32, node_gone: bool) -> RetryDecision {
        if attempt >= self.max_attempts {
            return RetryDecision::GiveUp;
        }
        if node_gone {
            return RetryDecision::RetryOtherNode;
        }
        if self.same_node_first && attempt == 1 {
            RetryDecision::RetrySameNode
        } else {
            RetryDecision::RetryOtherNode
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_replays_the_paper_escalation() {
        let p = RetryPolicy::default();
        assert_eq!(p.on_failure(1, false), RetryDecision::RetrySameNode);
        assert_eq!(p.on_failure(2, false), RetryDecision::RetryOtherNode);
        assert_eq!(p.on_failure(3, false), RetryDecision::GiveUp);
    }

    #[test]
    fn node_death_skips_same_node_retry() {
        let p = RetryPolicy::default();
        assert_eq!(p.on_failure(1, true), RetryDecision::RetryOtherNode);
    }

    #[test]
    fn none_gives_up_immediately() {
        assert_eq!(RetryPolicy::none().on_failure(1, false), RetryDecision::GiveUp);
    }

    #[test]
    fn disabling_same_node_first_always_moves() {
        let p = RetryPolicy { max_attempts: 5, same_node_first: false };
        assert_eq!(p.on_failure(1, false), RetryDecision::RetryOtherNode);
        assert_eq!(p.on_failure(4, false), RetryDecision::RetryOtherNode);
        assert_eq!(p.on_failure(5, false), RetryDecision::GiveUp);
    }
}
