//! Task model: definitions, constraints, directions, contexts, errors.

use std::fmt;
use std::sync::Arc;

use crate::data::{DataHandle, Value};

/// Unique id of a submitted task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Resource constraint attached to a task definition — the paper's
/// `@constraint(processors=[{CPU: n}, {GPU: m}])` decorator, plus the
/// `@multinode` decorator via [`Constraint::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// CPU computing units required *per node*.
    pub cpus: u32,
    /// GPUs required *per node*.
    pub gpus: u32,
    /// Memory required *per node*, GiB.
    pub mem_gib: u32,
    /// Number of nodes the task spans (`@multinode`; 1 = ordinary task).
    pub nodes: u32,
}

impl Constraint {
    /// `cpus` CPU units on one node, nothing else.
    pub fn cpus(cpus: u32) -> Self {
        Constraint { cpus, gpus: 0, mem_gib: 0, nodes: 1 }
    }

    /// A multi-node task: `nodes` nodes × `cpus_per_node` CPU units — the
    /// paper's `@multinode` decorator (MPI-style allocations).
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn multinode(nodes: u32, cpus_per_node: u32) -> Self {
        assert!(nodes >= 1, "a task spans at least one node");
        Constraint { cpus: cpus_per_node, gpus: 0, mem_gib: 0, nodes }
    }

    /// Add a per-node GPU requirement (chainable).
    pub fn with_gpus(mut self, gpus: u32) -> Self {
        self.gpus = gpus;
        self
    }

    /// Add a per-node memory requirement (chainable).
    pub fn with_mem_gib(mut self, mem: u32) -> Self {
        self.mem_gib = mem;
        self
    }
}

impl Default for Constraint {
    /// One CPU, the PyCOMPSs default.
    fn default() -> Self {
        Constraint::cpus(1)
    }
}

/// Parameter direction — the paper's IN / OUT / INOUT hints from which the
/// runtime infers dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Read-only input (the PyCOMPSs default).
    In,
    /// Write-only output.
    Out,
    /// Read-modify-write.
    InOut,
}

/// One argument of a task submission.
#[derive(Debug, Clone)]
pub enum ArgSpec {
    /// Read the handle's current version.
    In(DataHandle),
    /// Read the current version, produce the next one.
    InOut(DataHandle),
    /// Produce the handle's next version without reading.
    Out(DataHandle),
}

impl ArgSpec {
    /// The direction of this argument.
    pub fn direction(&self) -> Direction {
        match self {
            ArgSpec::In(_) => Direction::In,
            ArgSpec::InOut(_) => Direction::InOut,
            ArgSpec::Out(_) => Direction::Out,
        }
    }

    /// The data handle this argument refers to.
    pub fn handle(&self) -> DataHandle {
        match self {
            ArgSpec::In(h) | ArgSpec::InOut(h) | ArgSpec::Out(h) => *h,
        }
    }
}

/// Error raised by a task body (or synthesised from a panic / injected
/// failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Human-readable reason.
    pub message: String,
}

impl TaskError {
    /// Build from any displayable reason.
    pub fn new(message: impl Into<String>) -> Self {
        TaskError { message: message.into() }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task error: {}", self.message)
    }
}

impl std::error::Error for TaskError {}

/// Execution context handed to a running task body.
///
/// Carries the placement decisions so a task can verify (and tests assert)
/// the affinity guarantees the paper demonstrates in Figure 4.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// The task instance id.
    pub task: TaskId,
    /// 1-based execution attempt.
    pub attempt: u32,
    /// Node the task was placed on.
    pub node: u32,
    /// Exact CPU core ids owned on the primary node.
    pub cores: Vec<u32>,
    /// Exact GPU ids owned on the primary node.
    pub gpus: Vec<u32>,
    /// Additional nodes of a `@multinode` allocation (empty otherwise).
    pub peer_nodes: Vec<u32>,
    /// Whether this is a simulated execution (virtual time).
    pub simulated: bool,
}

impl TaskContext {
    /// The intra-task degree of parallelism this placement grants: the
    /// number of CPU cores owned on the primary node (at least 1).
    ///
    /// Task bodies that can exploit multiple cores — the paper's Figure 5/9
    /// training tasks with `@constraint(computing_units=N)` — should size
    /// their worker pools from this value, so the cores the scheduler
    /// reserved are actually used rather than merely blocked. The HPO
    /// runner feeds it to `tinyml::par::with_threads` around each
    /// objective call.
    pub fn parallelism(&self) -> usize {
        self.cores.len().max(1)
    }
}

/// The task body signature.
pub type TaskFn = dyn Fn(&TaskContext, &[Value]) -> Result<Vec<Value>, TaskError> + Send + Sync;

/// An alternative implementation of a task — the paper's `@implement`
/// decorator: "declare multiple implementations for the same task (this
/// decorator allows the runtime to choose the most appropriate task
/// considering the resources)".
#[derive(Clone)]
pub struct TaskVariant {
    /// Resource constraint of this implementation.
    pub constraint: Constraint,
    /// Its body.
    pub body: Arc<TaskFn>,
}

impl fmt::Debug for TaskVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskVariant").field("constraint", &self.constraint).finish_non_exhaustive()
    }
}

/// A registered task definition — the result of decorating a function with
/// `@task` in the paper's Listing 2.
#[derive(Clone)]
pub struct TaskDef {
    /// Registration name, e.g. `"graph.experiment"`.
    pub name: Arc<str>,
    /// Resource constraint of the primary implementation.
    pub constraint: Constraint,
    /// Number of returned values (`@task(returns=n)`).
    pub returns: usize,
    /// Scheduler hint: place as soon as possible (`priority=True`).
    pub priority: bool,
    /// The primary body.
    pub body: Arc<TaskFn>,
    /// Alternative implementations (`@implement`), tried in order *after*
    /// the primary one when placing the task.
    pub alternatives: Vec<TaskVariant>,
}

impl fmt::Debug for TaskDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskDef")
            .field("name", &self.name)
            .field("constraint", &self.constraint)
            .field("returns", &self.returns)
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

impl TaskDef {
    /// Mark this definition as high priority (chainable), like the paper's
    /// `priority=True` hint.
    pub fn with_priority(mut self) -> Self {
        self.priority = true;
        self
    }

    /// Attach an alternative implementation (chainable) — the `@implement`
    /// decorator. The scheduler picks the first variant (primary first,
    /// then alternatives in attachment order) whose constraint the chosen
    /// node can satisfy right now.
    pub fn with_implementation(
        mut self,
        constraint: Constraint,
        body: impl Fn(&TaskContext, &[Value]) -> Result<Vec<Value>, TaskError> + Send + Sync + 'static,
    ) -> Self {
        self.alternatives.push(TaskVariant { constraint, body: Arc::new(body) });
        self
    }

    /// All implementations: the primary first, then alternatives.
    pub fn variants(&self) -> Vec<TaskVariant> {
        let mut out =
            vec![TaskVariant { constraint: self.constraint, body: Arc::clone(&self.body) }];
        out.extend(self.alternatives.iter().cloned());
        out
    }

    /// Constraints of every implementation, primary first.
    pub fn variant_constraints(&self) -> Vec<Constraint> {
        std::iter::once(self.constraint)
            .chain(self.alternatives.iter().map(|v| v.constraint))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_builder() {
        let c = Constraint::cpus(4).with_gpus(1).with_mem_gib(32);
        assert_eq!(c, Constraint { cpus: 4, gpus: 1, mem_gib: 32, nodes: 1 });
        assert_eq!(Constraint::default().cpus, 1);
        assert_eq!(Constraint::default().nodes, 1);
        let m = Constraint::multinode(4, 48);
        assert_eq!((m.nodes, m.cpus), (4, 48));
    }

    #[test]
    fn argspec_accessors() {
        let h = DataHandle::test_only(3);
        assert_eq!(ArgSpec::In(h).direction(), Direction::In);
        assert_eq!(ArgSpec::Out(h).direction(), Direction::Out);
        assert_eq!(ArgSpec::InOut(h).direction(), Direction::InOut);
        assert_eq!(ArgSpec::In(h).handle(), h);
    }

    #[test]
    fn context_parallelism_counts_primary_node_cores() {
        let mut ctx = TaskContext {
            task: TaskId(1),
            attempt: 1,
            node: 0,
            cores: vec![4, 5, 6, 7],
            gpus: vec![],
            peer_nodes: vec![],
            simulated: false,
        };
        assert_eq!(ctx.parallelism(), 4);
        ctx.cores.clear();
        assert_eq!(ctx.parallelism(), 1, "never zero even without explicit cores");
    }

    #[test]
    fn task_error_displays_reason() {
        let e = TaskError::new("boom");
        assert_eq!(e.to_string(), "task error: boom");
    }

    #[test]
    fn task_id_displays_compactly() {
        assert_eq!(TaskId(9).to_string(), "t9");
    }

    #[test]
    fn taskdef_debug_and_priority() {
        let def = TaskDef {
            name: "x".into(),
            constraint: Constraint::default(),
            returns: 1,
            priority: false,
            body: Arc::new(|_, _| Ok(vec![])),
            alternatives: Vec::new(),
        };
        assert!(!def.priority);
        let p = def.clone().with_priority();
        assert!(p.priority);
        let dbg = format!("{p:?}");
        assert!(dbg.contains("TaskDef") && dbg.contains("priority: true"));
    }
}
