//! The runtime facade: submission, dependency resolution, synchronisation.
//!
//! This is the COMPSs runtime of the paper's Figure 1, minus the Java: the
//! main program submits tasks ([`Runtime::submit`]), the runtime resolves
//! data dependencies into a dynamic graph, schedules ready tasks onto the
//! cluster through one of two backends, and the main program synchronises
//! with [`Runtime::wait_on`] (the paper's `compss_wait_on`) or
//! [`Runtime::barrier`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use cluster::transfer::TransferModel;
use cluster::{Cluster, FailureInjector, NodeSpec};
use paratrace::TraceCollector;
use parking_lot::{Condvar, Mutex};

use crate::backend::distributed::{connect_workers, ConnMgr, DistributedConfig};
use crate::backend::sim::SimState;
use crate::backend::threaded::{collect_dispatch, WorkerPool};
use crate::blocks::BlockStore;
use crate::data::{DataHandle, DataRegistry, DataVersion, Producer, Value};
use crate::fault::{RetryDecision, RetryPolicy};
use crate::graph::{TaskGraph, TaskState};
use crate::metrics::RtMetrics;
use crate::scheduler::{Placement, ReadyEntry, Scheduler};
use crate::task::{ArgSpec, Constraint, TaskDef, TaskError, TaskFn, TaskId};

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The cluster to run on (real slot accounting for the threaded
    /// backend, full virtual hardware for the simulated one).
    pub cluster: Cluster,
    /// `(node, cores)` reservations for the runtime worker process.
    pub reserved_cores: Vec<(u32, u32)>,
    /// Tracing flag — the paper's launch-time switch.
    pub tracing: bool,
    /// Graph-recording flag (DOT export); also toggleable like tracing.
    pub graph: bool,
    /// Metrics flag: live counters/gauges/histograms ([`Runtime::metrics`]).
    /// Off means one relaxed atomic load per instrumentation site.
    pub metrics: bool,
    /// Fault-tolerance policy.
    pub retry: RetryPolicy,
    /// Failure injection plan.
    pub failures: FailureInjector,
    /// Assumed size of task values for the transfer model, bytes.
    pub default_value_bytes: u64,
    /// Default simulated duration of a task whose submission gives none.
    pub default_sim_duration_us: u64,
}

impl RuntimeConfig {
    /// A single node with `cores` CPU computing units — the typical
    /// threaded-backend deployment.
    pub fn single_node(cores: u32) -> Self {
        RuntimeConfig::on_cluster(Cluster::homogeneous(
            1,
            NodeSpec::new("local", cores, Vec::new(), 64),
        ))
    }

    /// Configuration over an arbitrary cluster, defaults everywhere else.
    pub fn on_cluster(cluster: Cluster) -> Self {
        RuntimeConfig {
            cluster,
            reserved_cores: Vec::new(),
            tracing: true,
            graph: true,
            metrics: true,
            retry: RetryPolicy::default(),
            failures: FailureInjector::none(),
            default_value_bytes: 1024,
            default_sim_duration_us: 1_000,
        }
    }

    /// Reserve worker cores (chainable), e.g. the paper's half-node worker.
    pub fn reserve(mut self, node: u32, cores: u32) -> Self {
        self.reserved_cores.push((node, cores));
        self
    }

    /// Set tracing (chainable).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Set metrics collection (chainable).
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Set failure injection (chainable).
    pub fn with_failures(mut self, failures: FailureInjector) -> Self {
        self.failures = failures;
        self
    }

    /// Set the retry policy (chainable).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Per-submission options.
#[derive(Debug, Clone, Default)]
pub struct SubmitOpts {
    /// Simulated duration (virtual µs) of this task; ignored by the
    /// threaded backend, which measures real time.
    pub sim_duration_us: Option<u64>,
}

/// Result of a successful submission.
#[derive(Debug, Clone)]
pub struct SubmitResult {
    /// The task instance id.
    pub task: TaskId,
    /// Handles for the task's return values (`@task(returns=n)`).
    pub returns: Vec<DataHandle>,
}

/// Submission errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No node in the cluster can ever satisfy the constraint.
    Unsatisfiable(Constraint),
    /// An `In`/`InOut` argument references data that was never written and
    /// has no pending producer.
    UnwrittenData(DataHandle),
    /// An argument references a handle from a different runtime.
    UnknownData(DataHandle),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Unsatisfiable(c) => {
                write!(f, "no node satisfies constraint {c:?}")
            }
            SubmitError::UnwrittenData(h) => write!(f, "data {h} has no value and no producer"),
            SubmitError::UnknownData(h) => write!(f, "data {h} is not known to this runtime"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Synchronisation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitError {
    /// The producing task failed permanently (retries exhausted).
    ProducerFailed(DataHandle),
    /// The data was never written and nothing pending will write it.
    NeverWritten(DataHandle),
    /// Handle from a different runtime.
    UnknownData(DataHandle),
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::ProducerFailed(h) => write!(f, "producer of {h} failed permanently"),
            WaitError::NeverWritten(h) => write!(f, "data {h} will never be written"),
            WaitError::UnknownData(h) => write!(f, "data {h} is not known to this runtime"),
        }
    }
}

impl std::error::Error for WaitError {}

/// Aggregate runtime statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks submitted.
    pub submitted: u64,
    /// Tasks completed successfully.
    pub completed: u64,
    /// Tasks that failed permanently.
    pub failed: u64,
    /// Failed execution attempts (each may have been retried).
    pub failed_attempts: u64,
    /// Makespan: last completion time, µs (virtual or wall).
    pub makespan_us: u64,
}

/// How a resolved argument participates in dataflow.
#[derive(Debug, Clone)]
pub(crate) enum ResolvedArg {
    Read(DataVersion),
    Write(DataVersion),
    ReadWrite { read: DataVersion, write: DataVersion },
}

/// A submitted task instance.
pub(crate) struct Instance {
    pub def: TaskDef,
    pub args: Vec<ResolvedArg>,
    pub returns: Vec<DataVersion>,
    pub attempt: u32,
    pub prefer_node: Option<u32>,
    pub exclude_node: Option<u32>,
    pub sim_duration_us: u64,
    pub seq: u64,
    /// Submission timestamp, µs (virtual for the sim backend, wall
    /// otherwise) — the start of the dependency-wait interval.
    pub submitted_us: u64,
}

impl Instance {
    /// All versions this instance reads, in argument order.
    pub fn reads(&self) -> Vec<DataVersion> {
        self.args
            .iter()
            .filter_map(|a| match a {
                ResolvedArg::Read(v) | ResolvedArg::ReadWrite { read: v, .. } => Some(*v),
                ResolvedArg::Write(_) => None,
            })
            .collect()
    }

    /// All versions this instance writes: OUT/INOUT params then returns.
    pub fn writes(&self) -> Vec<DataVersion> {
        self.args
            .iter()
            .filter_map(|a| match a {
                ResolvedArg::Write(v) | ResolvedArg::ReadWrite { write: v, .. } => Some(*v),
                ResolvedArg::Read(_) => None,
            })
            .chain(self.returns.iter().copied())
            .collect()
    }
}

/// One in-flight execution. The placement is shared (`Arc`) with the
/// backend's in-flight message so completion-side trace emission can run
/// without the core lock.
pub(crate) struct RunningExec {
    pub task: TaskId,
    pub placement: Arc<Placement>,
    pub constraint: Constraint,
    pub attempt: u32,
    pub start_us: u64,
}

/// Mutable runtime state, shared under one lock.
pub(crate) struct Core {
    pub data: DataRegistry,
    pub blocks: BlockStore,
    pub graph: TaskGraph,
    pub sched: Scheduler,
    pub instances: HashMap<TaskId, Instance>,
    pub running: HashMap<u64, RunningExec>,
    pub poisoned: HashSet<DataVersion>,
    pub sim: Option<SimState>,
    pub next_task: u64,
    pub next_seq: u64,
    pub next_exec: u64,
    pub unsettled: u64,
    pub stats: RuntimeStats,
}

pub(crate) struct Shared {
    pub core: Mutex<Core>,
    pub cv: Condvar,
    pub trace: Arc<TraceCollector>,
    pub metrics: RtMetrics,
    pub start: Instant,
    pub retry: RetryPolicy,
    pub failures: FailureInjector,
    pub transfer: TransferModel,
    pub graph_enabled: bool,
    /// Latest task-state snapshot per caller key (see [`crate::snapshot`]):
    /// written by running bodies through the ambient channel, read back by
    /// retried attempts so a resubmitted task resumes instead of
    /// restarting. Distributed workers mirror theirs here via `Data`
    /// frames, which is what lets a *replacement* worker pick up where a
    /// killed one stopped.
    pub snapshots: Mutex<HashMap<u64, Vec<u8>>>,
}

impl Shared {
    /// Wall-clock µs since runtime start (threaded backend timeline).
    pub fn wall_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

enum BackendHandle {
    Threaded(WorkerPool),
    Sim,
    Distributed(ConnMgr),
}

/// The runtime. Cheap to share behind `&`; internally synchronised.
pub struct Runtime {
    shared: Arc<Shared>,
    backend: BackendHandle,
    default_sim_duration_us: u64,
}

impl Runtime {
    /// Build a runtime on the threaded backend: tasks run on a real thread
    /// pool with slot-accurate resource accounting.
    pub fn threaded(cfg: RuntimeConfig) -> Runtime {
        let shared = Self::make_shared(&cfg, false);
        let pool = WorkerPool::start(Arc::clone(&shared), &cfg.cluster);
        Runtime {
            shared,
            backend: BackendHandle::Threaded(pool),
            default_sim_duration_us: cfg.default_sim_duration_us,
        }
    }

    /// Build a runtime on the distributed backend: connect to running
    /// [`crate::backend::distributed::WorkerServer`] daemons at `workers`
    /// (host:port strings), build the cluster from what their `Hello`s
    /// advertise, and execute every task remotely. `cfg.cluster` is
    /// ignored — the real cluster is whatever answered. Fails if any
    /// worker stays unreachable past `dcfg.connect_timeout`.
    pub fn distributed(
        cfg: RuntimeConfig,
        workers: &[String],
        dcfg: DistributedConfig,
    ) -> std::io::Result<Runtime> {
        if workers.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "distributed runtime needs at least one worker address",
            ));
        }
        let boots = connect_workers(workers, dcfg.connect_timeout)?;
        Ok(Self::from_bootstraps(cfg, boots, dcfg))
    }

    /// Build a distributed runtime over workers someone else already
    /// acquired: the worker-*acquisition* half of [`Runtime::distributed`]
    /// split out, so a long-lived server can gather its pool however it
    /// likes — dialling out with
    /// [`connect_workers`],
    /// adopting dial-ins with
    /// [`WorkerBootstrap::from_hello`](crate::backend::distributed::WorkerBootstrap::from_hello),
    /// or both — and then own the runtime it builds on top. `cfg.cluster`
    /// is ignored; the real cluster is what the bootstraps advertise.
    pub fn from_bootstraps(
        cfg: RuntimeConfig,
        boots: Vec<crate::backend::distributed::WorkerBootstrap>,
        dcfg: DistributedConfig,
    ) -> Runtime {
        let nodes: Vec<NodeSpec> = boots
            .iter()
            .map(|b| {
                let gpus = vec![cluster::GpuModel::Generic; b.gpus as usize];
                NodeSpec::new(b.name.as_str(), b.cores.max(1), gpus, b.mem_gib.max(1))
            })
            .collect();
        let mut cfg = cfg;
        cfg.cluster = Cluster::from_nodes(nodes);
        // Worker cores are remote: nothing to reserve driver-side.
        cfg.reserved_cores.clear();
        let shared = Self::make_shared(&cfg, false);
        let mgr = ConnMgr::start(Arc::clone(&shared), boots, dcfg);
        Runtime {
            shared,
            backend: BackendHandle::Distributed(mgr),
            default_sim_duration_us: cfg.default_sim_duration_us,
        }
    }

    /// Worker display labels by node id: `name@addr` for the distributed
    /// backend, `nodeN` otherwise. Feeds per-node trace lanes and the
    /// dashboard's per-worker counters.
    pub fn node_labels(&self) -> Vec<String> {
        match &self.backend {
            BackendHandle::Distributed(mgr) => mgr.labels(),
            _ => {
                let n = self.shared.core.lock().sched.node_count();
                (0..n).map(|i| format!("node{i}")).collect()
            }
        }
    }

    /// Build a runtime on the simulated backend: a deterministic
    /// discrete-event execution over the virtual cluster.
    pub fn simulated(cfg: RuntimeConfig) -> Runtime {
        let shared = Self::make_shared(&cfg, true);
        {
            let mut core = shared.core.lock();
            let mut sim = SimState::new();
            for &(t, n) in shared.failures.node_failures() {
                sim.schedule_node_failure(t, n);
            }
            core.sim = Some(sim);
        }
        Runtime {
            shared,
            backend: BackendHandle::Sim,
            default_sim_duration_us: cfg.default_sim_duration_us,
        }
    }

    fn make_shared(cfg: &RuntimeConfig, _sim: bool) -> Arc<Shared> {
        let sched = Scheduler::new(&cfg.cluster, &cfg.reserved_cores);
        Arc::new(Shared {
            core: Mutex::new(Core {
                data: DataRegistry::new(cfg.default_value_bytes),
                blocks: BlockStore::new(),
                graph: TaskGraph::new(),
                sched,
                instances: HashMap::new(),
                running: HashMap::new(),
                poisoned: HashSet::new(),
                sim: None,
                next_task: 1,
                next_seq: 0,
                next_exec: 0,
                unsettled: 0,
                stats: RuntimeStats::default(),
            }),
            cv: Condvar::new(),
            trace: Arc::new(TraceCollector::with_flag(cfg.tracing)),
            metrics: RtMetrics::new(cfg.metrics),
            start: Instant::now(),
            retry: cfg.retry,
            failures: cfg.failures.clone(),
            transfer: TransferModel::for_cluster(&cfg.cluster),
            graph_enabled: cfg.graph,
            snapshots: Mutex::new(HashMap::new()),
        })
    }

    /// Register a task definition — the `@task`/`@constraint` decorators.
    /// `returns` is the number of values the body yields *for its return
    /// slots*; bodies must additionally yield one value per OUT/INOUT
    /// argument, after the return slots.
    pub fn register(
        &self,
        name: &str,
        constraint: Constraint,
        returns: usize,
        body: impl Fn(&crate::task::TaskContext, &[Value]) -> Result<Vec<Value>, TaskError>
            + Send
            + Sync
            + 'static,
    ) -> TaskDef {
        TaskDef {
            name: name.into(),
            constraint,
            returns,
            priority: false,
            body: Arc::new(body) as Arc<TaskFn>,
            alternatives: Vec::new(),
        }
    }

    /// Create main-program data (e.g. a parsed config object).
    pub fn literal<T: Send + Sync + 'static>(&self, v: T) -> DataHandle {
        self.shared.core.lock().data.literal(Value::new(v))
    }

    /// Create a data item to be produced later via an `Out` parameter.
    pub fn declare(&self) -> DataHandle {
        self.shared.core.lock().data.declare()
    }

    /// Declare the transfer-model size of a data item.
    pub fn set_data_bytes(&self, h: DataHandle, bytes: u64) {
        self.shared.core.lock().data.set_bytes(h, bytes);
    }

    /// Submit with default options.
    pub fn submit(&self, def: &TaskDef, args: Vec<ArgSpec>) -> Result<SubmitResult, SubmitError> {
        self.submit_with(def, args, SubmitOpts::default())
    }

    /// Submit a task instance. Non-blocking: returns handles immediately,
    /// execution is asynchronous.
    pub fn submit_with(
        &self,
        def: &TaskDef,
        args: Vec<ArgSpec>,
        opts: SubmitOpts,
    ) -> Result<SubmitResult, SubmitError> {
        let mut core = self.shared.core.lock();
        // With @implement alternatives a submission is admissible if ANY
        // implementation could ever run somewhere.
        if !def.variant_constraints().iter().any(|c| core.sched.satisfiable(c)) {
            return Err(SubmitError::Unsatisfiable(def.constraint));
        }
        let id = TaskId(core.next_task);
        let seq = core.next_seq;

        // Resolve arguments: compute dependencies and version bumps.
        let mut deps: Vec<(TaskId, DataVersion)> = Vec::new();
        let mut resolved: Vec<ResolvedArg> = Vec::with_capacity(args.len());
        for arg in &args {
            let h = arg.handle();
            if !core.data.knows(h) {
                return Err(SubmitError::UnknownData(h));
            }
            match arg {
                ArgSpec::In(_) | ArgSpec::InOut(_) => {
                    let read = core.data.current_version(h);
                    match core.data.producer(read) {
                        None => return Err(SubmitError::UnwrittenData(h)),
                        Some(Producer::Main) => {}
                        Some(Producer::Task(t)) => {
                            if core.graph.state(t) != Some(TaskState::Done) {
                                deps.push((t, read));
                            }
                        }
                    }
                    if matches!(arg, ArgSpec::In(_)) {
                        resolved.push(ResolvedArg::Read(read));
                    } else {
                        let write = core.data.new_version(h, Producer::Task(id));
                        resolved.push(ResolvedArg::ReadWrite { read, write });
                    }
                }
                ArgSpec::Out(_) => {
                    let write = core.data.new_version(h, Producer::Task(id));
                    resolved.push(ResolvedArg::Write(write));
                }
            }
        }
        let returns: Vec<DataVersion> = (0..def.returns)
            .map(|_| {
                let h = core.data.declare();
                core.data.new_version(h, Producer::Task(id))
            })
            .collect();
        let return_handles: Vec<DataHandle> = returns.iter().map(|v| v.handle).collect();

        core.next_task += 1;
        core.next_seq += 1;
        core.unsettled += 1;
        core.stats.submitted += 1;
        self.shared.metrics.submitted.incr();
        let submitted_us =
            core.sim.as_ref().map(|s| s.now()).unwrap_or_else(|| self.shared.wall_us());

        let state = core.graph.add_task(id, &def.name, &deps);
        core.instances.insert(
            id,
            Instance {
                def: def.clone(),
                args: resolved,
                returns,
                attempt: 1,
                prefer_node: None,
                exclude_node: None,
                sim_duration_us: opts.sim_duration_us.unwrap_or(self.default_sim_duration_us),
                seq,
                submitted_us,
            },
        );
        // A read of an already-poisoned version (its producer failed
        // permanently before this submission) can never be satisfied:
        // propagate the failure to this task right away.
        let reads_poisoned = core.instances[&id].reads().iter().any(|v| core.poisoned.contains(v));
        if reads_poisoned {
            fail_task_cascade(&self.shared, &mut core, id);
        } else if state == TaskState::Ready {
            core.sched.push_ready(ReadyEntry {
                task: id,
                constraint: def.constraint,
                alternatives: def.alternatives.iter().map(|v| v.constraint).collect(),
                priority: def.priority,
                seq,
                prefer_node: None,
                exclude_node: None,
            });
        }

        // Nudge the backend: place under the lock, hand the placed work to
        // the worker shards after dropping it (trace emission and shard
        // locks must not nest inside the core lock).
        match &self.backend {
            BackendHandle::Threaded(pool) => {
                let msgs = collect_dispatch(&self.shared, &mut core);
                drop(core);
                pool.enqueue(&self.shared, msgs);
            }
            BackendHandle::Distributed(mgr) => {
                let work = mgr.collect_dispatch_remote(&mut core);
                drop(core);
                mgr.send(work);
            }
            BackendHandle::Sim => {}
        }
        Ok(SubmitResult { task: id, returns: return_handles })
    }

    /// The paper's `compss_wait_on`: block (or drive the simulation) until
    /// the current version of `h` is available, then return its value.
    pub fn wait_on(&self, h: &DataHandle) -> Result<Value, WaitError> {
        let mut core = self.shared.core.lock();
        if !core.data.knows(*h) {
            return Err(WaitError::UnknownData(*h));
        }
        let target = core.data.current_version(*h);
        if self.shared.graph_enabled {
            core.graph.add_sync(target);
        }
        match &self.backend {
            BackendHandle::Sim => {
                crate::backend::sim::run_until(&self.shared, &mut core, |c| {
                    c.data.is_ready(target) || c.poisoned.contains(&target)
                });
                self.finish_wait(&core, *h, target)
            }
            BackendHandle::Threaded(_) | BackendHandle::Distributed(_) => loop {
                if core.data.is_ready(target) || core.poisoned.contains(&target) {
                    return self.finish_wait(&core, *h, target);
                }
                if core.data.producer(target).is_none() && core.graph.all_settled() {
                    return Err(WaitError::NeverWritten(*h));
                }
                self.shared.cv.wait_for(&mut core, std::time::Duration::from_millis(100));
            },
        }
    }

    fn finish_wait(
        &self,
        core: &Core,
        h: DataHandle,
        target: DataVersion,
    ) -> Result<Value, WaitError> {
        if core.poisoned.contains(&target) {
            return Err(WaitError::ProducerFailed(h));
        }
        match core.data.get(target) {
            Some(v) => Ok(v),
            None => Err(WaitError::NeverWritten(h)),
        }
    }

    /// Wait for every submitted task to settle (done or permanently failed).
    pub fn barrier(&self) {
        let mut core = self.shared.core.lock();
        match &self.backend {
            BackendHandle::Sim => {
                crate::backend::sim::run_until(&self.shared, &mut core, |c| c.graph.all_settled());
            }
            BackendHandle::Threaded(_) | BackendHandle::Distributed(_) => {
                while !core.graph.all_settled() {
                    self.shared.cv.wait_for(&mut core, std::time::Duration::from_millis(100));
                }
            }
        }
    }

    /// Current runtime time, µs: virtual for the simulated backend, wall
    /// time since start for the threaded one.
    pub fn now_us(&self) -> u64 {
        let core = self.shared.core.lock();
        match (&self.backend, &core.sim) {
            (BackendHandle::Sim, Some(sim)) => sim.now(),
            _ => self.shared.wall_us(),
        }
    }

    /// Tracing flag accessor.
    pub fn tracing_enabled(&self) -> bool {
        self.shared.trace.is_enabled()
    }

    /// The runtime's metrics registry: snapshot it on demand, or feed it to
    /// the `runmetrics` exporters (Prometheus text / JSON lines). The handle
    /// stays valid after the runtime is dropped.
    pub fn metrics(&self) -> Arc<runmetrics::MetricsRegistry> {
        Arc::clone(self.shared.metrics.registry())
    }

    /// Metrics flag accessor.
    pub fn metrics_enabled(&self) -> bool {
        self.shared.metrics.enabled()
    }

    /// Snapshot the trace, including synthetic `RuntimeReserved` intervals
    /// for worker-reserved cores so Gantt renders match the paper's figures.
    ///
    /// On the distributed backend this is the *merged* trace: worker-shipped
    /// execution spans are rebased onto the driver timeline with each
    /// worker's heartbeat clock-offset estimate
    /// ([`paratrace::merge::merge`]), replacing the driver's
    /// completion-time estimates wherever ground truth arrived.
    pub fn trace(&self) -> Vec<paratrace::Record> {
        let driver = {
            let _core = self.shared.core.lock();
            self.shared.trace.snapshot()
        };
        let mut records = match &self.backend {
            BackendHandle::Distributed(mgr) => {
                let (workers, bounds) = mgr.telemetry();
                paratrace::merge::merge(driver, workers, &bounds)
            }
            _ => driver,
        };
        let core = self.shared.core.lock();
        let horizon = records.iter().map(|r| r.end_time()).max().unwrap_or(0);
        if horizon > 0 {
            for &(node, c) in &core.sched.reserved {
                records.push(paratrace::Record::State {
                    core: paratrace::CoreId::new(node, c),
                    start: 0,
                    end: horizon,
                    state: paratrace::StateKind::RuntimeReserved,
                });
            }
        }
        records.sort_by_key(|r| (r.time(), r.core(), r.end_time()));
        records
    }

    /// Per-worker clock-sync estimates `(offset_us, rtt_us)` indexed by
    /// node id; empty on non-distributed backends.
    pub fn clock_stats(&self) -> Vec<(i64, u64)> {
        match &self.backend {
            BackendHandle::Distributed(mgr) => mgr.clock_stats(),
            _ => Vec::new(),
        }
    }

    /// DOT rendering of the dependency graph (paper Figure 3).
    pub fn dot(&self) -> String {
        self.shared.core.lock().graph.to_dot()
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> RuntimeStats {
        self.shared.core.lock().stats.clone()
    }

    /// Ids of permanently-failed tasks.
    pub fn failed_tasks(&self) -> Vec<TaskId> {
        self.shared.core.lock().graph.tasks_in_state(TaskState::Failed)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        match &mut self.backend {
            BackendHandle::Threaded(pool) => pool.shutdown(),
            BackendHandle::Distributed(mgr) => mgr.shutdown(),
            BackendHandle::Sim => {}
        }
    }
}

/// Shared completion logic: store outputs or drive the retry policy.
/// Returns the tasks that became ready. Called with the core locked, from
/// either backend.
pub(crate) fn complete_attempt(
    shared: &Shared,
    core: &mut Core,
    exec_id: u64,
    result: Result<Vec<Value>, TaskError>,
    now_us: u64,
    node_gone: bool,
) {
    let Some(run) = core.running.remove(&exec_id) else { return };
    let task = run.task;
    if !node_gone {
        core.sched.release(&run.placement, &run.constraint);
    }

    // Consult the failure injector (deterministic chaos for tests/benches).
    let injected = shared.failures.attempt_fails(task.0, run.attempt);
    let outcome = if injected { Err(TaskError::new("injected failure")) } else { result };

    match outcome {
        Ok(values) => {
            let inst = core.instances.get(&task).expect("instance exists");
            shared.metrics.record_task_latency(&inst.def.name, now_us.saturating_sub(run.start_us));
            let writes = inst.writes();
            assert_eq!(
                values.len(),
                writes.len(),
                "task '{}' returned {} values but declares {} outputs",
                inst.def.name,
                values.len(),
                writes.len()
            );
            let node = run.placement.node;
            for (v, value) in writes.iter().zip(values) {
                core.data.put(*v, value);
                core.data.add_location(*v, node);
            }
            core.stats.completed += 1;
            shared.metrics.completed.incr();
            core.stats.makespan_us = core.stats.makespan_us.max(now_us);
            core.unsettled = core.unsettled.saturating_sub(1);
            let newly_ready = core.graph.set_done(task);
            for t in newly_ready {
                let inst = &core.instances[&t];
                core.sched.push_ready(ReadyEntry {
                    task: t,
                    constraint: inst.def.constraint,
                    alternatives: inst.def.alternatives.iter().map(|v| v.constraint).collect(),
                    priority: inst.def.priority,
                    seq: inst.seq,
                    prefer_node: inst.prefer_node,
                    exclude_node: inst.exclude_node,
                });
            }
        }
        Err(err) => {
            core.stats.failed_attempts += 1;
            shared.metrics.failed_attempts.incr();
            shared.trace.event(
                paratrace::CoreId::new(
                    run.placement.node,
                    run.placement.cores.first().copied().unwrap_or(0),
                ),
                now_us,
                paratrace::EventKind::TaskFailure {
                    task: paratrace::TaskRef::new(
                        task.0,
                        Arc::clone(&core.instances[&task].def.name),
                    ),
                    attempt: run.attempt,
                },
            );
            match shared.retry.on_failure(run.attempt, node_gone) {
                RetryDecision::GiveUp => {
                    let _ = err;
                    fail_task_cascade(shared, core, task);
                }
                decision => {
                    shared.metrics.retried.incr();
                    // "Move to another node" is only meaningful when some
                    // other node could host the task; on a single capable
                    // node the retry stays local instead of deadlocking.
                    let other_exists = {
                        let inst = &core.instances[&task];
                        inst.def
                            .variant_constraints()
                            .iter()
                            .any(|c| core.sched.satisfiable_excluding(c, run.placement.node))
                    };
                    let inst = core.instances.get_mut(&task).expect("instance exists");
                    inst.attempt = run.attempt + 1;
                    match decision {
                        RetryDecision::RetrySameNode => {
                            inst.prefer_node = Some(run.placement.node);
                            inst.exclude_node = None;
                        }
                        RetryDecision::RetryOtherNode => {
                            inst.prefer_node = None;
                            inst.exclude_node = other_exists.then_some(run.placement.node);
                        }
                        RetryDecision::GiveUp => unreachable!(),
                    }
                    core.graph.set_ready(task);
                    let inst = &core.instances[&task];
                    core.sched.push_ready(ReadyEntry {
                        task,
                        constraint: inst.def.constraint,
                        alternatives: inst.def.alternatives.iter().map(|v| v.constraint).collect(),
                        priority: inst.def.priority,
                        seq: inst.seq,
                        prefer_node: inst.prefer_node,
                        exclude_node: inst.exclude_node,
                    });
                }
            }
        }
    }
}

/// Permanently fail `task` and transitively fail all dependents, poisoning
/// every version they would have produced ("the failure of task does not
/// affect the other tasks unless there are some dependencies").
pub(crate) fn fail_task_cascade(shared: &Shared, core: &mut Core, task: TaskId) {
    let mut stack = vec![task];
    let mut seen: HashSet<TaskId> = HashSet::new();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        if core.graph.state(t) == Some(TaskState::Done) {
            continue;
        }
        core.graph.set_failed(t);
        core.stats.failed += 1;
        shared.metrics.failed.incr();
        core.unsettled = core.unsettled.saturating_sub(1);
        let writes: Vec<DataVersion> =
            core.instances.get(&t).map(|i| i.writes()).unwrap_or_default();
        for v in &writes {
            core.poisoned.insert(*v);
        }
        // Any instance reading a poisoned version can never run.
        let dependents: Vec<TaskId> = core
            .instances
            .iter()
            .filter(|(id, inst)| {
                !seen.contains(id)
                    && !matches!(
                        core.graph.state(**id),
                        Some(TaskState::Done) | Some(TaskState::Failed)
                    )
                    && inst.reads().iter().any(|v| writes.contains(v))
            })
            .map(|(&id, _)| id)
            .collect();
        stack.extend(dependents);
    }
}
