//! Ergonomic helpers over the raw runtime API.
//!
//! PyCOMPSs users write `result = compss_wait_on(results)` over whole lists;
//! these helpers give the Rust equivalent plus typed handles so application
//! code doesn't juggle `downcast_ref` everywhere.

use std::marker::PhantomData;

use crate::data::{DataHandle, Value};
use crate::runtime::{Runtime, WaitError};

/// A [`DataHandle`] that remembers its value type.
#[derive(Debug)]
pub struct TypedHandle<T> {
    /// The underlying untyped handle.
    pub handle: DataHandle,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls: `derive` would bound `T: Clone/Copy` unnecessarily.
impl<T> Clone for TypedHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TypedHandle<T> {}

impl<T: Send + Sync + 'static> TypedHandle<T> {
    /// Wrap an untyped handle. The caller asserts the type.
    pub fn new(handle: DataHandle) -> Self {
        TypedHandle { handle, _marker: PhantomData }
    }

    /// Wait for the value and clone it out.
    pub fn get(&self, rt: &Runtime) -> Result<T, WaitError>
    where
        T: Clone,
    {
        let v = rt.wait_on(&self.handle)?;
        Ok(v.downcast_ref::<T>().expect("TypedHandle type mismatch").clone())
    }
}

impl<T> From<DataHandle> for TypedHandle<T> {
    fn from(handle: DataHandle) -> Self {
        TypedHandle { handle, _marker: PhantomData }
    }
}

/// Wait on a whole list of handles, PyCOMPSs-style
/// (`results = compss_wait_on(results)` in the paper's Listing 2).
pub fn wait_on_all(rt: &Runtime, handles: &[DataHandle]) -> Result<Vec<Value>, WaitError> {
    handles.iter().map(|h| rt.wait_on(h)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeConfig;
    use crate::task::{ArgSpec, Constraint};

    #[test]
    fn typed_handle_roundtrip() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(2));
        let inc = rt.register("inc", Constraint::cpus(1), 1, |_, inputs| {
            let x: f64 = *inputs[0].downcast_ref::<f64>().unwrap();
            Ok(vec![Value::new(x + 1.0)])
        });
        let input = rt.literal(1.5f64);
        let out = rt.submit(&inc, vec![ArgSpec::In(input)]).unwrap();
        let typed: TypedHandle<f64> = out.returns[0].into();
        assert_eq!(typed.get(&rt).unwrap(), 2.5);
        // Copy semantics regardless of T
        let copy = typed;
        assert_eq!(copy.get(&rt).unwrap(), 2.5);
    }

    #[test]
    fn wait_on_all_collects_in_order() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(4));
        let id = rt.register("id", Constraint::cpus(1), 1, |_, inputs| Ok(vec![inputs[0].clone()]));
        let outs: Vec<DataHandle> = (0..10i64)
            .map(|i| {
                let h = rt.literal(i);
                rt.submit(&id, vec![ArgSpec::In(h)]).unwrap().returns[0]
            })
            .collect();
        let values = wait_on_all(&rt, &outs).unwrap();
        let ints: Vec<i64> = values.iter().map(|v| *v.downcast_ref::<i64>().unwrap()).collect();
        assert_eq!(ints, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn typed_handle_wrong_type_panics() {
        let rt = Runtime::threaded(RuntimeConfig::single_node(1));
        let h = rt.literal(7i32);
        let typed: TypedHandle<String> = TypedHandle::new(h);
        let _ = typed.get(&rt);
    }
}
