//! `rcompss` — a task-based programming model and runtime, the Rust analogue
//! of [PyCOMPSs/COMPSs] that the paper builds its HPO scheme on.
//!
//! The programming model mirrors the paper's §3:
//!
//! * **tasks** are registered functions with resource *constraints*
//!   (`@task` + `@constraint` decorators → [`Runtime::register`] +
//!   [`task::Constraint`]);
//! * parameters carry *directions* (IN / OUT / INOUT) from which the runtime
//!   builds a **dynamic data-dependency graph** at execution time
//!   ([`graph`]), with versioned data items rendered `dNvM` exactly like the
//!   paper's Figure 3;
//! * execution is **asynchronous**: submitting returns future-like
//!   [`data::DataHandle`]s, and [`Runtime::wait_on`] is the paper's
//!   `compss_wait_on` synchronisation point;
//! * the **scheduler** places ready tasks on available computing units,
//!   enforcing CPU/GPU affinity (each running task owns an explicit set of
//!   core ids — no two concurrent tasks share one);
//! * **fault tolerance** replays the paper's policy: a failed task is
//!   retried on the same node first, then restarted on a different node
//!   ([`fault`]);
//! * the runtime is instrumented with `paratrace` (the Extrae analogue) and
//!   can export the task graph as Graphviz DOT;
//! * the runtime keeps **live metrics** (`runmetrics`): lock-free counters,
//!   queue-depth gauges and latency histograms covering submission,
//!   scheduling decisions, dependency waits, per-function task latency and
//!   retries — snapshot via [`Runtime::metrics`], export as Prometheus text
//!   or JSON lines. Like tracing, metrics toggle with a config flag and
//!   cost one relaxed atomic load per call site when off.
//!
//! Two execution backends share all of the above:
//!
//! * [`backend::threaded`] — a real thread pool providing genuine intra-node
//!   parallelism; used when tasks do real work (training actual models).
//! * [`backend::sim`] — a deterministic discrete-event backend over the
//!   `cluster` crate's virtual clusters; used to reproduce the paper's
//!   multi-node experiments (Figures 4–6, 9) at MareNostrum scale on a
//!   laptop.
//! * [`backend::distributed`] — real execution on remote worker daemons
//!   over TCP via the `rnet` wire protocol: the driver ships task inputs to
//!   [`backend::distributed::WorkerServer`] processes, pipelines submits
//!   under per-worker windows, detects dead workers by heartbeat, and
//!   replays their in-flight tasks on the survivors. Values cross the wire
//!   through the [`codec`] registry; workers resolve task names through a
//!   shared [`registry::TaskRegistry`].
//!
//! [PyCOMPSs/COMPSs]: https://compss.bsc.es
//!
//! # Example
//!
//! ```
//! use rcompss::{ArgSpec, Constraint, Runtime, RuntimeConfig, Value};
//!
//! let rt = Runtime::threaded(RuntimeConfig::single_node(4));
//! let double = rt.register("double", Constraint::cpus(1), 1, |_ctx, inputs| {
//!     let x: i64 = *inputs[0].downcast_ref::<i64>().unwrap();
//!     Ok(vec![Value::new(x * 2)])
//! });
//! let input = rt.literal(21i64);
//! let out = rt.submit(&double, vec![ArgSpec::In(input)]).unwrap();
//! let result = rt.wait_on(&out.returns[0]).unwrap();
//! assert_eq!(*result.downcast_ref::<i64>().unwrap(), 42);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod backend;
pub(crate) mod blocks;
pub mod codec;
pub mod data;
pub mod fault;
pub mod graph;
pub(crate) mod metrics;
pub mod registry;
pub mod runtime;
pub mod scheduler;
pub mod snapshot;
pub mod task;

pub use api::{wait_on_all, TypedHandle};
pub use backend::distributed::{
    connect_workers, DistributedConfig, WorkerBootstrap, WorkerConfig, WorkerHandle, WorkerServer,
};
pub use codec::register_codec;
pub use data::{DataHandle, DataVersion, Value};
pub use fault::RetryPolicy;
pub use registry::TaskRegistry;
pub use runtime::{
    Runtime, RuntimeConfig, RuntimeStats, SubmitError, SubmitOpts, SubmitResult, WaitError,
};
pub use task::{ArgSpec, Constraint, Direction, TaskContext, TaskDef, TaskError, TaskId};
