//! Resource pool and ready-queue scheduling.
//!
//! The runtime "is able to schedule the tasks in the available computational
//! resources, acting as an interface with the different computing resources"
//! (paper §3). This module owns the cluster-side state: which cores/GPUs of
//! which node are free, which are reserved for the runtime worker itself,
//! and which ready task should start next.
//!
//! Placement policy, in order:
//! 1. tasks flagged `priority=True` first (the paper's scheduler hint);
//! 2. FIFO among equals (submission order);
//! 3. among feasible nodes, prefer a retry's previous node when the retry
//!    policy asks for it, avoid explicitly excluded nodes, then pick the
//!    node holding the most input data (locality), then lowest node id.
//!
//! Cores and GPUs are allocated as explicit id sets, which is how the
//! runtime enforces the CPU-affinity guarantee demonstrated in Figure 4.
//!
//! The ready queue is an *indexed ready-set*: entries live in a B-tree
//! ordered by the pop key (priority desc, seq asc), so finding the next
//! candidate is O(log n) instead of a full sort per pop, and a
//! constraint-class memo skips entries whose resource demand was already
//! found unplaceable since the last release. Dispatching a burst of N
//! ready tasks is O(N log N) where the former linear scan was O(N²). The
//! pop *order* is bit-identical to the old scan — the deterministic sim
//! backend and all recorded makespans depend on that, and
//! [`Scheduler::pop_placeable_reference`] keeps the plain linear scan
//! around as a differential-testing oracle.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use cluster::Cluster;

use crate::task::{Constraint, TaskId};

/// Per-node allocatable state.
#[derive(Debug, Clone)]
pub struct NodeResources {
    /// Free CPU core ids.
    pub free_cores: BTreeSet<u32>,
    /// Free GPU ids.
    pub free_gpus: BTreeSet<u32>,
    /// Memory left, GiB.
    pub free_mem_gib: u32,
    /// Whether the node is alive.
    pub alive: bool,
    /// Relative per-core speed (from the node spec).
    pub core_perf: f64,
    /// Allocatable core count at full idle (total minus reserved).
    pub capacity_cores: u32,
    /// Lowest allocatable core id (everything below is runtime-reserved);
    /// [`Scheduler::revive_node`] refills the pool from here.
    pub first_core: u32,
    /// GPU count.
    pub capacity_gpus: u32,
    /// Memory capacity, GiB.
    pub capacity_mem_gib: u32,
}

/// A concrete placement decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Primary node (rank 0 of a `@multinode` allocation).
    pub node: u32,
    /// Exact core ids granted on the primary node.
    pub cores: Vec<u32>,
    /// Exact GPU ids granted on the primary node.
    pub gpus: Vec<u32>,
    /// Which task implementation was chosen (0 = primary; the paper's
    /// `@implement` alternatives follow).
    pub variant: usize,
    /// Additional nodes of a `@multinode` task: `(node, cores, gpus)`.
    pub extra: Vec<(u32, Vec<u32>, Vec<u32>)>,
}

impl Placement {
    /// Whether the placement uses `node` (primary or extra).
    pub fn involves(&self, node: u32) -> bool {
        self.node == node || self.extra.iter().any(|(n, _, _)| *n == node)
    }

    /// Every `(node, cores)` pair of the allocation, primary first.
    pub fn node_cores(&self) -> Vec<(u32, &[u32])> {
        std::iter::once((self.node, self.cores.as_slice()))
            .chain(self.extra.iter().map(|(n, c, _)| (*n, c.as_slice())))
            .collect()
    }

    /// All node ids, primary first.
    pub fn nodes(&self) -> Vec<u32> {
        self.node_cores().iter().map(|&(n, _)| n).collect()
    }
}

/// An entry waiting in the ready queue.
#[derive(Debug, Clone)]
pub struct ReadyEntry {
    /// The task.
    pub task: TaskId,
    /// Resource demand of the primary implementation.
    pub constraint: Constraint,
    /// Resource demands of `@implement` alternatives, tried after the
    /// primary when a node can't host it.
    pub alternatives: Vec<Constraint>,
    /// Scheduler hint (paper: `priority=True`).
    pub priority: bool,
    /// Submission sequence for FIFO ordering.
    pub seq: u64,
    /// Retry placement preference (same node first).
    pub prefer_node: Option<u32>,
    /// Retry placement exclusion (failed there twice).
    pub exclude_node: Option<u32>,
}

impl ReadyEntry {
    /// Constraints of every implementation, primary first.
    pub fn variant_constraints(&self) -> Vec<Constraint> {
        std::iter::once(self.constraint).chain(self.alternatives.iter().copied()).collect()
    }
}

/// Pop-order key: `(!priority, seq)` — priority entries sort first
/// (`false < true`), FIFO among equals. `seq` is unique per submission, so
/// the key never collides.
type ReadyKey = (bool, u64);

/// Feasibility class of a ready entry. Two entries with the same class are
/// placeable under exactly the same pool states: feasibility depends only
/// on the constraint set and the exclusion (retry preference and locality
/// merely rank already-feasible nodes, they never create or destroy
/// feasibility). The common single-implementation case keeps
/// `alternatives` empty, so building a key does not allocate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ClassKey {
    constraint: Constraint,
    alternatives: Vec<Constraint>,
    exclude_node: Option<u32>,
}

impl ClassKey {
    fn of(entry: &ReadyEntry) -> Self {
        ClassKey {
            constraint: entry.constraint,
            alternatives: entry.alternatives.clone(),
            exclude_node: entry.exclude_node,
        }
    }
}

/// The scheduler: node states + indexed ready-set.
#[derive(Debug)]
pub struct Scheduler {
    nodes: Vec<NodeResources>,
    /// Ready entries ordered by pop key (priority desc, seq asc).
    ready: BTreeMap<ReadyKey, ReadyEntry>,
    /// Ready keys bucketed by feasibility class: one placement probe per
    /// *class* answers for every entry in the bucket.
    by_class: HashMap<ClassKey, BTreeSet<ReadyKey>>,
    /// Constraint classes proven unplaceable since the last resource
    /// release. Resources only shrink between releases, so a miss stays a
    /// miss and whole buckets can be skipped without re-probing.
    infeasible: HashSet<ClassKey>,
    /// Every class currently in the ready-set is known infeasible: pops are
    /// O(1) until a release or a new-class push. This is what keeps a
    /// submission storm against a full cluster linear instead of quadratic.
    all_blocked: bool,
    /// Reserved `(node, core)` pairs, for rendering.
    pub reserved: Vec<(u32, u32)>,
}

impl Scheduler {
    /// Build from a cluster description, reserving `reserved_cores`
    /// (node, n_cores) pairs for the runtime worker. Reserved cores get the
    /// lowest ids, matching the `ClusterSim` convention.
    pub fn new(cluster: &Cluster, reserved_cores: &[(u32, u32)]) -> Self {
        let mut reserved_pairs = Vec::new();
        let nodes = cluster
            .nodes
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let reserve = reserved_cores
                    .iter()
                    .filter(|&&(n, _)| n == i as u32)
                    .map(|&(_, c)| c)
                    .sum::<u32>()
                    .min(spec.cores);
                for c in 0..reserve {
                    reserved_pairs.push((i as u32, c));
                }
                NodeResources {
                    free_cores: (reserve..spec.cores).collect(),
                    free_gpus: (0..spec.gpu_count()).collect(),
                    free_mem_gib: spec.mem_gib,
                    alive: true,
                    core_perf: spec.core_perf,
                    capacity_cores: spec.cores - reserve,
                    first_core: reserve,
                    capacity_gpus: spec.gpu_count(),
                    capacity_mem_gib: spec.mem_gib,
                }
            })
            .collect();
        Scheduler {
            nodes,
            ready: BTreeMap::new(),
            by_class: HashMap::new(),
            infeasible: HashSet::new(),
            all_blocked: false,
            reserved: reserved_pairs,
        }
    }

    /// Whether the cluster could *ever* satisfy `c` (at full capacity,
    /// ignoring current usage but honouring reservations). A `@multinode`
    /// constraint needs `c.nodes` distinct capable nodes. Submissions that
    /// fail this check can never run — the runtime rejects them.
    pub fn satisfiable(&self, c: &Constraint) -> bool {
        let capable = self
            .nodes
            .iter()
            .filter(|n| {
                n.alive
                    && n.capacity_cores >= c.cpus
                    && n.capacity_gpus >= c.gpus
                    && n.capacity_mem_gib >= c.mem_gib
            })
            .count();
        capable >= c.nodes.max(1) as usize
    }

    /// Enqueue a ready task.
    pub fn push_ready(&mut self, entry: ReadyEntry) {
        let key = (!entry.priority, entry.seq);
        let class = ClassKey::of(&entry);
        // An entry of a class already proven unplaceable cannot unblock the
        // set; anything else might.
        if self.all_blocked && !self.infeasible.contains(&class) {
            self.all_blocked = false;
        }
        self.by_class.entry(class).or_default().insert(key);
        let evicted = self.ready.insert(key, entry);
        debug_assert!(evicted.is_none(), "ready keys are unique per submission");
    }

    /// Remove `key` from both the ordered set and its class bucket.
    fn remove_ready(&mut self, key: ReadyKey) -> ReadyEntry {
        let entry = self.ready.remove(&key).expect("popped key is present");
        let class = ClassKey::of(&entry);
        if let Some(bucket) = self.by_class.get_mut(&class) {
            bucket.remove(&key);
            if bucket.is_empty() {
                self.by_class.remove(&class);
            }
        }
        entry
    }

    /// Number of tasks waiting for resources.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Pop the best placeable ready task, if any, together with its
    /// placement. `locality` scores a `(task, node)` pair with any `Ord`
    /// value (higher = better); among equally feasible nodes the highest
    /// score wins, with ties broken toward the lowest node id. Backends
    /// pass a plain resident-input count, or a composite
    /// (fewest-bytes-to-move, most-resident) score for transfer-aware
    /// placement — see `DataRegistry::transfer_score`.
    ///
    /// Equivalent to walking the ready-set in key order (priority desc, seq
    /// asc) and taking the first entry with a feasible
    /// `(node, implementation)` pair — but probed *per feasibility class*:
    /// candidate classes are visited in order of their earliest key, one
    /// placement probe decides a whole bucket, and classes proven
    /// unplaceable stay memoised until the next release. Because
    /// feasibility is uniform within a class, the first feasible class's
    /// earliest entry *is* the globally first placeable entry, so the pop
    /// order is bit-identical to the linear scan
    /// ([`Scheduler::pop_placeable_reference`] keeps that scan around as a
    /// differential-testing oracle). Cost is O(classes · log) per pop and
    /// O(1) while the whole set is known blocked, where the linear scan
    /// paid O(ready) every call.
    pub fn pop_placeable<S: Ord>(
        &mut self,
        locality: impl Fn(TaskId, u32) -> S,
    ) -> Option<(ReadyEntry, Placement)> {
        if self.all_blocked {
            return None;
        }
        // Candidate classes ordered by their earliest ready key.
        let mut candidates: Vec<(ReadyKey, ClassKey)> = self
            .by_class
            .iter()
            .filter(|(class, _)| !self.infeasible.contains(*class))
            .map(|(class, keys)| (*keys.first().expect("buckets are non-empty"), class.clone()))
            .collect();
        candidates.sort_unstable_by_key(|&(key, _)| key);
        let mut found: Option<(ReadyKey, u32, usize)> = None;
        for (key, class) in candidates {
            let entry = &self.ready[&key];
            match choose_node(&self.nodes, entry, &locality) {
                Some((node, variant)) => {
                    found = Some((key, node, variant));
                    break;
                }
                None => {
                    self.infeasible.insert(class);
                }
            }
        }
        let Some((key, node, variant)) = found else {
            // Every class probed infeasible: stay O(1) until something
            // changes (release / new-class push).
            self.all_blocked = !self.ready.is_empty();
            return None;
        };
        let entry = self.remove_ready(key);
        let constraint = entry.variant_constraints()[variant];
        let placement = self.allocate(node, &constraint, variant);
        Some((entry, placement))
    }

    /// The pre-index linear scan, kept as a differential-testing oracle:
    /// same contract as [`Scheduler::pop_placeable`], no class index. The
    /// proptest suite asserts both pop identical sequences.
    #[doc(hidden)]
    pub fn pop_placeable_reference<S: Ord>(
        &mut self,
        locality: impl Fn(TaskId, u32) -> S,
    ) -> Option<(ReadyEntry, Placement)> {
        let mut found: Option<(ReadyKey, u32, usize)> = None;
        for (key, entry) in &self.ready {
            if let Some((node, variant)) = choose_node(&self.nodes, entry, &locality) {
                found = Some((*key, node, variant));
                break;
            }
        }
        let (key, node, variant) = found?;
        let entry = self.remove_ready(key);
        let constraint = entry.variant_constraints()[variant];
        let placement = self.allocate(node, &constraint, variant);
        Some((entry, placement))
    }

    /// Take `(cores, gpus, mem)` from one node's free pools.
    fn take_from_node(&mut self, node: u32, c: &Constraint) -> (Vec<u32>, Vec<u32>) {
        let n = &mut self.nodes[node as usize];
        let cores: Vec<u32> = n.free_cores.iter().copied().take(c.cpus as usize).collect();
        for core in &cores {
            n.free_cores.remove(core);
        }
        let gpus: Vec<u32> = n.free_gpus.iter().copied().take(c.gpus as usize).collect();
        for g in &gpus {
            n.free_gpus.remove(g);
        }
        n.free_mem_gib -= c.mem_gib;
        (cores, gpus)
    }

    fn allocate(&mut self, node: u32, c: &Constraint, variant: usize) -> Placement {
        let (cores, gpus) = self.take_from_node(node, c);
        let mut extra = Vec::new();
        if c.nodes > 1 {
            let others: Vec<u32> = (0..self.nodes.len() as u32)
                .filter(|&j| {
                    let n = &self.nodes[j as usize];
                    j != node
                        && n.alive
                        && n.free_cores.len() >= c.cpus as usize
                        && n.free_gpus.len() >= c.gpus as usize
                        && n.free_mem_gib >= c.mem_gib
                })
                .take(c.nodes as usize - 1)
                .collect();
            debug_assert_eq!(others.len(), c.nodes as usize - 1, "choose_node vetted this");
            for j in others {
                let (jc, jg) = self.take_from_node(j, c);
                extra.push((j, jc, jg));
            }
        }
        Placement { node, cores, gpus, variant, extra }
    }

    /// Return the resources of a finished/killed placement to the pool.
    /// Dead nodes are skipped. Freed resources can make previously
    /// unplaceable constraint classes feasible again, so the class memo is
    /// reset here.
    pub fn release(&mut self, p: &Placement, c: &Constraint) {
        self.infeasible.clear();
        self.all_blocked = false;
        let mut give_back = |node: u32, cores: &[u32], gpus: &[u32]| {
            let n = &mut self.nodes[node as usize];
            if !n.alive {
                return;
            }
            n.free_cores.extend(cores.iter().copied());
            n.free_gpus.extend(gpus.iter().copied());
            n.free_mem_gib += c.mem_gib;
        };
        give_back(p.node, &p.cores, &p.gpus);
        for (node, cores, gpus) in &p.extra {
            give_back(*node, cores, gpus);
        }
    }

    /// Kill a node: mark dead and wipe its free pools.
    pub fn kill_node(&mut self, node: u32) {
        if let Some(n) = self.nodes.get_mut(node as usize) {
            n.alive = false;
            n.free_cores.clear();
            n.free_gpus.clear();
            n.free_mem_gib = 0;
        }
    }

    /// Bring a killed node back at full idle capacity — the distributed
    /// backend's reconnect path. Any task the node was running was already
    /// failed over when it died, so the free pools refill completely.
    pub fn revive_node(&mut self, node: u32) {
        let Some(n) = self.nodes.get_mut(node as usize) else { return };
        n.alive = true;
        n.free_cores = (n.first_core..n.first_core + n.capacity_cores).collect();
        n.free_gpus = (0..n.capacity_gpus).collect();
        n.free_mem_gib = n.capacity_mem_gib;
        // Capacity changed: previously unplaceable classes may fit again.
        self.infeasible.clear();
        self.all_blocked = false;
    }

    /// Remove and return every ready task that can no longer be satisfied
    /// by the surviving cluster at *full capacity* — no implementation
    /// variant fits any alive node. After a node death the runtime fails
    /// these immediately instead of letting a barrier hang forever.
    pub fn drain_unsatisfiable(&mut self) -> Vec<ReadyEntry> {
        let doomed: Vec<ReadyKey> = self
            .ready
            .iter()
            .filter(|(_, e)| !e.variant_constraints().iter().any(|c| self.satisfiable(c)))
            .map(|(k, _)| *k)
            .collect();
        doomed.into_iter().map(|k| self.remove_ready(k)).collect()
    }

    /// Whether `c` could be satisfied with `node` barred from being the
    /// primary host. Used by the retry policy: "move to another node" only
    /// makes sense when another capable node exists; otherwise the retry
    /// stays local.
    pub fn satisfiable_excluding(&self, c: &Constraint, node: u32) -> bool {
        let capable = self
            .nodes
            .iter()
            .enumerate()
            .filter(|&(i, n)| {
                i as u32 != node
                    && n.alive
                    && n.capacity_cores >= c.cpus
                    && n.capacity_gpus >= c.gpus
                    && n.capacity_mem_gib >= c.mem_gib
            })
            .count();
        capable >= c.nodes.max(1) as usize
    }

    /// Cores currently allocated to running tasks on `node`.
    pub fn in_use_cores(&self, node: u32) -> u32 {
        let n = &self.nodes[node as usize];
        if n.alive {
            n.capacity_cores - n.free_cores.len() as u32
        } else {
            0
        }
    }

    /// GPUs currently allocated to running tasks on `node`.
    pub fn in_use_gpus(&self, node: u32) -> u32 {
        let n = &self.nodes[node as usize];
        if n.alive {
            n.capacity_gpus - n.free_gpus.len() as u32
        } else {
            0
        }
    }

    /// Direct access for tests and backends.
    pub fn node(&self, node: u32) -> &NodeResources {
        &self.nodes[node as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Pick the best `(node, implementation)` for `entry` on the current pool
/// state, or `None` when nothing fits. Policy: the retry-preferred node wins
/// outright if any implementation fits there; otherwise the feasible node
/// with the most resident input data (ties to the lowest node id). Each
/// node tries the primary constraint first, then `@implement` alternatives.
fn choose_node<S: Ord>(
    nodes: &[NodeResources],
    entry: &ReadyEntry,
    locality: &impl Fn(TaskId, u32) -> S,
) -> Option<(u32, usize)> {
    let variants = entry.variant_constraints();
    let node_fits = |i: u32, c: &Constraint| -> bool {
        let n = &nodes[i as usize];
        n.alive
            && Some(i) != entry.exclude_node
            && n.free_cores.len() >= c.cpus as usize
            && n.free_gpus.len() >= c.gpus as usize
            && n.free_mem_gib >= c.mem_gib
    };
    // First implementation variant that fits on node `i` (a `@multinode`
    // variant also needs enough peer nodes to fill the allocation).
    let first_fitting = |i: u32| -> Option<usize> {
        variants.iter().position(|c| {
            node_fits(i, c)
                && (c.nodes <= 1
                    || (0..nodes.len() as u32).filter(|&j| j != i && node_fits(j, c)).count()
                        >= c.nodes as usize - 1)
        })
    };
    if let Some(p) = entry.prefer_node {
        if let Some(v) = first_fitting(p) {
            return Some((p, v));
        }
    }
    (0..nodes.len() as u32)
        .filter_map(|i| first_fitting(i).map(|v| (i, v)))
        .max_by_key(|&(i, _)| (locality(entry.task, i), std::cmp::Reverse(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::NodeSpec;

    fn sched(nodes: usize) -> Scheduler {
        Scheduler::new(&Cluster::homogeneous(nodes, NodeSpec::marenostrum4()), &[])
    }

    fn entry(task: u64, cpus: u32, seq: u64) -> ReadyEntry {
        ReadyEntry {
            task: TaskId(task),
            constraint: Constraint::cpus(cpus),
            alternatives: Vec::new(),
            priority: false,
            seq,
            prefer_node: None,
            exclude_node: None,
        }
    }

    #[test]
    fn revive_restores_full_capacity_after_kill() {
        let mut s =
            Scheduler::new(&Cluster::homogeneous(2, NodeSpec::marenostrum4()), &[(0, 1), (1, 1)]);
        let cap = s.node(1).capacity_cores;
        s.push_ready(entry(1, 2, 0));
        let (e, p) = s.pop_placeable(|_, _| 0).unwrap();
        s.kill_node(p.node);
        assert!(!s.node(p.node).alive);
        assert_eq!(s.node(p.node).free_cores.len(), 0);
        s.revive_node(p.node);
        let n = s.node(p.node);
        assert!(n.alive);
        assert_eq!(n.free_cores.len() as u32, cap);
        // Reserved cores stay reserved: core 0 never re-enters the pool.
        assert!(!n.free_cores.contains(&0));
        assert_eq!(n.free_mem_gib, n.capacity_mem_gib);
        let _ = e;
    }

    #[test]
    fn drain_unsatisfiable_removes_only_doomed_entries() {
        let mut s = sched(2);
        let fat = NodeSpec::marenostrum4().cores + 1;
        s.push_ready(entry(1, 1, 0));
        s.push_ready(entry(2, fat, 1)); // never fits — rejected path
        s.push_ready(entry(3, 1, 2));
        let drained = s.drain_unsatisfiable();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].task, TaskId(2));
        assert_eq!(s.ready_len(), 2);
        // Kill both nodes: everything left becomes unsatisfiable.
        s.kill_node(0);
        s.kill_node(1);
        let drained = s.drain_unsatisfiable();
        assert_eq!(drained.len(), 2);
        assert_eq!(s.ready_len(), 0);
    }

    #[test]
    fn fifo_order_without_priority() {
        let mut s = sched(1);
        s.push_ready(entry(1, 1, 1));
        s.push_ready(entry(2, 1, 0));
        let (e, _) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(e.task, TaskId(2), "lower seq first");
    }

    #[test]
    fn priority_jumps_the_queue() {
        let mut s = sched(1);
        s.push_ready(entry(1, 1, 0));
        let mut p = entry(2, 1, 1);
        p.priority = true;
        s.push_ready(p);
        let (e, _) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(e.task, TaskId(2));
    }

    #[test]
    fn allocation_grants_disjoint_core_sets() {
        let mut s = sched(1);
        s.push_ready(entry(1, 4, 0));
        s.push_ready(entry(2, 4, 1));
        let (_, p1) = s.pop_placeable(|_, _| 0).unwrap();
        let (_, p2) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(p1.cores.len(), 4);
        assert_eq!(p2.cores.len(), 4);
        assert!(p1.cores.iter().all(|c| !p2.cores.contains(c)), "disjoint affinity");
    }

    #[test]
    fn exhausted_node_defers_tasks() {
        let mut s = sched(1); // 48 cores
        s.push_ready(entry(1, 48, 0));
        s.push_ready(entry(2, 1, 1));
        let (e1, p1) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(e1.task, TaskId(1));
        assert!(s.pop_placeable(|_, _| 0).is_none(), "node full");
        s.release(&p1, &e1.constraint);
        let (e2, _) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(e2.task, TaskId(2));
    }

    #[test]
    fn full_node_does_not_block_smaller_later_task() {
        // Task 1 wants 48 cores but 4 are taken; task 2 wants 4 and fits.
        let mut s = sched(1);
        s.push_ready(entry(0, 4, 0));
        let _ = s.pop_placeable(|_, _| 0).unwrap();
        s.push_ready(entry(1, 48, 1));
        s.push_ready(entry(2, 4, 2));
        let (e, _) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(e.task, TaskId(2), "backfilling keeps the node busy");
        assert_eq!(s.ready_len(), 1);
    }

    #[test]
    fn reservation_shrinks_and_labels_cores() {
        let cluster = Cluster::homogeneous(1, NodeSpec::marenostrum4());
        let s = Scheduler::new(&cluster, &[(0, 24)]);
        assert_eq!(s.node(0).free_cores.len(), 24);
        assert!(s.node(0).free_cores.iter().all(|&c| c >= 24));
        assert_eq!(s.reserved.len(), 24);
        assert!(s.satisfiable(&Constraint::cpus(24)));
        assert!(!s.satisfiable(&Constraint::cpus(25)), "reservation caps capacity");
    }

    #[test]
    fn satisfiable_considers_gpus_and_memory() {
        let s = sched(2);
        assert!(s.satisfiable(&Constraint::cpus(48)));
        assert!(!s.satisfiable(&Constraint::cpus(49)));
        assert!(!s.satisfiable(&Constraint::cpus(1).with_gpus(1)), "MN4 has no GPUs");
        assert!(!s.satisfiable(&Constraint::cpus(1).with_mem_gib(1000)));
        let gpu = Scheduler::new(&Cluster::homogeneous(1, NodeSpec::cte_power9()), &[]);
        assert!(gpu.satisfiable(&Constraint::cpus(1).with_gpus(4)));
        assert!(!gpu.satisfiable(&Constraint::cpus(1).with_gpus(5)));
    }

    #[test]
    fn prefer_and_exclude_nodes() {
        let mut s = sched(3);
        let mut e = entry(1, 1, 0);
        e.prefer_node = Some(2);
        s.push_ready(e);
        let (_, p) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(p.node, 2);

        let mut e = entry(2, 1, 1);
        e.exclude_node = Some(0);
        s.push_ready(e);
        let (_, p) = s.pop_placeable(|_, _| 0).unwrap();
        assert_ne!(p.node, 0);
    }

    #[test]
    fn locality_breaks_ties() {
        let mut s = sched(3);
        s.push_ready(entry(1, 1, 0));
        let (_, p) = s.pop_placeable(|_, node| if node == 1 { 5 } else { 0 }).unwrap();
        assert_eq!(p.node, 1, "node with resident data wins");
    }

    #[test]
    fn score_ties_break_toward_lowest_node_id() {
        // Equal locality everywhere → node 0, both for the plain count and
        // for a transfer-aware (Reverse(bytes), resident) composite score.
        let mut s = sched(3);
        s.push_ready(entry(1, 1, 0));
        let (_, p) = s.pop_placeable(|_, _| 3usize).unwrap();
        assert_eq!(p.node, 0, "uniform locality falls back to lowest id");
        s.push_ready(entry(2, 1, 1));
        let (_, p) = s.pop_placeable(|_, _| (std::cmp::Reverse(4096u64), 1usize)).unwrap();
        assert_eq!(p.node, 0, "uniform transfer score falls back to lowest id");
        // An actual bytes difference overrides the id tie-break…
        s.push_ready(entry(3, 1, 2));
        let (_, p) = s
            .pop_placeable(|_, node| {
                (std::cmp::Reverse(if node == 2 { 0u64 } else { 1 << 20 }), 0usize)
            })
            .unwrap();
        assert_eq!(p.node, 2, "fewest bytes-to-move wins");
        // …and equal bytes with unequal residency falls to resident count.
        s.push_ready(entry(4, 1, 3));
        let (_, p) = s
            .pop_placeable(|_, node| {
                (std::cmp::Reverse(512u64), if node == 1 { 2usize } else { 1 })
            })
            .unwrap();
        assert_eq!(p.node, 1, "equal bytes: most resident inputs wins");
    }

    #[test]
    fn killed_node_is_skipped_and_release_is_noop() {
        let mut s = sched(2);
        s.push_ready(entry(1, 1, 0));
        let (e, p) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(p.node, 0, "lowest id by default");
        s.kill_node(0);
        s.release(&p, &e.constraint); // must not resurrect cores
        assert_eq!(s.node(0).free_cores.len(), 0);
        s.push_ready(entry(2, 1, 1));
        let (_, p2) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(p2.node, 1);
        assert!(!s.satisfiable(&Constraint::cpus(48)) || s.node(1).alive);
    }

    #[test]
    fn multinode_entry_takes_whole_node_set() {
        let mut s = sched(3); // 3 × 48-core MN4 nodes
        let mut e = entry(1, 48, 0);
        e.constraint = Constraint::multinode(2, 48);
        s.push_ready(e);
        let (_, p) = s.pop_placeable(|_, _| 0).unwrap();
        assert_eq!(p.cores.len(), 48);
        assert_eq!(p.extra.len(), 1);
        assert_eq!(p.extra[0].1.len(), 48);
        assert_eq!(p.nodes().len(), 2);
        assert!(p.involves(p.node));
        assert!(p.involves(p.extra[0].0));
        // only one free node left: a second 2-node task cannot start
        let mut e2 = entry(2, 48, 1);
        e2.constraint = Constraint::multinode(2, 48);
        s.push_ready(e2);
        assert!(s.pop_placeable(|_, _| 0).is_none());
        // release frees both nodes
        s.release(&p, &Constraint::multinode(2, 48));
        assert!(s.pop_placeable(|_, _| 0).is_some());
    }

    #[test]
    fn multinode_satisfiability_counts_capable_nodes() {
        let s = sched(3);
        assert!(s.satisfiable(&Constraint::multinode(3, 48)));
        assert!(!s.satisfiable(&Constraint::multinode(4, 1)));
        assert!(s.satisfiable_excluding(&Constraint::multinode(2, 48), 0));
        assert!(!s.satisfiable_excluding(&Constraint::multinode(3, 48), 0));
    }

    /// The indexed pop (class memo + B-tree walk) must pop the exact same
    /// task sequence as the plain linear scan across randomized workloads —
    /// the sim backend's determinism depends on it. A seeded xorshift keeps
    /// the test reproducible; `tests/ready_order.rs` re-checks the same
    /// property under proptest shrinking.
    #[test]
    fn indexed_pop_matches_linear_reference() {
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for round in 0..50u64 {
            let mut a = sched(3);
            let mut b = sched(3);
            let mut running: Vec<(ReadyEntry, Placement)> = Vec::new();
            for seq in 0..40u64 {
                let mut e = entry(round * 100 + seq, (next() % 32 + 1) as u32, seq);
                e.priority = next().is_multiple_of(3);
                if next().is_multiple_of(4) {
                    e.exclude_node = Some((next() % 3) as u32);
                }
                a.push_ready(e.clone());
                b.push_ready(e);
            }
            // Interleave pops with releases so the memo sees invalidation.
            for step in 0..200 {
                let loc = |t: TaskId, n: u32| (t.0 as usize + n as usize) % 5;
                let pa = a.pop_placeable(loc);
                let pb = b.pop_placeable_reference(loc);
                match (&pa, &pb) {
                    (Some((ea, la)), Some((eb, lb))) => {
                        assert_eq!(ea.task, eb.task, "round {round} step {step}");
                        assert_eq!(la, lb, "round {round} step {step}");
                    }
                    (None, None) => {}
                    _ => panic!("round {round} step {step}: {pa:?} vs {pb:?}"),
                }
                if let Some(p) = pa {
                    running.push(p);
                }
                if pb.is_none() || next().is_multiple_of(2) {
                    if running.is_empty() {
                        if a.ready_len() == 0 {
                            break;
                        }
                        continue;
                    }
                    let (e, p) = running.remove((next() % running.len() as u64) as usize);
                    let c = e.variant_constraints()[p.variant];
                    a.release(&p, &c);
                    b.release(&p, &c);
                }
            }
        }
    }

    #[test]
    fn gpu_allocation_tracks_ids() {
        let mut s = Scheduler::new(&Cluster::homogeneous(1, NodeSpec::cte_power9()), &[]);
        let mut taken = Vec::new();
        for i in 0..4 {
            let mut e = entry(i, 1, i);
            e.constraint = Constraint::cpus(1).with_gpus(1);
            s.push_ready(e);
            let (_, p) = s.pop_placeable(|_, _| 0).unwrap();
            assert_eq!(p.gpus.len(), 1);
            taken.push(p.gpus[0]);
        }
        taken.sort_unstable();
        assert_eq!(taken, vec![0, 1, 2, 3]);
        // fifth GPU task can't start
        let mut e = entry(9, 1, 9);
        e.constraint = Constraint::cpus(1).with_gpus(1);
        s.push_ready(e);
        assert!(s.pop_placeable(|_, _| 0).is_none());
    }
}
