//! Versioned data registry.
//!
//! COMPSs tracks every task parameter as a *data item* whose versions are
//! renamed on each write — the `d1v2`, `d3v2`… labels of the paper's
//! Figure 3. Reading always names a specific version; writing bumps the
//! version. Dependencies fall out of "who produces the version I read".
//!
//! Values are type-erased (`Arc<dyn Any + Send + Sync>`) so the runtime can
//! move arbitrary user types between tasks, exactly like PyCOMPSs moves
//! pickled Python objects.

use std::any::Any;
use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::task::TaskId;

/// A type-erased, shareable task value.
#[derive(Clone)]
pub struct Value(Arc<dyn Any + Send + Sync>);

impl Value {
    /// Wrap a concrete value.
    pub fn new<T: Any + Send + Sync>(v: T) -> Self {
        Value(Arc::new(v))
    }

    /// Borrow as `T` if the type matches.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }

    /// Whether the payload is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.0.is::<T>()
    }

    /// `TypeId` of the wrapped concrete value (not of the `Arc` wrapper);
    /// the codec registry keys on this to serialise values for the wire.
    pub fn concrete_type_id(&self) -> std::any::TypeId {
        Any::type_id(&*self.0)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value(<{:?}>)", self.0.type_id())
    }
}

/// Public reference to a data item (all versions of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataHandle(pub(crate) u64);

impl DataHandle {
    /// Construct an arbitrary handle for unit tests.
    #[doc(hidden)]
    pub fn test_only(id: u64) -> Self {
        DataHandle(id)
    }
}

impl fmt::Display for DataHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A specific version of a data item; renders like the paper's graph labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataVersion {
    /// The data item.
    pub handle: DataHandle,
    /// 1-based version.
    pub version: u32,
}

impl fmt::Display for DataVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}v{}", self.handle.0, self.version)
    }
}

/// Where a version's producer stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Producer {
    /// Written directly by the main program (e.g. [`DataRegistry::literal`]).
    Main,
    /// Produced by a task (which may or may not have finished yet).
    Task(TaskId),
}

#[derive(Debug)]
struct ItemState {
    current: u32,
    producers: HashMap<u32, Producer>,
    bytes: u64,
}

/// The registry: version bookkeeping, value store, and (for the simulated
/// backend) per-node residency used for locality and transfer modelling.
#[derive(Debug)]
pub struct DataRegistry {
    items: HashMap<u64, ItemState>,
    values: HashMap<DataVersion, Value>,
    /// Nodes each version is resident on (sim backend).
    locations: HashMap<DataVersion, HashSet<u32>>,
    next_id: u64,
    default_bytes: u64,
}

impl DataRegistry {
    /// Empty registry; `default_bytes` is the assumed size of values whose
    /// size was never declared (transfer model input).
    pub fn new(default_bytes: u64) -> Self {
        DataRegistry {
            items: HashMap::new(),
            values: HashMap::new(),
            locations: HashMap::new(),
            next_id: 1,
            default_bytes,
        }
    }

    /// Create a fresh data item whose version 1 is already available with
    /// `value` (main-program data, like the paper's parsed config objects).
    pub fn literal(&mut self, value: Value) -> DataHandle {
        let h = self.declare();
        let item = self.items.get_mut(&h.0).expect("just declared");
        item.current = 1;
        item.producers.insert(1, Producer::Main);
        self.values.insert(DataVersion { handle: h, version: 1 }, value);
        h
    }

    /// Create a fresh data item with no available version yet (to be used
    /// as an `Out` parameter). Stays at version 0 until the first writer.
    pub fn declare(&mut self) -> DataHandle {
        let id = self.next_id;
        self.next_id += 1;
        self.items.insert(
            id,
            ItemState { current: 0, producers: HashMap::new(), bytes: self.default_bytes },
        );
        DataHandle(id)
    }

    /// Declare the in-memory size of a data item for the transfer model.
    pub fn set_bytes(&mut self, h: DataHandle, bytes: u64) {
        if let Some(item) = self.items.get_mut(&h.0) {
            item.bytes = bytes;
        }
    }

    /// Size of a data item for the transfer model.
    pub fn bytes(&self, h: DataHandle) -> u64 {
        self.items.get(&h.0).map_or(self.default_bytes, |i| i.bytes)
    }

    /// The current (latest) version of `h`.
    ///
    /// # Panics
    /// Panics if the handle is unknown.
    pub fn current_version(&self, h: DataHandle) -> DataVersion {
        let item = self.items.get(&h.0).expect("unknown data handle");
        DataVersion { handle: h, version: item.current }
    }

    /// Whether the handle was created by this registry.
    pub fn knows(&self, h: DataHandle) -> bool {
        self.items.contains_key(&h.0)
    }

    /// Bump `h` to a new version produced by `producer`. Returns the new
    /// version (the write target of an OUT/INOUT parameter or return slot).
    pub fn new_version(&mut self, h: DataHandle, producer: Producer) -> DataVersion {
        let item = self.items.get_mut(&h.0).expect("unknown data handle");
        item.current += 1;
        item.producers.insert(item.current, producer);
        DataVersion { handle: h, version: item.current }
    }

    /// Who produces `v`.
    pub fn producer(&self, v: DataVersion) -> Option<Producer> {
        self.items.get(&v.handle.0).and_then(|i| i.producers.get(&v.version)).copied()
    }

    /// Store the computed value for `v`.
    pub fn put(&mut self, v: DataVersion, value: Value) {
        self.values.insert(v, value);
    }

    /// The value of `v` if already computed.
    pub fn get(&self, v: DataVersion) -> Option<Value> {
        self.values.get(&v).cloned()
    }

    /// Whether `v` has been computed.
    pub fn is_ready(&self, v: DataVersion) -> bool {
        self.values.contains_key(&v)
    }

    /// Mark `v` resident on `node` (sim backend locality/transfers).
    pub fn add_location(&mut self, v: DataVersion, node: u32) {
        self.locations.entry(v).or_default().insert(node);
    }

    /// Whether `v` is resident on `node`.
    pub fn is_on_node(&self, v: DataVersion, node: u32) -> bool {
        self.locations.get(&v).is_some_and(|s| s.contains(&node))
    }

    /// Retract one residency claim — a worker evicted the block backing
    /// `v` from its cache, so dispatches must ship it again.
    pub fn remove_location(&mut self, v: DataVersion, node: u32) {
        if let Some(s) = self.locations.get_mut(&v) {
            s.remove(&node);
        }
    }

    /// Forget every residency claim for `node` — called when a remote
    /// worker dies or reconnects with a cold cache, so the dispatcher goes
    /// back to shipping values inline instead of trusting stale residency.
    pub fn clear_node_locations(&mut self, node: u32) {
        for set in self.locations.values_mut() {
            set.remove(&node);
        }
    }

    /// Number of the given versions resident on `node` (locality score).
    pub fn locality_score(&self, versions: &[DataVersion], node: u32) -> usize {
        versions.iter().filter(|&&v| self.is_on_node(v, node)).count()
    }

    /// Transfer-aware placement score for running a task that reads
    /// `versions` on `node`: primarily *fewest bytes to move* (declared
    /// [`DataRegistry::bytes`] summed over the non-resident inputs),
    /// secondarily the plain resident count. Built to slot straight into
    /// `Scheduler::pop_placeable`'s `max_by_key` — `Reverse` turns
    /// min-bytes into max-score, and the scheduler's own final tie-break
    /// keeps ties on the lowest node id. When every input has the same
    /// declared size the ordering degenerates to exactly
    /// [`DataRegistry::locality_score`], so enabling it does not perturb
    /// sim determinism.
    pub fn transfer_score(&self, versions: &[DataVersion], node: u32) -> TransferScore {
        let mut bytes_to_move = 0u64;
        let mut resident = 0usize;
        for v in versions {
            if self.is_on_node(*v, node) {
                resident += 1;
            } else {
                bytes_to_move = bytes_to_move.saturating_add(self.bytes(v.handle));
            }
        }
        (std::cmp::Reverse(bytes_to_move), resident)
    }
}

/// Score returned by [`DataRegistry::transfer_score`]: orders by fewest
/// bytes-to-move first, then most resident inputs.
pub type TransferScore = (std::cmp::Reverse<u64>, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrips_types() {
        let v = Value::new(7i32);
        assert!(v.is::<i32>());
        assert!(!v.is::<u32>());
        assert_eq!(v.downcast_ref::<i32>(), Some(&7));
        assert_eq!(v.downcast_ref::<String>(), None);
        let cloned = v.clone();
        assert_eq!(cloned.downcast_ref::<i32>(), Some(&7));
    }

    #[test]
    fn literal_is_immediately_ready() {
        let mut reg = DataRegistry::new(64);
        let h = reg.literal(Value::new("cfg".to_string()));
        let v = reg.current_version(h);
        assert_eq!(v.version, 1);
        assert!(reg.is_ready(v));
        assert_eq!(reg.producer(v), Some(Producer::Main));
        assert_eq!(reg.get(v).unwrap().downcast_ref::<String>().unwrap(), "cfg");
    }

    #[test]
    fn declared_item_starts_unwritten() {
        let mut reg = DataRegistry::new(64);
        let h = reg.declare();
        assert_eq!(reg.current_version(h).version, 0);
        assert!(!reg.is_ready(reg.current_version(h)));
    }

    #[test]
    fn versions_bump_and_track_producers() {
        let mut reg = DataRegistry::new(64);
        let h = reg.literal(Value::new(0u8));
        let v2 = reg.new_version(h, Producer::Task(TaskId(5)));
        assert_eq!(v2.version, 2);
        assert_eq!(reg.current_version(h), v2);
        assert_eq!(reg.producer(v2), Some(Producer::Task(TaskId(5))));
        assert!(!reg.is_ready(v2), "new version not computed yet");
        reg.put(v2, Value::new(1u8));
        assert!(reg.is_ready(v2));
        // version 1 still readable — renaming, not overwriting
        assert!(reg.is_ready(DataVersion { handle: h, version: 1 }));
    }

    #[test]
    fn version_display_matches_paper_labels() {
        let v = DataVersion { handle: DataHandle(3), version: 2 };
        assert_eq!(v.to_string(), "d3v2");
        assert_eq!(DataHandle(3).to_string(), "d3");
    }

    #[test]
    fn locations_and_locality() {
        let mut reg = DataRegistry::new(64);
        let a = reg.literal(Value::new(1));
        let b = reg.literal(Value::new(2));
        let va = reg.current_version(a);
        let vb = reg.current_version(b);
        reg.add_location(va, 0);
        reg.add_location(va, 2);
        reg.add_location(vb, 2);
        assert!(reg.is_on_node(va, 0));
        assert!(!reg.is_on_node(vb, 0));
        assert_eq!(reg.locality_score(&[va, vb], 2), 2);
        assert_eq!(reg.locality_score(&[va, vb], 0), 1);
        assert_eq!(reg.locality_score(&[va, vb], 7), 0);
    }

    #[test]
    fn transfer_score_orders_by_bytes_then_residency() {
        let mut reg = DataRegistry::new(10);
        let big = reg.literal(Value::new(0));
        let small = reg.literal(Value::new(1));
        reg.set_bytes(big, 1_000_000);
        reg.set_bytes(small, 10);
        let vb = reg.current_version(big);
        let vs = reg.current_version(small);
        // Node 0 holds the big block, node 1 the small one, node 2 nothing.
        reg.add_location(vb, 0);
        reg.add_location(vs, 1);
        let reads = [vb, vs];
        let s0 = reg.transfer_score(&reads, 0);
        let s1 = reg.transfer_score(&reads, 1);
        let s2 = reg.transfer_score(&reads, 2);
        assert_eq!(s0, (std::cmp::Reverse(10), 1));
        assert_eq!(s1, (std::cmp::Reverse(1_000_000), 1));
        assert_eq!(s2, (std::cmp::Reverse(1_000_010), 0));
        // Equal resident *counts*, but node 0 moves fewer bytes: it wins
        // where the plain locality score could not tell them apart.
        assert_eq!(reg.locality_score(&reads, 0), reg.locality_score(&reads, 1));
        assert!(s0 > s1 && s1 > s2);
    }

    #[test]
    fn transfer_score_with_uniform_sizes_matches_locality_order() {
        let mut reg = DataRegistry::new(64);
        let handles: Vec<_> = (0..4).map(|i| reg.literal(Value::new(i))).collect();
        let reads: Vec<_> = handles.iter().map(|&h| reg.current_version(h)).collect();
        reg.add_location(reads[0], 1);
        reg.add_location(reads[1], 1);
        reg.add_location(reads[2], 2);
        for a in 0..3u32 {
            for b in 0..3u32 {
                let by_transfer = reg.transfer_score(&reads, a).cmp(&reg.transfer_score(&reads, b));
                let by_locality = reg.locality_score(&reads, a).cmp(&reg.locality_score(&reads, b));
                assert_eq!(by_transfer, by_locality, "nodes {a} vs {b}");
            }
        }
    }

    #[test]
    fn bytes_default_and_override() {
        let mut reg = DataRegistry::new(128);
        let h = reg.literal(Value::new(0));
        assert_eq!(reg.bytes(h), 128);
        reg.set_bytes(h, 4096);
        assert_eq!(reg.bytes(h), 4096);
        assert_eq!(reg.bytes(DataHandle(999)), 128, "unknown handles fall back");
    }

    #[test]
    fn handles_are_unique() {
        let mut reg = DataRegistry::new(1);
        let a = reg.declare();
        let b = reg.literal(Value::new(0));
        assert_ne!(a, b);
        assert!(reg.knows(a) && reg.knows(b));
        assert!(!reg.knows(DataHandle(12345)));
    }
}
