//! Runtime metrics: the live counterpart of the paratrace post-mortem trace.
//!
//! One [`RtMetrics`] lives in the runtime's [`crate::runtime::Shared`]
//! state, wrapping a per-runtime [`runmetrics::MetricsRegistry`] with
//! pre-registered handles for every series the runtime emits — registration
//! happens once at construction, so every series (the retry counter
//! included) is present in every snapshot from the first export on, and the
//! hot paths touch only lock-free handles. When the registry is disabled
//! each recording call is a single relaxed atomic load.
//!
//! Series, following the Dask-overheads decomposition of "where does
//! runtime time go":
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | `rcompss_tasks_submitted_total` | counter | task instances submitted |
//! | `rcompss_tasks_dispatched_total` | counter | placements handed to a backend (includes retries) |
//! | `rcompss_tasks_completed_total` | counter | successful completions |
//! | `rcompss_tasks_retried_total` | counter | failed attempts re-queued by the retry policy |
//! | `rcompss_tasks_failed_total` | counter | permanent failures (incl. cascade) |
//! | `rcompss_task_attempts_failed_total` | counter | individual failed attempts |
//! | `rcompss_node_failures_total` | counter | node failures observed |
//! | `rcompss_transfer_bytes_total` | counter | bytes staged to nodes (sim backend) |
//! | `rcompss_worker_steals_total` | counter | tasks taken from a sibling worker's shard |
//! | `rcompss_worker_wakeups_total` | counter | targeted `notify_one` signals to worker shards |
//! | `rcompss_ready_queue_depth` | gauge | ready tasks not yet placeable |
//! | `rcompss_running_tasks` | gauge | in-flight executions |
//! | `rcompss_sched_decision_us` | histogram | real time per `pop_placeable` decision |
//! | `rcompss_dep_wait_us` | histogram | submission → dispatch wait per task |
//! | `rcompss_transfer_time_us` | histogram | staging transfer durations |
//! | `rcompss_task_latency_us{fn="…"}` | histogram | dispatch → completion per task function |
//! | `rcompss_workers_lost_total` | counter | remote workers declared dead (distributed backend) |
//! | `rnet_bytes_sent_total` | counter | protocol bytes written to workers |
//! | `rnet_bytes_received_total` | counter | protocol bytes read from workers |
//! | `rnet_reconnects_total` | counter | successful worker reconnections |
//! | `rnet_rpc_latency_us` | histogram | submit → done/failed round trip per remote task |
//! | `rcompss_node_tasks_completed_total{node="…"}` | counter | completions per remote worker (addr-labelled) |
//! | `rnet_telemetry_bytes_total` | counter | trace/stats payload bytes received from workers |
//! | `rcompss_task_phase_us{phase="…"}` | histogram | per-phase task lifecycle latency (queue/wire/exec/ship) |
//! | `rnet_rtt_us{node="…"}` | gauge | best heartbeat round-trip time per worker |
//! | `rnet_clock_offset_us{node="…"}` | gauge | estimated worker−driver clock offset |
//! | `rnet_last_stats_us{node="…"}` | gauge | driver wall-µs of the last stats snapshot per worker |
//! | `rnet_bytes_sent_total{node="…"}` | counter | protocol bytes written, per worker link |
//! | `rnet_bytes_received_total{node="…"}` | counter | protocol bytes read, per worker link |
//!
//! Workers additionally keep block-cache series in their process-global
//! registry — they reach the driver's aggregate through `StatsSnapshot`
//! heartbeats and are scrapeable at the worker's own `--status-addr`:
//!
//! | series | kind | meaning |
//! |---|---|---|
//! | `rcompss_block_cache_hits_total` | counter | task inputs served from the local block cache |
//! | `rcompss_block_cache_misses_total` | counter | block-plane inputs that needed a transfer |
//! | `rcompss_block_cache_evictions_total` | counter | blocks pushed out by the `--cache-mem` budget |
//! | `rcompss_block_cache_resident_bytes` | gauge | decoded bytes currently cached |
//!
//! The `task_phase_us` phases decompose a remote task's life on the driver
//! timeline: **queue** (submission → dispatch), **wire** (dispatch →
//! worker decode of the submit), **exec** (the body itself, measured on the
//! worker's clock so the offset cancels), **ship** (body return → driver
//! applying the result). Wire and ship cross clock domains and are rebased
//! with the heartbeat offset estimate, so they carry up to RTT/2 of noise —
//! fine for the "where does runtime time go" question they answer.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use runmetrics::{labeled, Counter, Gauge, Histogram, MetricsRegistry};

/// Pre-registered metric handles for one runtime.
pub(crate) struct RtMetrics {
    registry: Arc<MetricsRegistry>,
    /// Task instances submitted.
    pub submitted: Counter,
    /// Placements handed to a backend.
    pub dispatched: Counter,
    /// Successful completions.
    pub completed: Counter,
    /// Failed attempts re-queued by the retry policy.
    pub retried: Counter,
    /// Permanent failures.
    pub failed: Counter,
    /// Individual failed attempts.
    pub failed_attempts: Counter,
    /// Node failures observed.
    pub node_failures: Counter,
    /// Bytes staged to nodes.
    pub transfer_bytes: Counter,
    /// Tasks a worker took from a sibling's shard (threaded backend).
    pub steals: Counter,
    /// Targeted `notify_one` signals issued to worker shards.
    pub wakeups: Counter,
    /// Remote workers declared dead (distributed backend).
    pub workers_lost: Counter,
    /// Protocol bytes written to remote workers.
    pub net_bytes_sent: Counter,
    /// Protocol bytes read from remote workers.
    pub net_bytes_received: Counter,
    /// Successful worker reconnections.
    pub net_reconnects: Counter,
    /// Ready tasks not yet placeable.
    pub ready_depth: Gauge,
    /// In-flight executions.
    pub running: Gauge,
    /// Real time per scheduler placement decision.
    pub sched_decision: Histogram,
    /// Submission → dispatch wait.
    pub dep_wait: Histogram,
    /// Staging transfer durations.
    pub transfer_time: Histogram,
    /// Submit → done/failed round trip per remote task (distributed).
    pub rpc_latency: Histogram,
    /// Trace/stats payload bytes received from workers (distributed).
    pub telemetry_bytes: Counter,
    /// Submission → dispatch wait, as a lifecycle phase.
    pub phase_queue: Histogram,
    /// Dispatch → worker submit-decode (driver timeline, offset-rebased).
    pub phase_wire: Histogram,
    /// Task body duration on the worker clock.
    pub phase_exec: Histogram,
    /// Body return → driver result application (offset-rebased).
    pub phase_ship: Histogram,
    /// Per-task-function latency handles, created on first completion of
    /// each function (cold path: runs under the runtime's core lock anyway).
    task_latency: Mutex<HashMap<String, Histogram>>,
    /// Per-worker completion counters, labelled by worker address
    /// (distributed backend; cold path, one insert per worker).
    node_tasks: Mutex<HashMap<String, Counter>>,
    /// Per-worker gauges (RTT, clock offset, last-stats age), keyed by the
    /// full labelled series name (cold path, one insert per series).
    node_gauges: Mutex<HashMap<String, Gauge>>,
}

impl RtMetrics {
    /// Build a registry with every fixed series pre-registered.
    pub fn new(enabled: bool) -> Self {
        let registry = Arc::new(MetricsRegistry::new(enabled));
        RtMetrics {
            submitted: registry.counter("rcompss_tasks_submitted_total"),
            dispatched: registry.counter("rcompss_tasks_dispatched_total"),
            completed: registry.counter("rcompss_tasks_completed_total"),
            retried: registry.counter("rcompss_tasks_retried_total"),
            failed: registry.counter("rcompss_tasks_failed_total"),
            failed_attempts: registry.counter("rcompss_task_attempts_failed_total"),
            node_failures: registry.counter("rcompss_node_failures_total"),
            transfer_bytes: registry.counter("rcompss_transfer_bytes_total"),
            steals: registry.counter("rcompss_worker_steals_total"),
            wakeups: registry.counter("rcompss_worker_wakeups_total"),
            workers_lost: registry.counter("rcompss_workers_lost_total"),
            net_bytes_sent: registry.counter("rnet_bytes_sent_total"),
            net_bytes_received: registry.counter("rnet_bytes_received_total"),
            net_reconnects: registry.counter("rnet_reconnects_total"),
            ready_depth: registry.gauge("rcompss_ready_queue_depth"),
            running: registry.gauge("rcompss_running_tasks"),
            sched_decision: registry.histogram("rcompss_sched_decision_us"),
            dep_wait: registry.histogram("rcompss_dep_wait_us"),
            transfer_time: registry.histogram("rcompss_transfer_time_us"),
            rpc_latency: registry.histogram("rnet_rpc_latency_us"),
            telemetry_bytes: registry.counter("rnet_telemetry_bytes_total"),
            phase_queue: registry.histogram(&labeled("rcompss_task_phase_us", "phase", "queue")),
            phase_wire: registry.histogram(&labeled("rcompss_task_phase_us", "phase", "wire")),
            phase_exec: registry.histogram(&labeled("rcompss_task_phase_us", "phase", "exec")),
            phase_ship: registry.histogram(&labeled("rcompss_task_phase_us", "phase", "ship")),
            task_latency: Mutex::new(HashMap::new()),
            node_tasks: Mutex::new(HashMap::new()),
            node_gauges: Mutex::new(HashMap::new()),
            registry,
        }
    }

    /// Whether recording is on (one relaxed load — the gate callers use
    /// before paying for `Instant::now()` timing).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.registry.enabled()
    }

    /// The underlying registry, for snapshots/exports.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Record a completed execution of task function `fn_name`.
    pub fn record_task_latency(&self, fn_name: &str, us: u64) {
        if !self.registry.enabled() {
            return;
        }
        let mut cache = self.task_latency.lock();
        let h = cache.entry(fn_name.to_string()).or_insert_with(|| {
            self.registry.histogram(&labeled("rcompss_task_latency_us", "fn", fn_name))
        });
        h.record(us);
    }

    /// Count a completed remote execution against its worker's
    /// addr-labelled series — the per-node lane the dashboard renders.
    pub fn record_node_task(&self, node_label: &str) {
        if !self.registry.enabled() {
            return;
        }
        let mut cache = self.node_tasks.lock();
        let c = cache.entry(node_label.to_string()).or_insert_with(|| {
            self.registry.counter(&labeled(
                "rcompss_node_tasks_completed_total",
                "node",
                node_label,
            ))
        });
        c.incr();
    }

    /// Set a per-worker gauge, e.g. `set_node_gauge("rnet_rtt_us", label,
    /// rtt as f64)` — the clock-sync and telemetry-freshness lanes.
    pub fn set_node_gauge(&self, base: &str, node_label: &str, value: f64) {
        if !self.registry.enabled() {
            return;
        }
        let series = labeled(base, "node", node_label);
        let mut cache = self.node_gauges.lock();
        let g = cache.entry(series.clone()).or_insert_with(|| self.registry.gauge(&series));
        g.set(value);
    }
}

impl std::fmt::Debug for RtMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtMetrics").field("enabled", &self.enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_series_are_preregistered_at_zero() {
        let m = RtMetrics::new(true);
        let snap = m.registry().snapshot();
        for series in [
            "rcompss_tasks_submitted_total",
            "rcompss_tasks_dispatched_total",
            "rcompss_tasks_completed_total",
            "rcompss_tasks_retried_total",
            "rcompss_tasks_failed_total",
            "rcompss_task_attempts_failed_total",
            "rcompss_node_failures_total",
            "rcompss_transfer_bytes_total",
            "rcompss_worker_steals_total",
            "rcompss_worker_wakeups_total",
            "rcompss_workers_lost_total",
            "rnet_bytes_sent_total",
            "rnet_bytes_received_total",
            "rnet_reconnects_total",
            "rnet_telemetry_bytes_total",
        ] {
            assert_eq!(snap.counter(series), Some(0), "{series} missing");
        }
        assert_eq!(snap.gauge("rcompss_ready_queue_depth"), Some(0.0));
        assert!(snap.histogram("rcompss_sched_decision_us").is_some());
        assert!(snap.histogram("rcompss_dep_wait_us").is_some());
        assert!(snap.histogram("rnet_rpc_latency_us").is_some());
        for phase in ["queue", "wire", "exec", "ship"] {
            let series = labeled("rcompss_task_phase_us", "phase", phase);
            assert!(snap.histogram(&series).is_some(), "{series} missing");
        }
    }

    #[test]
    fn node_gauges_are_labelled_and_latest_wins() {
        let m = RtMetrics::new(true);
        m.set_node_gauge("rnet_rtt_us", "w0@h:1", 450.0);
        m.set_node_gauge("rnet_rtt_us", "w0@h:1", 120.0);
        m.set_node_gauge("rnet_clock_offset_us", "w0@h:1", -3000.0);
        let snap = m.registry().snapshot();
        assert_eq!(snap.gauge(&labeled("rnet_rtt_us", "node", "w0@h:1")), Some(120.0));
        assert_eq!(snap.gauge(&labeled("rnet_clock_offset_us", "node", "w0@h:1")), Some(-3000.0));
    }

    #[test]
    fn node_task_counter_is_labelled_per_worker() {
        let m = RtMetrics::new(true);
        m.record_node_task("127.0.0.1:7077");
        m.record_node_task("127.0.0.1:7077");
        m.record_node_task("127.0.0.1:7078");
        let snap = m.registry().snapshot();
        let series = labeled("rcompss_node_tasks_completed_total", "node", "127.0.0.1:7077");
        assert_eq!(snap.counter(&series), Some(2));
        let series = labeled("rcompss_node_tasks_completed_total", "node", "127.0.0.1:7078");
        assert_eq!(snap.counter(&series), Some(1));
    }

    #[test]
    fn task_latency_creates_one_series_per_function() {
        let m = RtMetrics::new(true);
        m.record_task_latency("graph.experiment", 100);
        m.record_task_latency("graph.experiment", 200);
        m.record_task_latency("other", 1);
        let snap = m.registry().snapshot();
        let s = snap
            .histogram(&labeled("rcompss_task_latency_us", "fn", "graph.experiment"))
            .expect("per-fn series exists");
        assert_eq!(s.count, 2);
        assert_eq!(
            snap.histogram(&labeled("rcompss_task_latency_us", "fn", "other")).unwrap().count,
            1
        );
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let m = RtMetrics::new(false);
        m.submitted.incr();
        m.record_task_latency("x", 5);
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("rcompss_tasks_submitted_total"), Some(0));
        assert!(snap.histogram(&labeled("rcompss_task_latency_us", "fn", "x")).is_none());
    }
}
