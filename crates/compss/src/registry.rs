//! Named task registry for remote execution.
//!
//! A distributed worker receives task *names* over the wire, not function
//! pointers, so both sides agree on an out-of-band registry: the worker
//! process registers the same [`TaskDef`]s (same names, same bodies) the
//! driver submits, and [`crate::backend::distributed::WorkerServer`]
//! resolves each incoming submit against it. This mirrors how PyCOMPSs
//! workers import the user's module and look the task function up by
//! qualified name.

use std::collections::HashMap;
use std::sync::Arc;

use crate::task::{TaskDef, TaskFn};

/// Name → [`TaskDef`] map shared with a worker server.
#[derive(Default, Clone)]
pub struct TaskRegistry {
    defs: HashMap<Arc<str>, TaskDef>,
}

impl TaskRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TaskRegistry::default()
    }

    /// Register `def` under its own name; replaces any previous entry
    /// (chainable, so setup code reads as a builder).
    pub fn with(mut self, def: TaskDef) -> Self {
        self.register(def);
        self
    }

    /// Register `def` under its own name; replaces any previous entry.
    pub fn register(&mut self, def: TaskDef) {
        self.defs.insert(def.name.clone(), def);
    }

    /// Look up a task definition by name.
    pub fn get(&self, name: &str) -> Option<&TaskDef> {
        self.defs.get(name)
    }

    /// The body implementing `variant` of task `name`: variant 0 is the
    /// default implementation, `n > 0` indexes the alternatives added via
    /// [`TaskDef::with_implementation`].
    pub fn body(&self, name: &str, variant: u32) -> Option<Arc<TaskFn>> {
        let def = self.defs.get(name)?;
        if variant == 0 {
            Some(def.body.clone())
        } else {
            def.alternatives.get(variant as usize - 1).map(|v| v.body.clone())
        }
    }

    /// Registered task names, sorted for stable display.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.defs.keys().map(|n| n.to_string()).collect();
        names.sort();
        names
    }

    /// Number of registered tasks.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

impl std::fmt::Debug for TaskRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskRegistry").field("tasks", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Value;
    use crate::task::{Constraint, TaskDef};

    fn def(name: &str) -> TaskDef {
        TaskDef {
            name: name.into(),
            constraint: Constraint::cpus(1),
            returns: 1,
            priority: false,
            body: Arc::new(|_, _| Ok(vec![Value::new(1u64)])),
            alternatives: Vec::new(),
        }
    }

    #[test]
    fn registers_and_resolves_by_name() {
        let reg = TaskRegistry::new().with(def("a")).with(def("b"));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert!(reg.get("a").is_some());
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn variant_zero_is_default_body_and_alternatives_index_from_one() {
        let alt =
            def("x").with_implementation(Constraint::cpus(2), |_, _| Ok(vec![Value::new(2u64)]));
        let reg = TaskRegistry::new().with(alt);
        assert!(reg.body("x", 0).is_some());
        assert!(reg.body("x", 1).is_some());
        assert!(reg.body("x", 2).is_none());
        assert!(reg.body("missing", 0).is_none());
    }
}
