//! Ambient snapshot channel: how a running task hands intermediate state
//! to the runtime for crash/retry recovery.
//!
//! The paper's fault-tolerance story (retry on the same node, then
//! resubmit elsewhere — see [`crate::fault`]) restarts a failed task from
//! scratch. For long-running bodies (model training), that forfeits all
//! completed work. This module closes the gap: a task body periodically
//! calls [`save`] with an opaque blob keyed by a caller-chosen `u64`
//! (the HPO layer keys by trial), and a retried attempt calls [`load`]
//! first — on the threaded backend the blob comes back from the runtime's
//! in-process store; on the distributed backend the worker ships it to
//! the driver over the existing `Data` frame, the driver keeps the latest
//! per key, and the replacement worker pulls it with a `Fetch` — so a
//! killed worker costs at most one snapshot interval, not the whole task.
//!
//! The channel is *ambient*: backends install it around the task body
//! with [`with_channel`], and bodies call the free functions without
//! threading any handle through their signatures. Outside any scope
//! (unit tests, the sim backend) the functions are inert: [`save`]
//! returns `false`, [`load`] returns `None` — checkpointing degrades to
//! "train from scratch", never to an error.

use std::cell::RefCell;
use std::sync::Arc;

/// Where snapshots go and come back from. Implementations are the
/// backend's business: an in-process map (threaded), a driver round trip
/// (distributed).
pub trait SnapshotChannel: Send + Sync {
    /// Store `blob` as the latest snapshot for `key`, replacing any
    /// previous one.
    fn save(&self, key: u64, blob: &[u8]);
    /// The latest snapshot for `key`, if any survives.
    fn load(&self, key: u64) -> Option<Vec<u8>>;
    /// Drop the snapshot for `key` (the task finished; its result
    /// supersedes the snapshot).
    fn discard(&self, key: u64);
}

thread_local! {
    static CHANNEL: RefCell<Option<Arc<dyn SnapshotChannel>>> = const { RefCell::new(None) };
}

/// Install `channel` for the duration of `f` on this thread (panic-safe:
/// the previous channel is restored even if `f` unwinds). Backends wrap
/// task-body invocation in this; nesting restores the outer channel on
/// exit.
pub fn with_channel<R>(channel: Arc<dyn SnapshotChannel>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<dyn SnapshotChannel>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CHANNEL.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CHANNEL.with(|c| c.borrow_mut().replace(channel));
    let _restore = Restore(prev);
    f()
}

/// Save a snapshot through the ambient channel. Returns `false` when no
/// channel is installed (snapshot silently skipped).
pub fn save(key: u64, blob: &[u8]) -> bool {
    CHANNEL.with(|c| match &*c.borrow() {
        Some(ch) => {
            ch.save(key, blob);
            true
        }
        None => false,
    })
}

/// Load the latest snapshot for `key` through the ambient channel, if one
/// is installed and holds one.
pub fn load(key: u64) -> Option<Vec<u8>> {
    CHANNEL.with(|c| c.borrow().as_ref().and_then(|ch| ch.load(key)))
}

/// Discard the snapshot for `key` through the ambient channel (no-op
/// without one).
pub fn discard(key: u64) {
    CHANNEL.with(|c| {
        if let Some(ch) = &*c.borrow() {
            ch.discard(key);
        }
    });
}

/// Whether a channel is installed on this thread (lets bodies skip
/// snapshot serialization entirely when nobody is listening).
pub fn active() -> bool {
    CHANNEL.with(|c| c.borrow().is_some())
}

/// Derive a sub-key from a base snapshot key and a salt, for bodies that
/// checkpoint several independent pieces of state under one logical
/// identity — the HPO stage tree keys each *segment* of a trial's training
/// by `derive_key(trial_key, segment_end)`, so a retried segment recovers
/// its own mid-segment snapshot without colliding with sibling segments.
///
/// The mix is an FNV-1a fold of the salt into the base, with bit 63
/// cleared: the distributed backend reserves the high bit of wire keys for
/// snapshot traffic, so derived keys must stay inside the 63-bit space
/// exactly like the base keys the HPO layer produces.
pub fn derive_key(base: u64, salt: u64) -> u64 {
    let mut h = base ^ 0xcbf2_9ce4_8422_2325;
    for b in salt.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h >> 1
}

/// The threaded backend's channel: the runtime's own in-process store, so
/// a retried attempt (same process, any worker thread) finds the blob.
pub(crate) struct InProcessChannel(pub Arc<crate::runtime::Shared>);

impl SnapshotChannel for InProcessChannel {
    fn save(&self, key: u64, blob: &[u8]) {
        self.0.snapshots.lock().insert(key, blob.to_vec());
    }

    fn load(&self, key: u64) -> Option<Vec<u8>> {
        self.0.snapshots.lock().get(&key).cloned()
    }

    fn discard(&self, key: u64) {
        self.0.snapshots.lock().remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    struct MapChannel(Mutex<HashMap<u64, Vec<u8>>>);

    impl SnapshotChannel for MapChannel {
        fn save(&self, key: u64, blob: &[u8]) {
            self.0.lock().insert(key, blob.to_vec());
        }
        fn load(&self, key: u64) -> Option<Vec<u8>> {
            self.0.lock().get(&key).cloned()
        }
        fn discard(&self, key: u64) {
            self.0.lock().remove(&key);
        }
    }

    #[test]
    fn inert_outside_any_scope() {
        assert!(!active());
        assert!(!save(1, b"x"));
        assert!(load(1).is_none());
        discard(1); // no-op, no panic
    }

    #[test]
    fn scoped_channel_receives_and_serves() {
        let ch = Arc::new(MapChannel(Mutex::new(HashMap::new())));
        with_channel(ch.clone(), || {
            assert!(active());
            assert!(save(7, b"state"));
            assert_eq!(load(7).unwrap(), b"state");
            assert!(save(7, b"newer"), "latest wins");
            assert_eq!(load(7).unwrap(), b"newer");
            discard(7);
            assert!(load(7).is_none());
        });
        assert!(!active(), "channel uninstalled on exit");
    }

    #[test]
    fn nesting_restores_the_outer_channel() {
        let outer = Arc::new(MapChannel(Mutex::new(HashMap::new())));
        let inner = Arc::new(MapChannel(Mutex::new(HashMap::new())));
        with_channel(outer.clone(), || {
            save(1, b"outer");
            with_channel(inner.clone(), || {
                assert!(load(1).is_none(), "inner channel is fresh");
                save(1, b"inner");
            });
            assert_eq!(load(1).unwrap(), b"outer", "outer restored");
        });
        assert_eq!(inner.0.lock().get(&1).unwrap(), b"inner");
    }

    #[test]
    fn derived_keys_are_distinct_stable_and_63_bit() {
        let base = 0x1234_5678_9ABC_DEF0u64 >> 1;
        let a = derive_key(base, 2);
        let b = derive_key(base, 5);
        assert_ne!(a, b, "different salts diverge");
        assert_ne!(a, base, "derived key leaves the base key alone");
        assert_eq!(a, derive_key(base, 2), "stable");
        for salt in 0..64u64 {
            assert_eq!(derive_key(base, salt) >> 63, 0, "bit 63 must stay clear");
        }
        // distinct bases with the same salt diverge too
        assert_ne!(derive_key(1, 3), derive_key(2, 3));
    }

    #[test]
    fn channel_survives_a_panicking_body() {
        let ch = Arc::new(MapChannel(Mutex::new(HashMap::new())));
        let _ = std::panic::catch_unwind(|| {
            with_channel(ch, || {
                save(9, b"pre-panic");
                panic!("boom");
            })
        });
        assert!(!active(), "panic must not leak the installed channel");
    }
}
