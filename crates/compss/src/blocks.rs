//! The content-addressed data plane.
//!
//! Values that cross the wire are hashed by *content* (not version id)
//! into immutable blocks. The driver keeps a [`BlockStore`]: an
//! encode-once memo (a value shared by a hundred trials is serialised
//! exactly once, ever) plus the per-node residency map that makes
//! placement transfer-aware. Each worker keeps a [`BlockCache`]: decoded
//! blocks under an LRU policy bounded by a byte budget (`--cache-mem`),
//! reporting evictions back so the driver's residency view stays honest.
//!
//! Content addressing buys two things over version-keyed caching: two
//! versions with identical bytes collapse to one block (one transfer, one
//! cache slot), and a block is immutable by construction — there is no
//! invalidation protocol, only eviction.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use rnet::Blob;

use crate::codec;
use crate::data::{DataVersion, Value};

/// Declared sizes at or above this many bytes route through the block
/// plane by default; smaller values stay inline in the `Submit` frame.
pub(crate) const DEFAULT_INLINE_THRESHOLD: u64 = 64 * 1024;

/// FNV-1a, 128-bit variant — stable, dependency-free, and cheap enough
/// to run over multi-megabyte datasets at memcpy-adjacent speed is not
/// required here: hashing happens once per unique value, at first
/// dispatch, under the encode-once memo.
///
/// The codec tag participates in the hash so two codecs producing the
/// same bytes for different types still get distinct blocks.
pub(crate) fn content_hash(tag: &str, bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in tag.as_bytes() {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    // Separator between tag and payload, so ("ab", "c") ≠ ("a", "bc").
    h ^= 0xff;
    h = h.wrapping_mul(PRIME);
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One immutable encoded value: the wire blob plus its content hash.
pub(crate) struct EncodedBlock {
    /// Content hash of `(tag, bytes)` — the block's identity everywhere.
    pub hash: u128,
    /// The encoded bytes as they travel in `BlockPut`/`BlockData`.
    pub blob: Blob,
}

/// Driver-side block state: encode-once memo, content dedup, and the
/// per-node residency map behind transfer-aware placement.
///
/// Residency here is *optimistic*, mirroring `DataRegistry::add_location`:
/// a block is marked resident when its `BlockPut` is queued, not when the
/// worker acks it. Frames on one link are ordered, so any `Submit` that
/// relies on the mark is decoded after the bytes arrived. Worker evictions
/// (`BlockEvict`) and node death (`clear_node`) retract marks.
pub(crate) struct BlockStore {
    inline_threshold: u64,
    encoded: HashMap<DataVersion, Arc<EncodedBlock>>,
    by_hash: HashMap<u128, Arc<EncodedBlock>>,
    versions_of: HashMap<u128, Vec<DataVersion>>,
    resident: HashMap<u32, HashSet<u128>>,
}

impl BlockStore {
    /// Empty store with the default inline threshold.
    pub fn new() -> BlockStore {
        BlockStore {
            inline_threshold: DEFAULT_INLINE_THRESHOLD,
            encoded: HashMap::new(),
            by_hash: HashMap::new(),
            versions_of: HashMap::new(),
            resident: HashMap::new(),
        }
    }

    /// Set the inline threshold (from `DistributedConfig`).
    pub fn set_inline_threshold(&mut self, bytes: u64) {
        self.inline_threshold = bytes;
    }

    /// Whether a value of `declared` bytes (the `DataRegistry::bytes` size
    /// model) travels as a block rather than inline.
    pub fn routes_block(&self, declared: u64) -> bool {
        declared >= self.inline_threshold
    }

    /// Encode `value` for version `v`, memoised: the first call pays the
    /// codec, every later call (any trial, any node) is a map lookup.
    /// Identical content under a different version collapses onto the
    /// existing block. `None` when no codec covers the value's type — the
    /// caller falls back to the inline path, whose error reporting stands.
    pub fn encode(&mut self, v: DataVersion, value: &Value) -> Option<Arc<EncodedBlock>> {
        if let Some(b) = self.encoded.get(&v) {
            return Some(Arc::clone(b));
        }
        let blob = codec::encode_value(value)?;
        let hash = content_hash(&blob.tag, &blob.bytes);
        let block = match self.by_hash.get(&hash) {
            Some(b) => Arc::clone(b),
            None => {
                let b = Arc::new(EncodedBlock { hash, blob });
                self.by_hash.insert(hash, Arc::clone(&b));
                b
            }
        };
        self.versions_of.entry(hash).or_default().push(v);
        self.encoded.insert(v, Arc::clone(&block));
        Some(block)
    }

    /// The block with this hash, for serving worker `BlockRequest`s.
    pub fn lookup(&self, hash: u128) -> Option<Arc<EncodedBlock>> {
        self.by_hash.get(&hash).cloned()
    }

    /// Every version whose content maps to `hash` — the set whose
    /// `DataRegistry` residency must be retracted when a worker evicts it.
    pub fn versions_of(&self, hash: u128) -> &[DataVersion] {
        self.versions_of.get(&hash).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Is `hash` (optimistically) resident on `node`?
    pub fn is_resident(&self, node: u32, hash: u128) -> bool {
        self.resident.get(&node).is_some_and(|s| s.contains(&hash))
    }

    /// Mark `hash` resident on `node`.
    pub fn add_resident(&mut self, node: u32, hash: u128) {
        self.resident.entry(node).or_default().insert(hash);
    }

    /// Retract one residency mark (worker sent `BlockEvict`).
    pub fn evict(&mut self, node: u32, hash: u128) {
        if let Some(s) = self.resident.get_mut(&node) {
            s.remove(&hash);
        }
    }

    /// Drop every mark for `node` — worker death, alongside
    /// `DataRegistry::clear_node_locations`.
    pub fn clear_node(&mut self, node: u32) {
        self.resident.remove(&node);
    }
}

struct Slot {
    value: Value,
    bytes: u64,
    tick: u64,
}

/// Worker-side decoded-block cache: LRU under a byte budget.
///
/// Blocks are immutable, so there is no dirtiness or write-back — only
/// recency. The LRU order lives in a `BTreeMap<tick, hash>` (monotonic
/// tick per touch): O(log n) touch/evict with no linked-list unsafe code.
pub(crate) struct BlockCache {
    budget: u64,
    used: u64,
    tick: u64,
    slots: HashMap<u128, Slot>,
    lru: BTreeMap<u64, u128>,
}

impl BlockCache {
    /// Empty cache bounded by `budget` bytes of encoded-payload size.
    pub fn new(budget: u64) -> BlockCache {
        BlockCache { budget, used: 0, tick: 0, slots: HashMap::new(), lru: BTreeMap::new() }
    }

    fn touch(slot: &mut Slot, lru: &mut BTreeMap<u64, u128>, tick: &mut u64, hash: u128) {
        lru.remove(&slot.tick);
        *tick += 1;
        slot.tick = *tick;
        lru.insert(slot.tick, hash);
    }

    /// The cached value, refreshing its recency. `None` is a miss.
    pub fn get(&mut self, hash: u128) -> Option<Value> {
        let slot = self.slots.get_mut(&hash)?;
        Self::touch(slot, &mut self.lru, &mut self.tick, hash);
        Some(slot.value.clone())
    }

    /// Insert (or refresh) a block, evicting least-recently-used blocks
    /// until the budget holds again. Returns the evicted hashes so the
    /// caller can ship `BlockEvict` frames. A block larger than the whole
    /// budget still resides (alone) — the alternative is thrashing on
    /// every use.
    pub fn insert(&mut self, hash: u128, value: Value, bytes: u64) -> Vec<u128> {
        if let Some(slot) = self.slots.get_mut(&hash) {
            Self::touch(slot, &mut self.lru, &mut self.tick, hash);
            return Vec::new();
        }
        self.tick += 1;
        self.slots.insert(hash, Slot { value, bytes, tick: self.tick });
        self.lru.insert(self.tick, hash);
        self.used += bytes;
        let mut evicted = Vec::new();
        while self.used > self.budget && self.slots.len() > 1 {
            let (&old_tick, &old_hash) = self.lru.iter().next().expect("lru nonempty");
            if old_hash == hash {
                // Only the fresh block and older-but-refreshed ones left;
                // never evict what we just inserted.
                break;
            }
            self.lru.remove(&old_tick);
            let slot = self.slots.remove(&old_hash).expect("slot exists");
            self.used -= slot.bytes;
            evicted.push(old_hash);
        }
        evicted
    }

    /// Bytes currently resident (encoded-payload accounting).
    pub fn resident_bytes(&self) -> u64 {
        self.used
    }

    /// Number of resident blocks.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(n: i64) -> Value {
        Value::new(n)
    }

    #[test]
    fn content_hash_separates_tag_and_payload() {
        assert_ne!(content_hash("ab", b"c"), content_hash("a", b"bc"));
        assert_ne!(content_hash("t", b"x"), content_hash("t", b"y"));
        assert_eq!(content_hash("t", b"x"), content_hash("t", b"x"));
    }

    #[test]
    fn store_memoises_per_version_and_dedups_by_content() {
        // i64 rides the builtin "std.i64" codec.
        let mut store = BlockStore::new();
        let v1 = DataVersion { handle: crate::data::DataHandle(1), version: 0 };
        let v2 = DataVersion { handle: crate::data::DataHandle(2), version: 0 };
        let b1 = store.encode(v1, &val(42)).expect("codec registered");
        let b1b = store.encode(v1, &val(42)).expect("memo hit");
        assert!(Arc::ptr_eq(&b1, &b1b), "same version returns the memoised block");
        // Different version, identical content: same hash, shared block.
        let b2 = store.encode(v2, &val(42)).expect("codec registered");
        assert_eq!(b1.hash, b2.hash);
        assert!(Arc::ptr_eq(&b1, &b2), "identical content collapses to one block");
        assert_eq!(store.versions_of(b1.hash), &[v1, v2]);
        assert!(store.lookup(b1.hash).is_some());
    }

    #[test]
    fn store_residency_add_evict_clear() {
        let mut store = BlockStore::new();
        store.add_resident(3, 7);
        store.add_resident(3, 9);
        store.add_resident(4, 7);
        assert!(store.is_resident(3, 7));
        store.evict(3, 7);
        assert!(!store.is_resident(3, 7));
        assert!(store.is_resident(3, 9));
        assert!(store.is_resident(4, 7));
        store.clear_node(4);
        assert!(!store.is_resident(4, 7));
    }

    #[test]
    fn threshold_routes_declared_sizes() {
        let mut store = BlockStore::new();
        assert!(!store.routes_block(1024));
        assert!(store.routes_block(DEFAULT_INLINE_THRESHOLD));
        store.set_inline_threshold(10);
        assert!(store.routes_block(1024));
        store.set_inline_threshold(u64::MAX);
        assert!(!store.routes_block(1 << 40), "MAX disables the block plane");
    }

    #[test]
    fn cache_evicts_least_recently_used_under_budget() {
        let mut cache = BlockCache::new(100);
        assert!(cache.insert(1, val(1), 40).is_empty());
        assert!(cache.insert(2, val(2), 40).is_empty());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        let evicted = cache.insert(3, val(3), 40);
        assert_eq!(evicted, vec![2]);
        assert!(cache.get(2).is_none(), "evicted block misses");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.resident_bytes(), 80);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_keeps_oversized_block_alone() {
        let mut cache = BlockCache::new(100);
        assert!(cache.insert(1, val(1), 60).is_empty());
        let evicted = cache.insert(2, val(2), 500);
        assert_eq!(evicted, vec![1], "everything else evicted");
        assert!(cache.get(2).is_some(), "oversized block still resides");
        assert_eq!(cache.resident_bytes(), 500);
    }

    #[test]
    fn cache_reinsert_refreshes_without_double_count() {
        let mut cache = BlockCache::new(100);
        assert!(cache.insert(1, val(1), 30).is_empty());
        assert!(cache.insert(2, val(2), 30).is_empty());
        assert!(cache.insert(1, val(1), 30).is_empty(), "refresh, no eviction");
        assert_eq!(cache.resident_bytes(), 60);
        // 2 is now the LRU victim despite inserting 1 first.
        let evicted = cache.insert(3, val(3), 60);
        assert_eq!(evicted, vec![2]);
    }
}
