//! Threaded backend: real execution on a worker thread pool.
//!
//! Workers model the COMPSs worker processes: each dequeues one placed task,
//! runs its body (catching panics — a crashing training script must not
//! take the runtime down, it must trigger the retry policy), then reports
//! completion and pulls more work. Resource accounting in the scheduler
//! bounds in-flight tasks by the cluster's core/GPU slots, so a 48-core
//! single-node config runs at most 48 single-core tasks concurrently
//! regardless of pool size.
//!
//! # Sharded run queues
//!
//! The pool is decentralized: each worker owns a `Shard` — a small
//! lock-protected run queue plus its own condvar — instead of all workers
//! contending on one global queue under the core lock. A producer pushes to
//! an *idle* worker's shard when one exists (that worker can start
//! immediately) and round-robins otherwise, then signals exactly that
//! shard's condvar with `notify_one`; the old design broadcast
//! `notify_all` to up to 64 parked workers per completion and let all but
//! one go back to sleep. Workers that find their own queue empty steal from
//! sibling shards (opportunistic `try_lock` scan first, then one blocking
//! sweep before parking), so a burst pushed to few shards still spreads
//! across the pool. A `notified` token set under the shard lock by every
//! producer closes the classic lost-wakeup race between "queue looked
//! empty" and "worker parked", which is also what makes shutdown purely
//! signal-driven — no poll timeout anywhere in the worker loop.
//!
//! Completion is equally decentralized: trace emission and `ExecMsg`
//! construction happen *outside* the core lock (placements ride along as
//! `Arc<Placement>`, names as interned `Arc<str>`), so the lock is held
//! only for the dependency-graph/scheduler bookkeeping itself.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use cluster::Cluster;
use paratrace::{CoreId, EventKind, TaskRef};
use parking_lot::{Condvar, Mutex};

use crate::data::Value;
use crate::runtime::{complete_attempt, Core, RunningExec, Shared};
use crate::scheduler::Placement;
use crate::task::{TaskContext, TaskError, TaskFn};

/// A placed task ready for a worker. Carries everything the worker needs to
/// run the body *and* emit its trace records without touching the core
/// lock; the `Arc`s are shared with the runtime's `RunningExec`.
pub(crate) struct ExecMsg {
    pub exec_id: u64,
    pub ctx: TaskContext,
    pub body: Arc<TaskFn>,
    pub inputs: Vec<Value>,
    pub name: Arc<str>,
    pub placement: Arc<Placement>,
    pub start_us: u64,
}

/// One worker's run queue. `notified` is the wakeup token: a producer sets
/// it under the lock before signalling, so a worker that checks the queue,
/// finds it empty, and parks can never miss a push that raced in between.
struct ShardState {
    queue: VecDeque<ExecMsg>,
    notified: bool,
}

/// A worker's shard: queue + condvar + an "I'm parked" hint for producers.
struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
    /// Owner is parked (or about to park). Producers prefer idle shards so
    /// a push wakes a worker that can start immediately; the flag is a
    /// routing hint only — correctness rests on `notified`.
    idle: AtomicBool,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            state: Mutex::new(ShardState { queue: VecDeque::new(), notified: false }),
            cv: Condvar::new(),
            idle: AtomicBool::new(false),
        }
    }
}

/// State shared by all workers and producers.
pub(crate) struct PoolShared {
    shards: Vec<Shard>,
    /// Round-robin cursor for pushes when no worker is idle.
    next_push: AtomicUsize,
    shutdown: AtomicBool,
}

impl PoolShared {
    /// Push one message: to an idle worker's shard when one exists, else
    /// round-robin; then signal exactly that shard's owner.
    fn push(&self, shared: &Shared, msg: ExecMsg) {
        let n = self.shards.len();
        let start = self.next_push.fetch_add(1, Ordering::Relaxed) % n;
        let target = (0..n)
            .map(|i| (start + i) % n)
            .find(|&i| self.shards[i].idle.load(Ordering::Relaxed))
            .unwrap_or(start);
        let shard = &self.shards[target];
        {
            let mut st = shard.state.lock();
            st.queue.push_back(msg);
            st.notified = true;
        }
        shard.cv.notify_one();
        shared.metrics.wakeups.incr();
    }
}

/// The worker pool: spawned threads plus the shared shard array.
pub(crate) struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
    pool: Arc<PoolShared>,
}

impl WorkerPool {
    /// Spawn workers sized to the cluster's core capacity (capped — beyond
    /// the physical machine more threads just oversubscribe).
    pub fn start(shared: Arc<Shared>, cluster: &Cluster) -> WorkerPool {
        let threads = (cluster.total_cores() as usize).clamp(1, 64);
        let pool = Arc::new(PoolShared {
            shards: (0..threads).map(|_| Shard::new()).collect(),
            next_push: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || worker_loop(shared, pool, me))
            })
            .collect();
        WorkerPool { handles, pool }
    }

    /// Hand a batch of prepared messages to the workers. Call *without* the
    /// core lock: this emits dispatch trace events and takes shard locks.
    pub fn enqueue(&self, shared: &Shared, msgs: Vec<ExecMsg>) {
        enqueue(&self.pool, shared, msgs);
    }

    /// Stop workers and join them. Signal-driven: every shard is notified
    /// once (with its wakeup token set), so parked workers exit on the
    /// signal rather than on a poll timeout. Workers drain queued work
    /// before exiting.
    pub fn shutdown(&mut self) {
        self.pool.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.pool.shards {
            shard.state.lock().notified = true;
            shard.cv.notify_one();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Place every placeable ready task, building one [`ExecMsg`] per
/// placement. Call with the core locked; everything Arc-cheap happens here,
/// everything slow (trace emission, shard pushes) in [`enqueue`] after the
/// lock is dropped.
pub(crate) fn collect_dispatch(shared: &Shared, core: &mut Core) -> Vec<ExecMsg> {
    // One relaxed load up front decides whether this dispatch round pays
    // for Instant::now() timing at all.
    let measure = shared.metrics.enabled();
    let mut msgs = Vec::new();
    loop {
        // Threaded deployments are single-machine; locality is moot.
        let decision_started = measure.then(std::time::Instant::now);
        let popped = core.sched.pop_placeable(|_, _| 0);
        if let Some(t0) = decision_started {
            shared.metrics.sched_decision.record(t0.elapsed().as_micros() as u64);
        }
        let Some((entry, placement)) = popped else { break };
        let placement = Arc::new(placement);
        let task = entry.task;
        let inst = core.instances.get(&task).expect("ready task has an instance");
        let inputs: Vec<Value> = inst
            .reads()
            .iter()
            .map(|v| core.data.get(*v).expect("ready task inputs are computed"))
            .collect();
        let name = Arc::clone(&inst.def.name);
        // honour the scheduler's implementation choice (@implement)
        let body = if placement.variant == 0 {
            Arc::clone(&inst.def.body)
        } else {
            Arc::clone(&inst.def.alternatives[placement.variant - 1].body)
        };
        let attempt = inst.attempt;
        let now = shared.wall_us();
        shared.metrics.dispatched.incr();
        shared.metrics.dep_wait.record(now.saturating_sub(inst.submitted_us));
        let exec_id = core.next_exec;
        core.next_exec += 1;
        let ctx = TaskContext {
            task,
            attempt,
            node: placement.node,
            cores: placement.cores.clone(),
            gpus: placement.gpus.clone(),
            peer_nodes: placement.extra.iter().map(|(n, _, _)| *n).collect(),
            simulated: false,
        };
        core.running.insert(
            exec_id,
            RunningExec {
                task,
                placement: Arc::clone(&placement),
                constraint: entry.constraint,
                attempt,
                start_us: now,
            },
        );
        core.graph.set_running(task);
        msgs.push(ExecMsg { exec_id, ctx, body, inputs, name, placement, start_us: now });
    }
    shared.metrics.ready_depth.set(core.sched.ready_len() as f64);
    shared.metrics.running.set(core.running.len() as f64);
    msgs
}

/// Emit dispatch trace events and distribute messages to worker shards.
/// Call without the core lock.
pub(crate) fn enqueue(pool: &PoolShared, shared: &Shared, msgs: Vec<ExecMsg>) {
    for msg in msgs {
        shared.trace.event(
            CoreId::new(msg.placement.node, msg.placement.cores.first().copied().unwrap_or(0)),
            msg.start_us,
            EventKind::TaskDispatch(TaskRef::new(msg.ctx.task.0, Arc::clone(&msg.name))),
        );
        pool.push(shared, msg);
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("task panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("task panicked: {s}")
    } else {
        "task panicked".to_string()
    }
}

/// Fetch the next message for worker `me`: own shard first, then an
/// opportunistic `try_lock` steal sweep, then — with the idle flag raised so
/// producers re-route to us — a blocking sweep and a park on our condvar.
/// Returns `None` only at shutdown with every reachable queue drained.
fn next_msg(shared: &Shared, pool: &PoolShared, me: usize) -> Option<ExecMsg> {
    let shards = &pool.shards;
    let my = &shards[me];
    loop {
        if let Some(m) = my.state.lock().queue.pop_front() {
            return Some(m);
        }
        // Opportunistic stealing: skip shards whose lock is contended.
        for k in 1..shards.len() {
            let j = (me + k) % shards.len();
            if let Some(mut st) = shards[j].state.try_lock() {
                if let Some(m) = st.queue.pop_front() {
                    shared.metrics.steals.incr();
                    return Some(m);
                }
            }
        }
        if pool.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        // Raise the idle flag *before* the final sweep: any push from here
        // on prefers our shard and sets our `notified` token, so the park
        // below cannot strand it.
        my.idle.store(true, Ordering::SeqCst);
        for k in 1..shards.len() {
            let j = (me + k) % shards.len();
            let mut st = shards[j].state.lock();
            if let Some(m) = st.queue.pop_front() {
                drop(st);
                my.idle.store(false, Ordering::SeqCst);
                shared.metrics.steals.incr();
                return Some(m);
            }
        }
        let mut st = my.state.lock();
        if st.queue.is_empty() && !st.notified && !pool.shutdown.load(Ordering::SeqCst) {
            my.cv.wait(&mut st);
        }
        st.notified = false;
        drop(st);
        my.idle.store(false, Ordering::SeqCst);
    }
}

fn worker_loop(shared: Arc<Shared>, pool: Arc<PoolShared>, me: usize) {
    // Ambient snapshot channel for every body this worker runs: blobs land
    // in the runtime's in-process store, so a retried attempt (this thread
    // or a sibling) resumes from the latest snapshot (see crate::snapshot).
    let snap_channel: Arc<dyn crate::snapshot::SnapshotChannel> =
        Arc::new(crate::snapshot::InProcessChannel(Arc::clone(&shared)));
    while let Some(msg) = next_msg(&shared, &pool, me) {
        let result = crate::snapshot::with_channel(Arc::clone(&snap_channel), || {
            catch_unwind(AssertUnwindSafe(|| (msg.body)(&msg.ctx, &msg.inputs)))
                .unwrap_or_else(|p| Err(TaskError::new(panic_message(p))))
        });

        // Trace emission needs only the message's own Arcs — no core lock.
        // (Nothing else completes a threaded exec, so the records are never
        // for a stale execution.)
        let end = shared.wall_us();
        let task_ref = TaskRef::new(msg.ctx.task.0, Arc::clone(&msg.name));
        for (node, cores) in msg.placement.node_cores() {
            for &c in cores {
                shared.trace.task_run(
                    CoreId::new(node, c),
                    msg.start_us,
                    end.max(msg.start_us + 1),
                    task_ref.clone(),
                );
            }
        }
        shared.trace.event(
            CoreId::new(msg.placement.node, msg.placement.cores.first().copied().unwrap_or(0)),
            end,
            EventKind::TaskEnd(task_ref),
        );

        let follow_on = {
            let mut core = shared.core.lock();
            complete_attempt(&shared, &mut core, msg.exec_id, result, end, false);
            collect_dispatch(&shared, &mut core)
        };
        // Waiters in `wait_on`/`barrier` park on the core condvar; workers
        // never do, so this broadcast reaches at most the main thread(s).
        shared.cv.notify_all();
        enqueue(&pool, &shared, follow_on);
    }
}
