//! Threaded backend: real execution on a worker thread pool.
//!
//! Workers model the COMPSs worker processes: each dequeues one placed task,
//! runs its body (catching panics — a crashing training script must not
//! take the runtime down, it must trigger the retry policy), then reports
//! completion and pulls more work. Resource accounting in the scheduler
//! bounds in-flight tasks by the cluster's core/GPU slots, so a 48-core
//! single-node config runs at most 48 single-core tasks concurrently
//! regardless of pool size.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use cluster::Cluster;
use paratrace::{CoreId, EventKind, TaskRef};

use crate::data::Value;
use crate::runtime::{complete_attempt, Core, RunningExec, Shared};
use crate::task::{TaskContext, TaskError, TaskFn};

/// A placed task ready for a worker.
pub(crate) struct ExecMsg {
    pub exec_id: u64,
    pub ctx: TaskContext,
    pub body: Arc<TaskFn>,
    pub inputs: Vec<Value>,
    pub name: String,
}

/// The worker pool and its shutdown flag.
pub(crate) struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
}

impl WorkerPool {
    /// Spawn workers sized to the cluster's core capacity (capped — beyond
    /// the physical machine more threads just oversubscribe).
    pub fn start(shared: Arc<Shared>, cluster: &Cluster) -> WorkerPool {
        let threads = (cluster.total_cores() as usize).clamp(1, 64);
        let shutdown = Arc::new(AtomicBool::new(false));
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || worker_loop(shared, shutdown))
            })
            .collect();
        WorkerPool { handles, shutdown, shared }
    }

    /// Place every placeable ready task and queue it for the workers.
    /// Call with the core locked.
    pub fn dispatch(&self, shared: &Shared, core: &mut Core) {
        dispatch(shared, core);
        shared.cv.notify_all();
    }

    /// Stop workers and join them.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pop placeable tasks from the scheduler into the execution queue.
pub(crate) fn dispatch(shared: &Shared, core: &mut Core) {
    // One relaxed load up front decides whether this dispatch round pays
    // for Instant::now() timing at all.
    let measure = shared.metrics.enabled();
    loop {
        // Threaded deployments are single-machine; locality is moot.
        let decision_started = measure.then(std::time::Instant::now);
        let popped = core.sched.pop_placeable(|_, _| 0);
        if let Some(t0) = decision_started {
            shared.metrics.sched_decision.record(t0.elapsed().as_micros() as u64);
        }
        let Some((entry, placement)) = popped else { break };
        let task = entry.task;
        let inst = core.instances.get(&task).expect("ready task has an instance");
        let inputs: Vec<Value> = inst
            .reads()
            .iter()
            .map(|v| core.data.get(*v).expect("ready task inputs are computed"))
            .collect();
        let name = inst.def.name.to_string();
        // honour the scheduler's implementation choice (@implement)
        let body = if placement.variant == 0 {
            Arc::clone(&inst.def.body)
        } else {
            Arc::clone(&inst.def.alternatives[placement.variant - 1].body)
        };
        let attempt = inst.attempt;
        let now = shared.wall_us();
        shared.metrics.dispatched.incr();
        shared.metrics.dep_wait.record(now.saturating_sub(inst.submitted_us));
        let exec_id = core.next_exec;
        core.next_exec += 1;
        shared.trace.event(
            CoreId::new(placement.node, placement.cores.first().copied().unwrap_or(0)),
            now,
            EventKind::TaskDispatch(TaskRef::new(task.0, name.clone())),
        );
        let ctx = TaskContext {
            task,
            attempt,
            node: placement.node,
            cores: placement.cores.clone(),
            gpus: placement.gpus.clone(),
            peer_nodes: placement.extra.iter().map(|(n, _, _)| *n).collect(),
            simulated: false,
        };
        core.running.insert(
            exec_id,
            RunningExec { task, placement, constraint: entry.constraint, attempt, start_us: now },
        );
        core.graph.set_running(task);
        core.exec_queue.push_back(ExecMsg { exec_id, ctx, body, inputs, name });
    }
    shared.metrics.ready_depth.set(core.sched.ready_len() as f64);
    shared.metrics.running.set(core.running.len() as f64);
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("task panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("task panicked: {s}")
    } else {
        "task panicked".to_string()
    }
}

fn worker_loop(shared: Arc<Shared>, shutdown: Arc<AtomicBool>) {
    loop {
        let msg = {
            let mut core = shared.core.lock();
            loop {
                if let Some(m) = core.exec_queue.pop_front() {
                    break m;
                }
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared.cv.wait_for(&mut core, std::time::Duration::from_millis(50));
            }
        };

        let result = catch_unwind(AssertUnwindSafe(|| (msg.body)(&msg.ctx, &msg.inputs)))
            .unwrap_or_else(|p| Err(TaskError::new(panic_message(p))));

        let end = shared.wall_us();
        let mut core = shared.core.lock();
        if let Some(run) = core.running.get(&msg.exec_id) {
            let task_ref = TaskRef::new(msg.ctx.task.0, msg.name.clone());
            for (node, cores) in run.placement.node_cores() {
                for &c in cores {
                    shared.trace.task_run(
                        CoreId::new(node, c),
                        run.start_us,
                        end.max(run.start_us + 1),
                        task_ref.clone(),
                    );
                }
            }
            shared.trace.event(
                CoreId::new(run.placement.node, run.placement.cores.first().copied().unwrap_or(0)),
                end,
                EventKind::TaskEnd(task_ref),
            );
        }
        complete_attempt(&shared, &mut core, msg.exec_id, result, end, false);
        dispatch(&shared, &mut core);
        drop(core);
        shared.cv.notify_all();
    }
}

/// Ensure a `VecDeque` import isn't flagged; the exec queue type lives on
/// [`Core`].
pub(crate) type ExecQueue = VecDeque<ExecMsg>;
