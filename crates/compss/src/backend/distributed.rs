//! Distributed backend: real execution on remote worker daemons over TCP.
//!
//! The driver side mirrors the threaded backend's split: everything that
//! needs the core lock (placement, residency decisions, exec bookkeeping)
//! happens in [`ConnMgr::collect_dispatch_remote`], and everything slow —
//! value encoding, frame batching, socket writes, trace emission — happens
//! in [`ConnMgr::send`] after the lock is dropped. One reader thread per
//! worker turns `Done`/`Failed` frames back into
//! [`crate::runtime::complete_attempt`] calls; a monitor thread paces
//! heartbeats and declares a worker dead when it goes silent.
//!
//! # Pipelining and windows
//!
//! Submits to one worker are batched into a single `write` and capped by a
//! per-worker *window* of outstanding tasks; frames beyond the window wait
//! in a pending queue and drain as completions stream back. The scheduler
//! already bounds in-flight work by the worker's advertised cores, so the
//! default window (2× cores) only smooths bursts — tests shrink it to
//! exercise the queueing path.
//!
//! # Data movement
//!
//! Task inputs travel inline ([`WireArg::Inline`]) unless the driver's
//! residency tracking says the worker already holds the version, in which
//! case only the key is sent ([`WireArg::Cached`]). The worker caches every
//! inline argument it receives; a cache miss (cold cache after reconnect,
//! or an output the worker produced under a key it was never told) falls
//! back to a `Fetch` round trip served by the driver. Residency for a node
//! is wiped whenever its connection drops.
//!
//! # Fault tolerance
//!
//! A worker is declared dead on connection error, EOF, or heartbeat
//! timeout. Its in-flight executions are failed with `node_gone = true`, so
//! [`crate::fault::RetryPolicy`] re-routes them to surviving workers; ready
//! tasks that no surviving node could ever run are failed immediately
//! (cascade) instead of hanging the barrier. With
//! [`DistributedConfig::reconnect`] enabled the driver attempts one
//! reconnect first and revives the node on success.
//!
//! Multi-node (`@multinode`) constraints are not dispatched remotely — the
//! simulated backend remains the home for those experiments.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use paratrace::{CoreId, EventKind, TaskRef};
use parking_lot::{Condvar, Mutex};
use rnet::{read_frame, write_frame, write_frames, Blob, Frame, FrameReader, WireArg};

use crate::codec;
use crate::data::{DataHandle, DataVersion, Value};
use crate::registry::TaskRegistry;
use crate::runtime::{complete_attempt, fail_task_cascade, Core, RunningExec, Shared};
use crate::task::{TaskContext, TaskError, TaskId};

/// Tuning knobs for the driver side of a distributed runtime.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// How often the monitor thread pings each worker.
    pub heartbeat_interval: Duration,
    /// Silence longer than this declares the worker dead.
    pub heartbeat_timeout: Duration,
    /// Per-worker cap on outstanding submits; `None` sizes it to twice the
    /// worker's advertised cores.
    pub window: Option<u32>,
    /// Attempt one reconnect (and revive the node) before failing a dead
    /// worker's tasks over to the survivors.
    pub reconnect: bool,
    /// How long to keep retrying the initial connection to each worker.
    pub connect_timeout: Duration,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_millis(1500),
            window: None,
            reconnect: false,
            connect_timeout: Duration::from_secs(5),
        }
    }
}

/// Wire key for a data version: handle id in the high 32 bits, version in
/// the low 32. Handles are dense small integers, so this never collides.
fn data_key(v: DataVersion) -> u64 {
    (v.handle.0 << 32) | u64::from(v.version)
}

/// High bit of a wire key marks snapshot traffic (see [`crate::snapshot`])
/// riding the same `Fetch`/`Data` frames as task data. Data keys never set
/// it: handle ids are dense small integers (`data_key` puts them in bits
/// 32..63), so bit 63 is free to carve out a second key namespace.
/// Snapshot blobs are raw bytes — no codec — because they are opaque to
/// the runtime; only the task that saved them knows the layout.
pub(crate) const SNAP_BIT: u64 = 1 << 63;

/// Codec tag stamped on snapshot `Data` frames. Never looked up in the
/// codec registry — snapshot bytes cross the wire verbatim.
pub(crate) const SNAP_TAG: &str = "ckpt.snap";

fn key_version(key: u64) -> DataVersion {
    DataVersion { handle: DataHandle(key >> 32), version: key as u32 }
}

/// One argument prepared under the core lock: the value rides along only
/// when the worker is not already believed to hold it.
struct PreparedArg {
    key: u64,
    value: Option<Value>,
}

/// A placed task bound for a remote worker, prepared under the core lock
/// and encoded/sent outside it.
pub(crate) struct RemoteDispatch {
    exec_id: u64,
    node: u32,
    task_id: u64,
    attempt: u32,
    variant: u32,
    cores: Vec<u32>,
    gpus: Vec<u32>,
    args: Vec<PreparedArg>,
    name: Arc<str>,
    start_us: u64,
}

/// Mutable per-connection writer state, all under one lock.
struct LinkState {
    stream: Option<TcpStream>,
    /// Interned function names: first submit of a name carries it in full,
    /// later ones send only the id. Reset on reconnect.
    fn_ids: HashMap<Arc<str>, u64>,
    next_fn_id: u64,
    /// Submits waiting for window space, FIFO.
    pending: VecDeque<Frame>,
    /// Submits written but not yet completed.
    outstanding: u32,
    window: u32,
}

/// One remote worker as seen by the driver.
struct WorkerLink {
    node: u32,
    addr: String,
    name: String,
    writer: Mutex<LinkState>,
    /// Wall-µs of the last frame received (any kind).
    last_seen_us: AtomicU64,
    hb_seq: AtomicU64,
}

impl WorkerLink {
    /// Shut the socket down so the blocked reader thread notices; all
    /// failover logic then runs in that one thread.
    fn sever(&self) {
        let st = self.writer.lock();
        if let Some(s) = st.stream.as_ref() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

struct Inner {
    shared: Arc<Shared>,
    workers: Vec<Arc<WorkerLink>>,
    cfg: DistributedConfig,
    stop: AtomicBool,
}

/// Driver-side connection manager: owns one [`WorkerLink`] per worker plus
/// the reader/monitor threads.
pub(crate) struct ConnMgr {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

/// A freshly connected worker before the runtime exists: the socket plus
/// what its `Hello` advertised.
pub(crate) struct WorkerBootstrap {
    pub stream: TcpStream,
    pub addr: String,
    pub name: String,
    pub cores: u32,
    pub gpus: u32,
    pub mem_gib: u32,
}

/// Connect to every worker and collect their `Hello`s. Retries each
/// address until `connect_timeout` so workers racing the driver to start
/// (the ci.sh smoke pattern) are tolerated.
pub(crate) fn connect_workers(
    addrs: &[String],
    timeout: Duration,
) -> io::Result<Vec<WorkerBootstrap>> {
    addrs
        .iter()
        .map(|addr| {
            let deadline = std::time::Instant::now() + timeout;
            let stream = loop {
                match TcpStream::connect(addr.as_str()) {
                    Ok(s) => break s,
                    Err(e) if std::time::Instant::now() < deadline => {
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => {
                        return Err(io::Error::new(
                            e.kind(),
                            format!("connecting to worker {addr}: {e}"),
                        ))
                    }
                }
            };
            stream.set_nodelay(true).ok();
            hello_handshake(stream, addr.clone())
        })
        .collect()
}

/// Read the `Hello` a worker sends on connect.
fn hello_handshake(mut stream: TcpStream, addr: String) -> io::Result<WorkerBootstrap> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = FrameReader::new();
    let frame = read_frame(&mut stream, &mut reader)?;
    stream.set_read_timeout(None)?;
    match frame {
        Some(Frame::Hello { name, cores, gpus, mem_gib }) => {
            Ok(WorkerBootstrap { stream, addr, name, cores, gpus, mem_gib })
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("worker {addr} did not say Hello (got {other:?})"),
        )),
    }
}

impl ConnMgr {
    /// Wire up the links and spawn reader + monitor threads. `boots` are in
    /// node-id order (the same order the cluster spec was built in).
    pub fn start(
        shared: Arc<Shared>,
        boots: Vec<WorkerBootstrap>,
        cfg: DistributedConfig,
    ) -> ConnMgr {
        let workers: Vec<Arc<WorkerLink>> = boots
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                let window = cfg.window.unwrap_or(b.cores.saturating_mul(2)).max(1);
                Arc::new(WorkerLink {
                    node: i as u32,
                    addr: b.addr,
                    name: b.name,
                    writer: Mutex::new(LinkState {
                        stream: Some(b.stream),
                        fn_ids: HashMap::new(),
                        next_fn_id: 1,
                        pending: VecDeque::new(),
                        outstanding: 0,
                        window,
                    }),
                    last_seen_us: AtomicU64::new(shared.wall_us()),
                    hb_seq: AtomicU64::new(0),
                })
            })
            .collect();
        let inner = Arc::new(Inner { shared, workers, cfg, stop: AtomicBool::new(false) });
        let mut threads = Vec::new();
        for link in &inner.workers {
            let inner = Arc::clone(&inner);
            let link = Arc::clone(link);
            threads.push(std::thread::spawn(move || reader_thread(inner, link)));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || monitor_thread(inner)));
        }
        ConnMgr { inner, threads }
    }

    /// Worker display labels, indexed by node id: `name@addr`.
    pub fn labels(&self) -> Vec<String> {
        self.inner.workers.iter().map(|w| format!("{}@{}", w.name, w.addr)).collect()
    }

    /// Place every placeable ready task for remote execution. Call with the
    /// core locked; pair with [`ConnMgr::send`] after unlocking.
    pub fn collect_dispatch_remote(&self, core: &mut Core) -> Vec<RemoteDispatch> {
        collect_dispatch_remote(&self.inner.shared, core)
    }

    /// Encode and transmit prepared dispatches (batched per worker), then
    /// emit their dispatch trace events. Call *without* the core lock.
    pub fn send(&self, work: Vec<RemoteDispatch>) {
        send_dispatches(&self.inner, work);
    }

    /// Graceful stop: send `Shutdown` to every live worker, sever the
    /// sockets, and join the threads.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for link in &self.inner.workers {
            {
                let mut st = link.writer.lock();
                if let Some(stream) = st.stream.as_mut() {
                    let _ = write_frame(stream, &Frame::Shutdown);
                }
            }
            link.sever();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The core-locked half of dispatch, mirroring the threaded backend's
/// `collect_dispatch`: pop placeable tasks, decide inline-vs-cached per
/// input, register the `RunningExec`. Values are cloned (`Arc` bumps) here
/// and encoded later, off-lock.
pub(crate) fn collect_dispatch_remote(shared: &Shared, core: &mut Core) -> Vec<RemoteDispatch> {
    let measure = shared.metrics.enabled();
    let mut msgs = Vec::new();
    loop {
        let decision_started = measure.then(std::time::Instant::now);
        let popped = {
            // Disjoint field borrows: the locality closure reads data and
            // instances while the scheduler is borrowed mutably.
            let Core { sched, data, instances, .. } = core;
            sched.pop_placeable(|t, n| {
                instances.get(&t).map_or(0, |inst| data.locality_score(&inst.reads(), n))
            })
        };
        if let Some(t0) = decision_started {
            shared.metrics.sched_decision.record(t0.elapsed().as_micros() as u64);
        }
        let Some((entry, placement)) = popped else { break };
        let placement = Arc::new(placement);
        let task = entry.task;
        let node = placement.node;
        let inst = core.instances.get(&task).expect("ready task has an instance");
        let name = Arc::clone(&inst.def.name);
        let attempt = inst.attempt;
        let submitted_us = inst.submitted_us;
        let reads = inst.reads();
        let mut args = Vec::with_capacity(reads.len());
        for v in reads {
            let key = data_key(v);
            if core.data.is_on_node(v, node) {
                args.push(PreparedArg { key, value: None });
            } else {
                let value = core.data.get(v).expect("ready task inputs are computed");
                // Optimistic residency: the worker caches inline args as
                // they arrive, in submit order, so later submits on this
                // socket may rely on it. Cleared if the connection drops.
                core.data.add_location(v, node);
                args.push(PreparedArg { key, value: Some(value) });
            }
        }
        let now = shared.wall_us();
        shared.metrics.dispatched.incr();
        shared.metrics.dep_wait.record(now.saturating_sub(submitted_us));
        let exec_id = core.next_exec;
        core.next_exec += 1;
        core.running.insert(
            exec_id,
            RunningExec {
                task,
                placement: Arc::clone(&placement),
                constraint: entry.constraint,
                attempt,
                start_us: now,
            },
        );
        core.graph.set_running(task);
        msgs.push(RemoteDispatch {
            exec_id,
            node,
            task_id: task.0,
            attempt,
            variant: placement.variant as u32,
            cores: placement.cores.clone(),
            gpus: placement.gpus.clone(),
            args,
            name,
            start_us: now,
        });
    }
    shared.metrics.ready_depth.set(core.sched.ready_len() as f64);
    shared.metrics.running.set(core.running.len() as f64);
    msgs
}

/// Off-lock half of dispatch: encode values, intern names, batch frames
/// per worker under its window, write once per worker.
fn send_dispatches(inner: &Arc<Inner>, work: Vec<RemoteDispatch>) {
    if work.is_empty() {
        return;
    }
    // Dispatch trace events first (cheap, lock-free collector).
    for d in &work {
        inner.shared.trace.event(
            CoreId::new(d.node, d.cores.first().copied().unwrap_or(0)),
            d.start_us,
            EventKind::TaskDispatch(TaskRef::new(d.task_id, Arc::clone(&d.name))),
        );
    }
    let mut undeliverable: Vec<(u64, String)> = Vec::new();
    let mut dead_links: Vec<Arc<WorkerLink>> = Vec::new();
    let mut by_node: HashMap<u32, Vec<RemoteDispatch>> = HashMap::new();
    for d in work {
        by_node.entry(d.node).or_default().push(d);
    }
    for (node, batch) in by_node {
        let link = &inner.workers[node as usize];
        let mut frames = Vec::with_capacity(batch.len());
        let mut st = link.writer.lock();
        for d in batch {
            let mut args = Vec::with_capacity(d.args.len());
            let mut encode_err = None;
            for a in &d.args {
                match &a.value {
                    None => args.push(WireArg::Cached { key: a.key }),
                    Some(v) => match codec::encode_value(v) {
                        Some(blob) => args.push(WireArg::Inline { key: a.key, blob }),
                        None => {
                            encode_err = Some(format!(
                                "no wire codec registered for an input of task '{}'",
                                d.name
                            ));
                            break;
                        }
                    },
                }
            }
            if let Some(msg) = encode_err {
                undeliverable.push((d.exec_id, msg));
                continue;
            }
            let fn_name = if st.fn_ids.contains_key(&d.name) {
                None
            } else {
                let id = st.next_fn_id;
                st.next_fn_id += 1;
                st.fn_ids.insert(Arc::clone(&d.name), id);
                Some(d.name.to_string())
            };
            let fn_id = st.fn_ids[&d.name];
            frames.push(Frame::Submit {
                exec_id: d.exec_id,
                task_id: d.task_id,
                attempt: d.attempt,
                node: d.node,
                fn_id,
                fn_name,
                variant: d.variant,
                cores: d.cores,
                gpus: d.gpus,
                args,
            });
        }
        st.pending.extend(frames);
        if !flush_pending(&inner.shared, &mut st) {
            dead_links.push(Arc::clone(link));
        }
    }
    // Encoding failures become failed attempts under the normal retry
    // machinery (they will exhaust retries and cascade).
    if !undeliverable.is_empty() {
        let now = inner.shared.wall_us();
        let follow = {
            let mut core = inner.shared.core.lock();
            for (exec_id, msg) in undeliverable {
                complete_attempt(
                    &inner.shared,
                    &mut core,
                    exec_id,
                    Err(TaskError::new(msg)),
                    now,
                    false,
                );
            }
            collect_dispatch_remote(&inner.shared, &mut core)
        };
        inner.shared.cv.notify_all();
        send_dispatches(inner, follow);
    }
    // A write error means the connection is gone: sever it so the reader
    // thread runs the one true failover path.
    for link in dead_links {
        link.sever();
    }
}

/// Write as many pending submits as the window allows, as one batch.
/// Returns `false` when the socket write failed (link is dead).
fn flush_pending(shared: &Shared, st: &mut LinkState) -> bool {
    if st.stream.is_none() {
        return true; // already severed; frames stay pending until failover
    }
    let n = (st.window.saturating_sub(st.outstanding) as usize).min(st.pending.len());
    if n == 0 {
        return true;
    }
    let batch: Vec<Frame> = st.pending.drain(..n).collect();
    let stream = st.stream.as_mut().expect("checked above");
    match write_frames(stream, &batch) {
        Ok(bytes) => {
            st.outstanding += n as u32;
            shared.metrics.net_bytes_sent.add(bytes as u64);
            true
        }
        Err(_) => false,
    }
}

/// Counting adapter so every byte read from a worker lands in the
/// `rnet_bytes_received_total` series.
struct CountingRead<'a> {
    inner: &'a mut TcpStream,
    counter: &'a runmetrics::Counter,
}

impl Read for CountingRead<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.counter.add(n as u64);
        Ok(n)
    }
}

/// Per-worker reader: turn incoming frames into runtime actions until the
/// connection dies, then run failover (optionally reconnecting).
fn reader_thread(inner: Arc<Inner>, link: Arc<WorkerLink>) {
    loop {
        reader_loop(&inner, &link);
        if !handle_disconnect(&inner, &link) {
            return;
        }
    }
}

fn reader_loop(inner: &Arc<Inner>, link: &Arc<WorkerLink>) {
    let Some(mut stream) = link.writer.lock().stream.as_ref().and_then(|s| s.try_clone().ok())
    else {
        return;
    };
    let mut reader = FrameReader::new();
    loop {
        let frame = {
            let mut counting = CountingRead {
                inner: &mut stream,
                counter: &inner.shared.metrics.net_bytes_received,
            };
            match read_frame(&mut counting, &mut reader) {
                Ok(Some(f)) => f,
                Ok(None) | Err(_) => return,
            }
        };
        link.last_seen_us.store(inner.shared.wall_us(), Ordering::Relaxed);
        match frame {
            Frame::Done { exec_id, outputs } => {
                let result = decode_outputs(outputs);
                handle_completion(inner, link, exec_id, result);
            }
            Frame::Failed { exec_id, message } => {
                handle_completion(inner, link, exec_id, Err(TaskError::new(message)));
            }
            Frame::HeartbeatAck { .. } => {}
            Frame::Fetch { key } if key & SNAP_BIT != 0 => {
                // Snapshot fetch: always reply — an empty blob means "no
                // snapshot", so a fresh trial starts immediately instead
                // of blocking out the worker's fetch deadline.
                let bytes = inner.shared.snapshots.lock().get(&key).cloned().unwrap_or_default();
                let blob = Blob { tag: SNAP_TAG.to_string(), bytes };
                let mut st = link.writer.lock();
                if let Some(stream) = st.stream.as_mut() {
                    match write_frame(stream, &Frame::Data { key, blob }) {
                        Ok(bytes) => inner.shared.metrics.net_bytes_sent.add(bytes as u64),
                        Err(_) => return,
                    }
                }
            }
            Frame::Fetch { key } => {
                let value = inner.shared.core.lock().data.get(key_version(key));
                let reply = value
                    .and_then(|v| codec::encode_value(&v))
                    .map(|blob| Frame::Data { key, blob });
                let mut st = link.writer.lock();
                if let (Some(frame), Some(stream)) = (reply, st.stream.as_mut()) {
                    match write_frame(stream, &frame) {
                        Ok(bytes) => inner.shared.metrics.net_bytes_sent.add(bytes as u64),
                        Err(_) => return,
                    }
                }
            }
            Frame::Data { key, blob } if key & SNAP_BIT != 0 => {
                // A worker checkpointed (or finished) a task: keep the
                // latest snapshot per key so the retry path can ship it to
                // whichever worker inherits the task. Empty blob = discard.
                let mut snaps = inner.shared.snapshots.lock();
                if blob.bytes.is_empty() {
                    snaps.remove(&key);
                } else {
                    snaps.insert(key, blob.bytes);
                }
            }
            // Workers don't originate these driver-bound frames.
            Frame::Hello { .. }
            | Frame::Submit { .. }
            | Frame::Heartbeat { .. }
            | Frame::Data { .. }
            | Frame::Shutdown => {}
        }
    }
}

fn decode_outputs(outputs: Vec<Blob>) -> Result<Vec<Value>, TaskError> {
    outputs
        .iter()
        .map(|b| {
            codec::decode_value(b)
                .map_err(|e| TaskError::new(format!("undecodable task output: {e}")))
        })
        .collect()
}

/// One `Done`/`Failed` frame: bookkeeping under the lock, traces and
/// follow-on dispatch outside it. Late frames for already-failed-over
/// executions are ignored (`running` no longer knows the exec id).
fn handle_completion(
    inner: &Arc<Inner>,
    link: &Arc<WorkerLink>,
    exec_id: u64,
    result: Result<Vec<Value>, TaskError>,
) {
    {
        let mut st = link.writer.lock();
        st.outstanding = st.outstanding.saturating_sub(1);
        if !flush_pending(&inner.shared, &mut st) {
            drop(st);
            link.sever();
        }
    }
    let now = inner.shared.wall_us();
    let (info, follow) = {
        let mut core = inner.shared.core.lock();
        let info = core.running.get(&exec_id).map(|run| {
            let name = core
                .instances
                .get(&run.task)
                .map(|i| Arc::clone(&i.def.name))
                .unwrap_or_else(|| Arc::from("?"));
            (run.task, Arc::clone(&run.placement), run.start_us, name)
        });
        complete_attempt(&inner.shared, &mut core, exec_id, result, now, false);
        let follow = collect_dispatch_remote(&inner.shared, &mut core);
        (info, follow)
    };
    if let Some((task, placement, start_us, name)) = info {
        inner.shared.metrics.rpc_latency.record(now.saturating_sub(start_us));
        inner.shared.metrics.record_node_task(&format!("{}@{}", link.name, link.addr));
        let task_ref = TaskRef::new(task.0, name);
        for (node, cores) in placement.node_cores() {
            for &c in cores {
                inner.shared.trace.task_run(
                    CoreId::new(node, c),
                    start_us,
                    now.max(start_us + 1),
                    task_ref.clone(),
                );
            }
        }
        inner.shared.trace.event(
            CoreId::new(placement.node, placement.cores.first().copied().unwrap_or(0)),
            now,
            EventKind::TaskEnd(task_ref),
        );
    }
    inner.shared.cv.notify_all();
    send_dispatches(inner, follow);
}

/// Failover for a dead connection. Returns `true` if the link was revived
/// (reader should resume), `false` if the worker is gone for good (or the
/// runtime is shutting down).
fn handle_disconnect(inner: &Arc<Inner>, link: &Arc<WorkerLink>) -> bool {
    if inner.stop.load(Ordering::SeqCst) {
        return false;
    }
    let node = link.node;
    let now = inner.shared.wall_us();
    inner.shared.metrics.workers_lost.incr();
    inner.shared.metrics.node_failures.incr();
    inner.shared.trace.event(CoreId::new(node, 0), now, EventKind::NodeFailure);
    // Orphaned in-flight executions fail over; stale state is wiped.
    {
        let mut core = inner.shared.core.lock();
        core.sched.kill_node(node);
        core.data.clear_node_locations(node);
        let orphans: Vec<u64> = core
            .running
            .iter()
            .filter(|(_, r)| r.placement.involves(node))
            .map(|(&e, _)| e)
            .collect();
        for e in orphans {
            complete_attempt(
                &inner.shared,
                &mut core,
                e,
                Err(TaskError::new(format!("worker {} connection lost", link.addr))),
                now,
                true,
            );
        }
    }
    {
        let mut st = link.writer.lock();
        st.stream = None;
        st.outstanding = 0;
        st.fn_ids.clear();
        st.next_fn_id = 1;
        // Pending submits are for executions just failed over; drop them.
        st.pending.clear();
    }
    if inner.cfg.reconnect {
        if let Ok(boot) =
            connect_workers(std::slice::from_ref(&link.addr), inner.cfg.connect_timeout)
                .map(|mut v| v.remove(0))
        {
            {
                let mut st = link.writer.lock();
                st.stream = Some(boot.stream);
            }
            link.last_seen_us.store(inner.shared.wall_us(), Ordering::Relaxed);
            inner.shared.metrics.net_reconnects.incr();
            let follow = {
                let mut core = inner.shared.core.lock();
                core.sched.revive_node(node);
                collect_dispatch_remote(&inner.shared, &mut core)
            };
            inner.shared.cv.notify_all();
            send_dispatches(inner, follow);
            return true;
        }
    }
    // No way back: anything the surviving cluster can never run fails now
    // rather than hanging the barrier; the rest re-dispatches.
    let follow = {
        let mut core = inner.shared.core.lock();
        let doomed = core.sched.drain_unsatisfiable();
        for entry in doomed {
            fail_task_cascade(&inner.shared, &mut core, entry.task);
        }
        collect_dispatch_remote(&inner.shared, &mut core)
    };
    inner.shared.cv.notify_all();
    send_dispatches(inner, follow);
    false
}

/// Heartbeat pacing + silence detection for every link.
fn monitor_thread(inner: Arc<Inner>) {
    let timeout_us = inner.cfg.heartbeat_timeout.as_micros() as u64;
    while !inner.stop.load(Ordering::SeqCst) {
        std::thread::sleep(inner.cfg.heartbeat_interval);
        let now = inner.shared.wall_us();
        for link in &inner.workers {
            let mut st = link.writer.lock();
            let Some(stream) = st.stream.as_mut() else { continue };
            let seq = link.hb_seq.fetch_add(1, Ordering::Relaxed);
            match write_frame(stream, &Frame::Heartbeat { seq }) {
                Ok(bytes) => inner.shared.metrics.net_bytes_sent.add(bytes as u64),
                Err(_) => {
                    drop(st);
                    link.sever();
                    continue;
                }
            }
            drop(st);
            let silent = now.saturating_sub(link.last_seen_us.load(Ordering::Relaxed));
            if silent > timeout_us {
                // The reader is blocked on a dead peer; kick it into the
                // failover path.
                link.sever();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Resources a worker daemon advertises in its `Hello`.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Display name, e.g. `w0` (shows up in driver-side labels).
    pub name: String,
    /// Executor threads / schedulable cores.
    pub cores: u32,
    /// GPUs to advertise.
    pub gpus: u32,
    /// Memory to advertise, GiB.
    pub mem_gib: u32,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: "worker".to_string(),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get() as u32),
            gpus: 0,
            mem_gib: 16,
        }
    }
}

/// A task execution daemon: accepts driver connections, executes submitted
/// tasks from a [`TaskRegistry`], and streams results back.
pub struct WorkerServer {
    listener: TcpListener,
    cfg: WorkerConfig,
    registry: Arc<TaskRegistry>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

/// Control handle for a worker running on a background thread.
pub struct WorkerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    thread: Option<JoinHandle<io::Result<()>>>,
}

impl WorkerServer {
    /// Bind to `addr` (use port 0 for an OS-assigned loopback port in
    /// tests) with the given resources and task registry.
    pub fn bind(addr: &str, cfg: WorkerConfig, registry: TaskRegistry) -> io::Result<WorkerServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(WorkerServer {
            listener,
            cfg,
            registry: Arc::new(registry),
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections until halted. Each accepted driver connection gets
    /// its own reader thread plus `cores` executor threads.
    pub fn run(self) -> io::Result<()> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    if let Ok(clone) = stream.try_clone() {
                        self.conns.lock().push(clone);
                    }
                    let cfg = self.cfg.clone();
                    let registry = Arc::clone(&self.registry);
                    let stop = Arc::clone(&self.stop);
                    std::thread::spawn(move || serve_conn(stream, cfg, registry, stop));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Run on a background thread, returning a control handle (the
    /// in-process form the loopback tests and benches use).
    pub fn spawn(self) -> io::Result<WorkerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let conns = Arc::clone(&self.conns);
        let thread = std::thread::spawn(move || self.run());
        Ok(WorkerHandle { addr, stop, conns, thread: Some(thread) })
    }
}

impl WorkerHandle {
    /// The worker's listen address, as a string the driver can connect to.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// SIGKILL-equivalent: stop accepting, silence every executor (no more
    /// result frames leave this worker), and sever all connections. From
    /// the driver's point of view the worker vanishes mid-task.
    pub fn halt(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for c in self.conns.lock().iter() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// A detached closure that [`Self::halt`]s this worker — hand it to a
    /// killer thread while the test's main thread is blocked in a run.
    pub fn stopper(&self) -> impl Fn() + Send + 'static {
        let stop = Arc::clone(&self.stop);
        let conns = Arc::clone(&self.conns);
        move || {
            stop.store(true, Ordering::SeqCst);
            for c in conns.lock().iter() {
                let _ = c.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Sever current connections but keep serving new ones — the
    /// transient-network-failure half of the reconnect story.
    pub fn drop_connections(&self) {
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Halt and join the accept loop.
    pub fn join(mut self) -> io::Result<()> {
        self.halt();
        match self.thread.take() {
            Some(t) => {
                t.join().unwrap_or_else(|_| Err(io::Error::other("worker accept loop panicked")))
            }
            None => Ok(()),
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.halt();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One submitted task as queued on the worker: args are cache keys (inline
/// values were decoded and cached by the reader before queueing, so
/// same-socket ordering guarantees hold).
struct Job {
    exec_id: u64,
    task_id: u64,
    attempt: u32,
    node: u32,
    name: Arc<str>,
    variant: u32,
    cores: Vec<u32>,
    gpus: Vec<u32>,
    arg_keys: Vec<u64>,
}

/// State shared between one connection's reader and its executors.
struct ConnShared {
    writer: Mutex<TcpStream>,
    cache: Mutex<HashMap<u64, Value>>,
    cache_cv: Condvar,
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    closed: AtomicBool,
    stop: Arc<AtomicBool>,
    /// Snapshot blobs by wire key (`SNAP_BIT` set). `Some` = blob in hand;
    /// `None` = the driver confirmed it has none (a cached miss, so a
    /// fresh trial asks at most once). Waiters sync on `snaps_cv` (its own
    /// condvar: parking_lot condvars are bound to one mutex at a time).
    snaps: Mutex<HashMap<u64, Option<Vec<u8>>>>,
    snaps_cv: Condvar,
}

/// The distributed worker's ambient snapshot channel: saves stream to the
/// driver as `Data` frames (the driver keeps the latest per key), loads
/// check the local map first and fall back to one `Fetch` round trip.
/// This is the vehicle for resubmit-with-snapshot: the worker that
/// inherits a dead peer's task fetches the dead peer's last checkpoint
/// from the driver and resumes from it.
struct WorkerSnapshotChannel(Arc<ConnShared>);

impl crate::snapshot::SnapshotChannel for WorkerSnapshotChannel {
    fn save(&self, key: u64, blob: &[u8]) {
        let wire_key = key | SNAP_BIT;
        self.0.snaps.lock().insert(wire_key, Some(blob.to_vec()));
        // Best-effort ship to the driver; a torn connection surfaces later
        // as the job failing, at which point the retry re-saves anyway.
        let frame = Frame::Data {
            key: wire_key,
            blob: Blob { tag: SNAP_TAG.to_string(), bytes: blob.to_vec() },
        };
        let _ = write_frame(&mut *self.0.writer.lock(), &frame);
    }

    fn load(&self, key: u64) -> Option<Vec<u8>> {
        let wire_key = key | SNAP_BIT;
        {
            let snaps = self.0.snaps.lock();
            if let Some(entry) = snaps.get(&wire_key) {
                return entry.clone();
            }
        }
        if write_frame(&mut *self.0.writer.lock(), &Frame::Fetch { key: wire_key }).is_err() {
            return None;
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut snaps = self.0.snaps.lock();
        loop {
            if let Some(entry) = snaps.get(&wire_key) {
                return entry.clone();
            }
            if self.0.closed.load(Ordering::SeqCst) || std::time::Instant::now() >= deadline {
                // Degrade to "no snapshot": the task trains from scratch.
                return None;
            }
            self.0.snaps_cv.wait_for(&mut snaps, Duration::from_millis(50));
        }
    }

    fn discard(&self, key: u64) {
        let wire_key = key | SNAP_BIT;
        self.0.snaps.lock().remove(&wire_key);
        // Empty blob = tombstone on the driver.
        let frame = Frame::Data {
            key: wire_key,
            blob: Blob { tag: SNAP_TAG.to_string(), bytes: Vec::new() },
        };
        let _ = write_frame(&mut *self.0.writer.lock(), &frame);
    }
}

fn serve_conn(
    mut stream: TcpStream,
    cfg: WorkerConfig,
    registry: Arc<TaskRegistry>,
    stop: Arc<AtomicBool>,
) {
    let hello = Frame::Hello {
        name: cfg.name.clone(),
        cores: cfg.cores,
        gpus: cfg.gpus,
        mem_gib: cfg.mem_gib,
    };
    let Ok(writer) = stream.try_clone() else { return };
    let conn = Arc::new(ConnShared {
        writer: Mutex::new(writer),
        cache: Mutex::new(HashMap::new()),
        cache_cv: Condvar::new(),
        jobs: Mutex::new(VecDeque::new()),
        jobs_cv: Condvar::new(),
        closed: AtomicBool::new(false),
        stop,
        snaps: Mutex::new(HashMap::new()),
        snaps_cv: Condvar::new(),
    });
    if write_frame(&mut *conn.writer.lock(), &hello).is_err() {
        return;
    }
    let executors: Vec<JoinHandle<()>> = (0..cfg.cores.max(1))
        .map(|_| {
            let conn = Arc::clone(&conn);
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || executor_loop(conn, registry))
        })
        .collect();

    let mut fn_names: HashMap<u64, Arc<str>> = HashMap::new();
    let mut reader = FrameReader::new();
    loop {
        match read_frame(&mut stream, &mut reader) {
            Ok(Some(Frame::Submit {
                exec_id,
                task_id,
                attempt,
                node,
                fn_id,
                fn_name,
                variant,
                cores,
                gpus,
                args,
            })) => {
                if let Some(name) = fn_name {
                    fn_names.insert(fn_id, Arc::from(name.as_str()));
                }
                let name = fn_names.get(&fn_id).cloned().unwrap_or_else(|| Arc::from("?"));
                let mut arg_keys = Vec::with_capacity(args.len());
                let mut bad_arg = None;
                for a in args {
                    match a {
                        WireArg::Inline { key, blob } => match codec::decode_value(&blob) {
                            Ok(v) => {
                                conn.cache.lock().insert(key, v);
                                conn.cache_cv.notify_all();
                                arg_keys.push(key);
                            }
                            Err(e) => bad_arg = Some(e.to_string()),
                        },
                        WireArg::Cached { key } => arg_keys.push(key),
                    }
                }
                if let Some(msg) = bad_arg {
                    let frame = Frame::Failed { exec_id, message: msg };
                    if write_frame(&mut *conn.writer.lock(), &frame).is_err() {
                        break;
                    }
                    continue;
                }
                let job =
                    Job { exec_id, task_id, attempt, node, name, variant, cores, gpus, arg_keys };
                conn.jobs.lock().push_back(job);
                conn.jobs_cv.notify_one();
            }
            Ok(Some(Frame::Heartbeat { seq })) => {
                if write_frame(&mut *conn.writer.lock(), &Frame::HeartbeatAck { seq }).is_err() {
                    break;
                }
            }
            Ok(Some(Frame::Data { key, blob })) if key & SNAP_BIT != 0 => {
                // Snapshot fetch reply: raw bytes, empty = confirmed miss.
                // Both cases are cached so each trial asks at most once.
                let entry = if blob.bytes.is_empty() { None } else { Some(blob.bytes) };
                conn.snaps.lock().insert(key, entry);
                conn.snaps_cv.notify_all();
            }
            Ok(Some(Frame::Data { key, blob })) => {
                if let Ok(v) = codec::decode_value(&blob) {
                    conn.cache.lock().insert(key, v);
                    conn.cache_cv.notify_all();
                }
            }
            Ok(Some(Frame::Shutdown)) | Ok(None) | Err(_) => break,
            Ok(Some(_)) => {} // other frames are driver-bound; ignore
        }
    }
    conn.closed.store(true, Ordering::SeqCst);
    conn.jobs_cv.notify_all();
    conn.cache_cv.notify_all();
    for t in executors {
        let _ = t.join();
    }
}

/// Wait for `key` in the connection cache, requesting it from the driver
/// once if it is missing (cold cache after a reconnect).
fn resolve_arg(conn: &ConnShared, key: u64) -> Result<Value, TaskError> {
    let cache = conn.cache.lock();
    if let Some(v) = cache.get(&key) {
        return Ok(v.clone());
    }
    drop(cache);
    let fetch = Frame::Fetch { key };
    if write_frame(&mut *conn.writer.lock(), &fetch).is_err() {
        return Err(TaskError::new("connection lost while fetching an input"));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut cache = conn.cache.lock();
    loop {
        if let Some(v) = cache.get(&key) {
            return Ok(v.clone());
        }
        if conn.closed.load(Ordering::SeqCst) || std::time::Instant::now() >= deadline {
            return Err(TaskError::new("timed out fetching a task input"));
        }
        conn.cache_cv.wait_for(&mut cache, Duration::from_millis(50));
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("task panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("task panicked: {s}")
    } else {
        "task panicked".to_string()
    }
}

fn executor_loop(conn: Arc<ConnShared>, registry: Arc<TaskRegistry>) {
    // Task bodies on this worker snapshot through the driver: saves are
    // mirrored over the wire, loads fall back to a Fetch round trip.
    let snap_channel: Arc<dyn crate::snapshot::SnapshotChannel> =
        Arc::new(WorkerSnapshotChannel(Arc::clone(&conn)));
    loop {
        let job = {
            let mut jobs = conn.jobs.lock();
            loop {
                if let Some(j) = jobs.pop_front() {
                    break j;
                }
                if conn.closed.load(Ordering::SeqCst) {
                    return;
                }
                conn.jobs_cv.wait(&mut jobs);
            }
        };
        let frame = crate::snapshot::with_channel(Arc::clone(&snap_channel), || {
            run_job(&conn, &registry, &job)
        });
        // A halted worker goes silent — the driver must see it as a crash,
        // not a graceful completion.
        if conn.stop.load(Ordering::SeqCst) {
            return;
        }
        if write_frame(&mut *conn.writer.lock(), &frame).is_err() {
            return;
        }
    }
}

fn run_job(conn: &ConnShared, registry: &TaskRegistry, job: &Job) -> Frame {
    let fail = |message: String| Frame::Failed { exec_id: job.exec_id, message };
    let Some(body) = registry.body(&job.name, job.variant) else {
        return fail(format!("worker has no task '{}' (variant {})", job.name, job.variant));
    };
    let mut inputs = Vec::with_capacity(job.arg_keys.len());
    for &key in &job.arg_keys {
        match resolve_arg(conn, key) {
            Ok(v) => inputs.push(v),
            Err(e) => return fail(e.message),
        }
    }
    let ctx = TaskContext {
        task: TaskId(job.task_id),
        attempt: job.attempt,
        node: job.node,
        cores: job.cores.clone(),
        gpus: job.gpus.clone(),
        peer_nodes: Vec::new(),
        simulated: false,
    };
    let result = catch_unwind(AssertUnwindSafe(|| body(&ctx, &inputs)))
        .unwrap_or_else(|p| Err(TaskError::new(panic_message(p))));
    match result {
        Ok(values) => {
            let mut outputs = Vec::with_capacity(values.len());
            for v in &values {
                match codec::encode_value(v) {
                    Some(blob) => outputs.push(blob),
                    None => {
                        return fail(format!(
                            "no wire codec registered for an output of task '{}'",
                            job.name
                        ))
                    }
                }
            }
            Frame::Done { exec_id: job.exec_id, outputs }
        }
        Err(e) => fail(e.message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_keys_roundtrip() {
        for (h, v) in [(0u64, 1u32), (1, 1), (7, 3), (u32::MAX as u64, u32::MAX)] {
            let dv = DataVersion { handle: DataHandle(h), version: v };
            assert_eq!(key_version(data_key(dv)), dv);
        }
    }

    #[test]
    fn default_config_is_sane() {
        let c = DistributedConfig::default();
        assert!(c.heartbeat_timeout > c.heartbeat_interval);
        assert!(c.window.is_none());
        assert!(!c.reconnect);
        let w = WorkerConfig::default();
        assert!(w.cores >= 1);
    }
}
