//! Distributed backend: real execution on remote worker daemons over TCP,
//! built on a readiness-driven event loop.
//!
//! # Architecture
//!
//! Both sides of the wire are single-threaded event loops over
//! non-blocking sockets ([`rnet::poll::Poller`]: epoll on Linux, `poll(2)`
//! elsewhere), with per-connection reusable buffers
//! ([`rnet::nonblock::RecvBuf`] / [`rnet::nonblock::SendBuf`]) instead of
//! per-connection blocking threads:
//!
//! * **Driver.** One loop thread owns readiness for every worker link plus
//!   a self-pipe [`rnet::poll::Waker`]. A readable event drains the socket
//!   into the link's `RecvBuf` and decodes frames *zero-copy*
//!   ([`rnet::FrameRef`] borrows the buffer; `Done` outputs go straight
//!   into [`codec::decode_tagged`] without an owned `Blob`). A writable
//!   event resumes draining the link's `SendBuf`. Heartbeats are paced by
//!   the poll timeout — no separate monitor thread. Reconnect attempts
//!   (which block in `connect`) run on short-lived helper threads that
//!   hand the fresh socket back to the loop through a registration queue
//!   and the waker.
//! * **Worker.** One loop thread owns the listener and every driver
//!   connection. Executor threads never touch the socket: they push result
//!   frames into the connection's shared `SendBuf` and nudge the loop via
//!   the waker, which flushes and re-arms write interest as needed.
//!
//! # Connection state machine
//!
//! Each connection cycles through: read-buffer accumulation → in-place
//! frame decode → dispatch → write-buffer drain. Write interest is
//! registered only while the `SendBuf` holds a partially-written backlog
//! (`want_write`), so an idle connection costs one `EPOLLIN` registration
//! and zero syscalls.
//!
//! # Pipelining and windows
//!
//! Submits to one worker coalesce into the link's `SendBuf` (one `write`
//! for a burst) and are capped by a per-worker *window* of outstanding
//! tasks; submits beyond the window wait in a pending queue and drain as
//! completions stream back. The scheduler already bounds in-flight work by
//! the worker's advertised cores, so the default window (2× cores) only
//! smooths bursts — tests shrink it to exercise the queueing path.
//!
//! # Data movement
//!
//! Small task inputs travel inline ([`WireArg::Inline`]) unless the
//! driver's residency tracking says the worker already holds the version,
//! in which case only the key is sent ([`WireArg::Cached`]). The worker
//! caches every inline argument it receives; a cache miss (cold cache
//! after reconnect, or an output the worker produced under a key it was
//! never told) falls back to a `Fetch` round trip served by the driver.
//! Residency for a node is wiped whenever its connection drops.
//!
//! Values whose declared size meets
//! [`DistributedConfig::inline_threshold`] ride the content-addressed
//! block plane instead (see the `blocks` module): the driver encodes the
//! value once, hashes it, pushes the bytes ahead of the first `Submit`
//! that needs them on a node (`BlockPut`), and every later submit —
//! any trial, same content — sends only the 16-byte hash
//! ([`WireArg::Block`]). Workers hold decoded blocks in an LRU cache
//! bounded by `--cache-mem`, reporting evictions (`BlockEvict`) so the
//! driver's residency stays honest; a miss is one `BlockRequest`/
//! `BlockData` round trip, deduplicated across concurrently-starting
//! tasks. The upshot: a shared dataset crosses the wire O(workers) times
//! per sweep, not O(trials).
//!
//! # Fault tolerance
//!
//! A worker is declared dead on connection error, EOF, or heartbeat
//! timeout. Its in-flight executions are failed with `node_gone = true`, so
//! [`crate::fault::RetryPolicy`] re-routes them to surviving workers; ready
//! tasks that no surviving node could ever run are failed immediately
//! (cascade) instead of hanging the barrier. With
//! [`DistributedConfig::reconnect`] enabled the driver attempts one
//! reconnect first and revives the node on success.
//!
//! Multi-node (`@multinode`) constraints are not dispatched remotely — the
//! simulated backend remains the home for those experiments.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use paratrace::merge::TaskBounds;
use paratrace::{ClockSync, CoreId, EventKind, Record, TaskRef, TraceCollector, WorkerTrace};
use parking_lot::{Condvar, Mutex};
use rnet::{
    read_frame, Blob, Fill, Frame, FrameReader, FrameRef, Interest, Poller, RecvBuf, SendBuf,
    Waker, WireArg, WireArgRef,
};

use crate::blocks::{BlockCache, EncodedBlock, DEFAULT_INLINE_THRESHOLD};
use crate::codec;
use crate::data::{DataHandle, DataVersion, Value};
use crate::registry::TaskRegistry;
use crate::runtime::{complete_attempt, fail_task_cascade, Core, RunningExec, Shared};
use crate::task::{TaskContext, TaskError, TaskId};

/// Poll token of the self-pipe waker (driver and worker loops alike).
const WAKE_TOKEN: u64 = u64::MAX;
/// Poll token of the worker's listening socket.
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// Tuning knobs for the driver side of a distributed runtime.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// How often the driver loop pings each worker.
    pub heartbeat_interval: Duration,
    /// Silence longer than this declares the worker dead.
    pub heartbeat_timeout: Duration,
    /// Per-worker cap on outstanding submits; `None` sizes it to twice the
    /// worker's advertised cores.
    pub window: Option<u32>,
    /// Attempt one reconnect (and revive the node) before failing a dead
    /// worker's tasks over to the survivors.
    pub reconnect: bool,
    /// How long to keep retrying the initial connection to each worker.
    pub connect_timeout: Duration,
    /// Values whose declared size (`DataRegistry::bytes`, the same size
    /// model the transfer-aware scheduler scores with) is at least this
    /// many bytes travel as content-addressed blocks instead of inline
    /// `Submit` payloads. `u64::MAX` disables the block plane.
    pub inline_threshold: u64,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            heartbeat_interval: Duration::from_millis(200),
            heartbeat_timeout: Duration::from_millis(1500),
            window: None,
            reconnect: false,
            connect_timeout: Duration::from_secs(5),
            inline_threshold: DEFAULT_INLINE_THRESHOLD,
        }
    }
}

/// Wire key for a data version: handle id in the high 32 bits, version in
/// the low 32. Handles are dense small integers, so this never collides.
fn data_key(v: DataVersion) -> u64 {
    (v.handle.0 << 32) | u64::from(v.version)
}

/// High bit of a wire key marks snapshot traffic (see [`crate::snapshot`])
/// riding the same `Fetch`/`Data` frames as task data. Data keys never set
/// it: handle ids are dense small integers (`data_key` puts them in bits
/// 32..63), so bit 63 is free to carve out a second key namespace.
/// Snapshot blobs are raw bytes — no codec — because they are opaque to
/// the runtime; only the task that saved them knows the layout.
pub(crate) const SNAP_BIT: u64 = 1 << 63;

/// Codec tag stamped on snapshot `Data` frames. Never looked up in the
/// codec registry — snapshot bytes cross the wire verbatim.
pub(crate) const SNAP_TAG: &str = "ckpt.snap";

fn key_version(key: u64) -> DataVersion {
    DataVersion { handle: DataHandle(key >> 32), version: key as u32 }
}

/// One argument prepared under the core lock: how its bytes (if any)
/// reach the worker.
enum PreparedArg {
    /// Worker already holds the version in its key cache; send the key.
    Cached { key: u64 },
    /// Small value, not resident: encoded off-lock and shipped inline.
    Inline { key: u64, value: Value },
    /// Block-plane value already resident on the worker: hash only.
    BlockRef { key: u64, hash: u128 },
    /// Block-plane value the worker lacks: a `BlockPut` with the bytes
    /// precedes the `Submit` that references the hash.
    BlockShip { key: u64, block: Arc<EncodedBlock> },
}

/// A placed task bound for a remote worker, prepared under the core lock
/// and encoded/sent outside it.
pub(crate) struct RemoteDispatch {
    exec_id: u64,
    node: u32,
    task_id: u64,
    attempt: u32,
    variant: u32,
    cores: Vec<u32>,
    gpus: Vec<u32>,
    args: Vec<PreparedArg>,
    name: Arc<str>,
    start_us: u64,
}

/// Mutable per-connection state, all under one lock: the socket, both
/// direction buffers, the submit window, and the poll-interest shadow.
struct LinkState {
    /// `None` while the link is mid-failover (the event loop then ignores
    /// stale readiness events for this token).
    stream: Option<TcpStream>,
    /// Interned function names: first submit of a name carries it in full,
    /// later ones send only the id. Reset on reconnect.
    fn_ids: HashMap<Arc<str>, u64>,
    next_fn_id: u64,
    /// Submit frames waiting for window space, FIFO.
    pending: VecDeque<Frame>,
    /// Submits written (or at least buffered) but not yet completed.
    outstanding: u32,
    window: u32,
    /// Coalescing write backlog; heartbeats and `Data` replies bypass the
    /// window and go straight here.
    send: SendBuf,
    /// Incremental read/decode buffer.
    recv: RecvBuf,
    /// The send buffer has a backlog the socket would not accept — the
    /// loop must arm write interest and resume on writable.
    want_write: bool,
    /// What the poller currently believes (shadow of `want_write`).
    registered_write: bool,
    /// The fd is registered with the poller (cleared on failover).
    registered: bool,
    /// NTP-style clock-offset estimator fed by heartbeat acks; survives
    /// failover (the worker's clock does not reset with its socket).
    clock: ClockSync,
    /// Node-labelled mirror of `rnet_bytes_sent_total` — per-worker
    /// attribution of the transfer collapse in `/metrics`.
    sent_bytes: runmetrics::Counter,
    /// Node-labelled mirror of `rnet_bytes_received_total`.
    recv_bytes: runmetrics::Counter,
}

/// One remote worker as seen by the driver.
struct WorkerLink {
    node: u32,
    addr: String,
    name: String,
    state: Mutex<LinkState>,
    /// Wall-µs of the last bytes received (any frame kind).
    last_seen_us: AtomicU64,
    hb_seq: AtomicU64,
    /// Lock-free mirror of the best clock-sync estimate
    /// (`worker_clock − driver_clock`), for readers outside the link lock.
    clock_offset_us: AtomicI64,
    /// Lock-free mirror of the best (smallest) observed heartbeat RTT.
    clock_rtt_us: AtomicU64,
    /// Worker-side trace records shipped via `TraceChunk`, decoded and
    /// accumulated on the worker's own clock until the merge at export.
    trace_records: Mutex<Vec<Record>>,
}

struct Inner {
    shared: Arc<Shared>,
    workers: Vec<Arc<WorkerLink>>,
    cfg: DistributedConfig,
    stop: AtomicBool,
    poller: Poller,
    wake: Waker,
    /// Nodes whose fresh (reconnected) sockets await registration by the
    /// event loop; paired with a [`Waker::wake`].
    registrations: Mutex<Vec<u32>>,
    /// Failover helper threads (reconnects block in `connect`, so they
    /// must not run on the event loop).
    helpers: Mutex<Vec<JoinHandle<()>>>,
    /// Driver-observed `[dispatch, completion]` window per task id — the
    /// clamp that keeps rebased worker spans inside driver-timeline causality
    /// at merge time.
    exec_bounds: Mutex<TaskBounds>,
}

/// Driver-side connection manager: one event-loop thread owning readiness
/// for every [`WorkerLink`].
pub(crate) struct ConnMgr {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

/// A freshly connected worker before the runtime exists: the socket plus
/// what its `Hello` advertised. This is the unit of worker *acquisition*,
/// split from runtime construction so a long-lived server can gather
/// workers its own way — dialling out ([`connect_workers`]) and/or
/// accepting dial-ins on a shared listener ([`WorkerBootstrap::from_hello`])
/// — and only then build the [`crate::Runtime`] it owns (see
/// [`crate::Runtime::from_bootstraps`]).
pub struct WorkerBootstrap {
    pub(crate) stream: TcpStream,
    pub(crate) addr: String,
    pub(crate) name: String,
    pub(crate) cores: u32,
    pub(crate) gpus: u32,
    pub(crate) mem_gib: u32,
}

impl std::fmt::Debug for WorkerBootstrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerBootstrap")
            .field("addr", &self.addr)
            .field("name", &self.name)
            .field("cores", &self.cores)
            .field("gpus", &self.gpus)
            .field("mem_gib", &self.mem_gib)
            .finish_non_exhaustive()
    }
}

impl WorkerBootstrap {
    /// Adopt a worker that dialled *us*: `stream` is an accepted
    /// connection whose first frame was a `Hello` carrying these
    /// resources. The caller has already read that frame (that is how it
    /// knew the peer was a worker and not a sweep client); nothing else
    /// may have been read from the socket.
    pub fn from_hello(
        stream: TcpStream,
        addr: String,
        name: String,
        cores: u32,
        gpus: u32,
        mem_gib: u32,
    ) -> WorkerBootstrap {
        stream.set_nodelay(true).ok();
        WorkerBootstrap { stream, addr, name, cores, gpus, mem_gib }
    }

    /// The worker's display name (from its `Hello`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// CPU cores the worker advertised.
    pub fn cores(&self) -> u32 {
        self.cores
    }
}

/// Connect to every worker and collect their `Hello`s. Retries each
/// address until `connect_timeout` so workers racing the driver to start
/// (the ci.sh smoke pattern) are tolerated.
pub fn connect_workers(addrs: &[String], timeout: Duration) -> io::Result<Vec<WorkerBootstrap>> {
    addrs
        .iter()
        .map(|addr| {
            let deadline = std::time::Instant::now() + timeout;
            let stream = loop {
                match TcpStream::connect(addr.as_str()) {
                    Ok(s) => break s,
                    Err(e) if std::time::Instant::now() < deadline => {
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => {
                        return Err(io::Error::new(
                            e.kind(),
                            format!("connecting to worker {addr}: {e}"),
                        ))
                    }
                }
            };
            stream.set_nodelay(true).ok();
            hello_handshake(stream, addr.clone())
        })
        .collect()
}

/// Read the `Hello` a worker sends on connect (the one blocking read the
/// driver ever does — the socket goes non-blocking right after).
fn hello_handshake(mut stream: TcpStream, addr: String) -> io::Result<WorkerBootstrap> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = FrameReader::new();
    let frame = read_frame(&mut stream, &mut reader)?;
    stream.set_read_timeout(None)?;
    match frame {
        Some(Frame::Hello { name, cores, gpus, mem_gib }) => {
            Ok(WorkerBootstrap { stream, addr, name, cores, gpus, mem_gib })
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("worker {addr} did not say Hello (got {other:?})"),
        )),
    }
}

impl ConnMgr {
    /// Wire up the links and spawn the event-loop thread. `boots` are in
    /// node-id order (the same order the cluster spec was built in).
    pub fn start(
        shared: Arc<Shared>,
        boots: Vec<WorkerBootstrap>,
        cfg: DistributedConfig,
    ) -> ConnMgr {
        shared.core.lock().blocks.set_inline_threshold(cfg.inline_threshold);
        let workers: Vec<Arc<WorkerLink>> = boots
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                let window = cfg.window.unwrap_or(b.cores.saturating_mul(2)).max(1);
                b.stream.set_nonblocking(true).ok();
                let label = format!("{}@{}", b.name, b.addr);
                let reg = shared.metrics.registry();
                let sent_bytes =
                    reg.counter(&runmetrics::labeled("rnet_bytes_sent_total", "node", &label));
                let recv_bytes =
                    reg.counter(&runmetrics::labeled("rnet_bytes_received_total", "node", &label));
                Arc::new(WorkerLink {
                    node: i as u32,
                    addr: b.addr,
                    name: b.name,
                    state: Mutex::new(LinkState {
                        stream: Some(b.stream),
                        fn_ids: HashMap::new(),
                        next_fn_id: 1,
                        pending: VecDeque::new(),
                        outstanding: 0,
                        window,
                        send: SendBuf::new(),
                        recv: RecvBuf::new(),
                        want_write: false,
                        registered_write: false,
                        registered: false,
                        clock: ClockSync::default(),
                        sent_bytes,
                        recv_bytes,
                    }),
                    last_seen_us: AtomicU64::new(shared.wall_us()),
                    hb_seq: AtomicU64::new(0),
                    clock_offset_us: AtomicI64::new(0),
                    clock_rtt_us: AtomicU64::new(0),
                    trace_records: Mutex::new(Vec::new()),
                })
            })
            .collect();
        let poller = Poller::new().unwrap_or_else(|_| Poller::fallback());
        let wake = Waker::new(&poller, WAKE_TOKEN).expect("self-pipe waker");
        let registrations = Mutex::new((0..workers.len() as u32).collect());
        let inner = Arc::new(Inner {
            shared,
            workers,
            cfg,
            stop: AtomicBool::new(false),
            poller,
            wake,
            registrations,
            helpers: Mutex::new(Vec::new()),
            exec_bounds: Mutex::new(TaskBounds::new()),
        });
        let loop_inner = Arc::clone(&inner);
        let threads = vec![std::thread::spawn(move || driver_loop(loop_inner))];
        ConnMgr { inner, threads }
    }

    /// Worker display labels, indexed by node id: `name@addr`.
    pub fn labels(&self) -> Vec<String> {
        self.inner.workers.iter().map(|w| format!("{}@{}", w.name, w.addr)).collect()
    }

    /// Everything the trace merge needs: each worker's shipped records with
    /// its current clock-offset estimate, plus the driver-observed
    /// dispatch→completion bounds. Records are cloned, not drained, so the
    /// merged trace can be exported more than once.
    pub fn telemetry(&self) -> (Vec<WorkerTrace>, TaskBounds) {
        let workers = self
            .inner
            .workers
            .iter()
            .map(|w| WorkerTrace {
                node: w.node,
                offset_us: w.clock_offset_us.load(Ordering::Relaxed),
                records: w.trace_records.lock().clone(),
            })
            .collect();
        (workers, self.inner.exec_bounds.lock().clone())
    }

    /// Per-worker clock sync estimates, indexed by node id:
    /// `(offset_us, rtt_us)`. RTT 0 means no heartbeat ack was observed yet.
    pub fn clock_stats(&self) -> Vec<(i64, u64)> {
        self.inner
            .workers
            .iter()
            .map(|w| {
                (w.clock_offset_us.load(Ordering::Relaxed), w.clock_rtt_us.load(Ordering::Relaxed))
            })
            .collect()
    }

    /// Place every placeable ready task for remote execution. Call with the
    /// core locked; pair with [`ConnMgr::send`] after unlocking.
    pub fn collect_dispatch_remote(&self, core: &mut Core) -> Vec<RemoteDispatch> {
        collect_dispatch_remote(&self.inner.shared, core)
    }

    /// Encode and transmit prepared dispatches (coalesced per worker), then
    /// emit their dispatch trace events. Call *without* the core lock.
    pub fn send(&self, work: Vec<RemoteDispatch>) {
        send_dispatches(&self.inner, work);
    }

    /// Graceful stop: join the loop and helpers, then drain each link's
    /// backlog (blocking again) and append `Shutdown` so the goodbye never
    /// splices into a partially-written frame.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let _ = self.inner.wake.wake();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let helpers: Vec<_> = self.inner.helpers.lock().drain(..).collect();
        for h in helpers {
            let _ = h.join();
        }
        for link in &self.inner.workers {
            let mut st = link.state.lock();
            let LinkState { stream, send, .. } = &mut *st;
            if let Some(sock) = stream.as_mut() {
                let _ = sock.set_nonblocking(false);
                send.push(&Frame::Shutdown);
                while !send.is_empty() {
                    match send.flush(sock) {
                        Ok((_, true)) => break,
                        Ok((_, false)) => std::thread::yield_now(),
                        Err(_) => break,
                    }
                }
                let _ = sock.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// The core-locked half of dispatch, mirroring the threaded backend's
/// `collect_dispatch`: pop placeable tasks, decide inline-vs-cached per
/// input, register the `RunningExec`. Values are cloned (`Arc` bumps) here
/// and encoded later, off-lock.
pub(crate) fn collect_dispatch_remote(shared: &Shared, core: &mut Core) -> Vec<RemoteDispatch> {
    let measure = shared.metrics.enabled();
    let mut msgs = Vec::new();
    loop {
        let decision_started = measure.then(std::time::Instant::now);
        let popped = {
            // Disjoint field borrows: the locality closure reads data and
            // instances while the scheduler is borrowed mutably.
            // Transfer-aware placement: fewest bytes-to-move first
            // (declared size × missing residency), most resident inputs as
            // the tie-break — the remote analogue of `locality_score`,
            // weighted by what a wrong placement actually costs.
            let Core { sched, data, instances, .. } = core;
            sched.pop_placeable(|t, n| {
                instances
                    .get(&t)
                    .map_or((std::cmp::Reverse(0), 0), |inst| data.transfer_score(&inst.reads(), n))
            })
        };
        if let Some(t0) = decision_started {
            shared.metrics.sched_decision.record(t0.elapsed().as_micros() as u64);
        }
        let Some((entry, placement)) = popped else { break };
        let placement = Arc::new(placement);
        let task = entry.task;
        let node = placement.node;
        let inst = core.instances.get(&task).expect("ready task has an instance");
        let name = Arc::clone(&inst.def.name);
        let attempt = inst.attempt;
        let submitted_us = inst.submitted_us;
        let reads = inst.reads();
        let mut args = Vec::with_capacity(reads.len());
        for v in reads {
            let key = data_key(v);
            if core.blocks.routes_block(core.data.bytes(v.handle)) {
                let value = core.data.get(v).expect("ready task inputs are computed");
                // Content-address the value; the encode is memoised, so a
                // dataset shared by a hundred trials pays the codec once.
                if let Some(block) = core.blocks.encode(v, &value) {
                    // Optimistic residency, both granularities: versions
                    // drive scheduling scores, hashes drive ship-vs-ref.
                    // Cleared if the connection drops (or on BlockEvict).
                    core.data.add_location(v, node);
                    if core.blocks.is_resident(node, block.hash) {
                        args.push(PreparedArg::BlockRef { key, hash: block.hash });
                    } else {
                        core.blocks.add_resident(node, block.hash);
                        args.push(PreparedArg::BlockShip { key, block });
                    }
                    continue;
                }
                // No codec: fall through to the inline path, whose
                // failed-attempt reporting stands.
                core.data.add_location(v, node);
                args.push(PreparedArg::Inline { key, value });
            } else if core.data.is_on_node(v, node) {
                args.push(PreparedArg::Cached { key });
            } else {
                let value = core.data.get(v).expect("ready task inputs are computed");
                // Optimistic residency: the worker caches inline args as
                // they arrive, in submit order, so later submits on this
                // socket may rely on it. Cleared if the connection drops.
                core.data.add_location(v, node);
                args.push(PreparedArg::Inline { key, value });
            }
        }
        let now = shared.wall_us();
        shared.metrics.dispatched.incr();
        let queued = now.saturating_sub(submitted_us);
        shared.metrics.dep_wait.record(queued);
        shared.metrics.phase_queue.record(queued);
        let exec_id = core.next_exec;
        core.next_exec += 1;
        core.running.insert(
            exec_id,
            RunningExec {
                task,
                placement: Arc::clone(&placement),
                constraint: entry.constraint,
                attempt,
                start_us: now,
            },
        );
        core.graph.set_running(task);
        msgs.push(RemoteDispatch {
            exec_id,
            node,
            task_id: task.0,
            attempt,
            variant: placement.variant as u32,
            cores: placement.cores.clone(),
            gpus: placement.gpus.clone(),
            args,
            name,
            start_us: now,
        });
    }
    shared.metrics.ready_depth.set(core.sched.ready_len() as f64);
    shared.metrics.running.set(core.running.len() as f64);
    msgs
}

/// Move window-permitted pending submits into the send buffer and drain as
/// much backlog as the socket accepts right now. Sets `want_write` when a
/// backlog remains. Returns `false` when the socket died.
fn pump_link(shared: &Shared, st: &mut LinkState) -> bool {
    let LinkState { stream, pending, outstanding, window, send, want_write, sent_bytes, .. } =
        &mut *st;
    let Some(sock) = stream.as_mut() else {
        return true; // mid-failover; frames stay pending until resolution
    };
    while *outstanding < *window {
        let Some(f) = pending.pop_front() else { break };
        send.push(&f);
        *outstanding += 1;
    }
    if send.is_empty() {
        *want_write = false;
        return true;
    }
    match send.flush(sock) {
        Ok((n, drained)) => {
            if n > 0 {
                shared.metrics.net_bytes_sent.add(n as u64);
                sent_bytes.add(n as u64);
            }
            *want_write = !drained;
            true
        }
        Err(_) => false,
    }
}

/// Reconcile the poller's write interest with `want_write`. Call with the
/// link lock held, after any pump.
fn sync_interest(inner: &Inner, node: u32, st: &mut LinkState) {
    if !st.registered || st.want_write == st.registered_write {
        return;
    }
    let Some(fd) = st.stream.as_ref().map(|s| s.as_raw_fd()) else { return };
    let interest = if st.want_write { Interest::READ_WRITE } else { Interest::READ };
    if inner.poller.modify(fd, u64::from(node), interest).is_ok() {
        st.registered_write = st.want_write;
    }
}

/// Off-lock half of dispatch: encode values, intern names, coalesce frames
/// per worker under its window, flush each link's backlog once.
fn send_dispatches(inner: &Arc<Inner>, work: Vec<RemoteDispatch>) {
    if work.is_empty() {
        return;
    }
    // Dispatch trace events first (cheap, lock-free collector).
    for d in &work {
        inner.shared.trace.event(
            CoreId::new(d.node, d.cores.first().copied().unwrap_or(0)),
            d.start_us,
            EventKind::TaskDispatch(TaskRef::new(d.task_id, Arc::clone(&d.name))),
        );
    }
    let mut undeliverable: Vec<(u64, String)> = Vec::new();
    let mut dead_links: Vec<Arc<WorkerLink>> = Vec::new();
    let mut by_node: HashMap<u32, Vec<RemoteDispatch>> = HashMap::new();
    for d in work {
        by_node.entry(d.node).or_default().push(d);
    }
    for (node, batch) in by_node {
        let link = &inner.workers[node as usize];
        let mut frames = Vec::with_capacity(batch.len());
        let mut st = link.state.lock();
        for d in batch {
            let mut args = Vec::with_capacity(d.args.len());
            let mut encode_err = None;
            for a in &d.args {
                match a {
                    PreparedArg::Cached { key } => args.push(WireArg::Cached { key: *key }),
                    PreparedArg::BlockRef { key, hash } => {
                        args.push(WireArg::Block { key: *key, hash: *hash })
                    }
                    PreparedArg::BlockShip { key, block } => {
                        // The block's bytes bypass the submit window, like
                        // `Data` replies: they must precede the Submit that
                        // references them (same socket, so ordering holds)
                        // but carry no completion to retire a window slot.
                        st.send
                            .push(&Frame::BlockPut { hash: block.hash, blob: block.blob.clone() });
                        args.push(WireArg::Block { key: *key, hash: block.hash });
                    }
                    PreparedArg::Inline { key, value } => match codec::encode_value(value) {
                        Some(blob) => args.push(WireArg::Inline { key: *key, blob }),
                        None => {
                            encode_err = Some(format!(
                                "no wire codec registered for an input of task '{}'",
                                d.name
                            ));
                            break;
                        }
                    },
                }
            }
            if let Some(msg) = encode_err {
                undeliverable.push((d.exec_id, msg));
                continue;
            }
            let fn_name = if st.fn_ids.contains_key(&d.name) {
                None
            } else {
                let id = st.next_fn_id;
                st.next_fn_id += 1;
                st.fn_ids.insert(Arc::clone(&d.name), id);
                Some(d.name.to_string())
            };
            let fn_id = st.fn_ids[&d.name];
            frames.push(Frame::Submit {
                exec_id: d.exec_id,
                task_id: d.task_id,
                attempt: d.attempt,
                node: d.node,
                fn_id,
                fn_name,
                variant: d.variant,
                cores: d.cores,
                gpus: d.gpus,
                args,
            });
        }
        st.pending.extend(frames);
        if pump_link(&inner.shared, &mut st) {
            sync_interest(inner, node, &mut st);
        } else {
            dead_links.push(Arc::clone(link));
        }
    }
    // Encoding failures become failed attempts under the normal retry
    // machinery (they will exhaust retries and cascade).
    if !undeliverable.is_empty() {
        let now = inner.shared.wall_us();
        let follow = {
            let mut core = inner.shared.core.lock();
            for (exec_id, msg) in undeliverable {
                complete_attempt(
                    &inner.shared,
                    &mut core,
                    exec_id,
                    Err(TaskError::new(msg)),
                    now,
                    false,
                );
            }
            collect_dispatch_remote(&inner.shared, &mut core)
        };
        inner.shared.cv.notify_all();
        send_dispatches(inner, follow);
    }
    for link in dead_links {
        start_failover(inner, &link);
    }
}

/// The driver's event loop: readiness for every link and the waker, with
/// heartbeat pacing folded into the poll timeout.
fn driver_loop(inner: Arc<Inner>) {
    let hb = inner.cfg.heartbeat_interval;
    let mut events = Vec::new();
    // First heartbeat fires immediately: it seeds the clock-offset estimate
    // so even tasks completing before the first interval elapses get
    // rebased worker telemetry.
    let mut next_hb = std::time::Instant::now();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        // Register freshly (re)connected sockets queued by start / helpers.
        let regs: Vec<u32> = std::mem::take(&mut *inner.registrations.lock());
        for node in regs {
            register_link(&inner, &inner.workers[node as usize]);
        }
        let now = std::time::Instant::now();
        if now >= next_hb {
            heartbeat_pass(&inner);
            next_hb = now + hb;
        }
        let timeout = next_hb.saturating_duration_since(std::time::Instant::now());
        if inner.poller.wait(&mut events, Some(timeout)).is_err() {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                inner.wake.drain();
                continue;
            }
            let Some(link) = inner.workers.get(ev.token as usize) else { continue };
            service_link(&inner, link, ev.readable, ev.writable);
        }
    }
}

/// Add a link's socket to the poll set (event-loop thread only).
fn register_link(inner: &Inner, link: &WorkerLink) {
    let mut st = link.state.lock();
    let Some(fd) = st.stream.as_ref().map(|s| {
        s.set_nonblocking(true).ok();
        s.as_raw_fd()
    }) else {
        return;
    };
    let interest = if st.want_write { Interest::READ_WRITE } else { Interest::READ };
    if inner.poller.register(fd, u64::from(link.node), interest).is_ok() {
        st.registered = true;
        st.registered_write = st.want_write;
    }
}

/// Write a heartbeat to every live link and declare silent ones dead.
///
/// Each probe carries the driver's clock (for the NTP exchange the ack
/// completes) and the telemetry gate: workers flush trace chunks and stats
/// only when the driver's tracing flag is on, so a tracing-disabled run
/// sees zero telemetry bytes on the wire.
fn heartbeat_pass(inner: &Arc<Inner>) {
    let timeout_us = inner.cfg.heartbeat_timeout.as_micros() as u64;
    let now = inner.shared.wall_us();
    let telemetry = inner.shared.trace.is_enabled();
    let mut dead = Vec::new();
    for link in &inner.workers {
        {
            let mut st = link.state.lock();
            if st.stream.is_none() {
                continue;
            }
            let seq = link.hb_seq.fetch_add(1, Ordering::Relaxed);
            st.send.push(&Frame::Heartbeat { seq, t_send_us: inner.shared.wall_us(), telemetry });
            if pump_link(&inner.shared, &mut st) {
                sync_interest(inner, link.node, &mut st);
            } else {
                dead.push(Arc::clone(link));
                continue;
            }
        }
        let silent = now.saturating_sub(link.last_seen_us.load(Ordering::Relaxed));
        if silent > timeout_us {
            dead.push(Arc::clone(link));
        }
    }
    for link in dead {
        start_failover(inner, &link);
    }
}

/// Worker-clock lifecycle stamps riding a `Done` frame: submit receipt,
/// body start, body end. `None` for failures.
type ExecStamps = Option<(u64, u64, u64)>;

/// One readiness event for a link: drain writes, then drain reads frame by
/// frame (zero-copy decode), then act on what arrived.
fn service_link(inner: &Arc<Inner>, link: &Arc<WorkerLink>, readable: bool, writable: bool) {
    let mut completions: Vec<(u64, Result<Vec<Value>, TaskError>, ExecStamps)> = Vec::new();
    let mut fetches: Vec<u64> = Vec::new();
    let mut block_reqs: Vec<u128> = Vec::new();
    let mut block_evicts: Vec<u128> = Vec::new();
    let mut snap_updates: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut acks: Vec<(u64, u64, u64)> = Vec::new();
    let mut chunks: Vec<Vec<u8>> = Vec::new();
    let mut stats_seen = false;
    let mut alive = true;
    let mut saw_bytes = false;
    {
        let mut st = link.state.lock();
        if st.stream.is_none() {
            return; // stale event for a link mid-failover
        }
        if writable {
            alive = pump_link(&inner.shared, &mut st);
        }
        if readable && alive {
            let LinkState { stream, recv, recv_bytes, .. } = &mut *st;
            let sock = stream.as_mut().expect("checked above");
            'fill: loop {
                match recv.fill_from(sock) {
                    Ok(Fill::Bytes(n)) => {
                        saw_bytes = true;
                        inner.shared.metrics.net_bytes_received.add(n as u64);
                        recv_bytes.add(n as u64);
                    }
                    Ok(Fill::WouldBlock) => break,
                    Ok(Fill::Eof) | Err(_) => {
                        alive = false;
                        break;
                    }
                }
                loop {
                    match recv.next_frame() {
                        Ok(Some(frame)) => match frame {
                            FrameRef::Done { exec_id, recv_us, start_us, end_us, outputs } => {
                                let result = outputs
                                    .iter()
                                    .map(|b| {
                                        codec::decode_tagged(b.tag, b.bytes).map_err(|e| {
                                            TaskError::new(format!("undecodable task output: {e}"))
                                        })
                                    })
                                    .collect();
                                completions.push((
                                    exec_id,
                                    result,
                                    Some((recv_us, start_us, end_us)),
                                ));
                            }
                            FrameRef::Failed { exec_id, message } => {
                                completions.push((exec_id, Err(TaskError::new(message)), None));
                            }
                            FrameRef::HeartbeatAck { t_send_us, recv_us, reply_us, .. } => {
                                acks.push((t_send_us, recv_us, reply_us));
                            }
                            FrameRef::Fetch { key } => fetches.push(key),
                            FrameRef::BlockRequest { hash } => block_reqs.push(hash),
                            FrameRef::BlockEvict { hash } => block_evicts.push(hash),
                            FrameRef::Data { key, blob } if key & SNAP_BIT != 0 => {
                                snap_updates.push((key, blob.bytes.to_vec()));
                            }
                            FrameRef::TraceChunk { bytes } => chunks.push(bytes.to_vec()),
                            FrameRef::StatsSnapshot { .. } => stats_seen = true,
                            // Workers don't originate these driver-bound
                            // frames.
                            _ => {}
                        },
                        Ok(None) => continue 'fill,
                        Err(_) => {
                            alive = false;
                            break 'fill;
                        }
                    }
                }
            }
        }
        if saw_bytes {
            link.last_seen_us.store(inner.shared.wall_us(), Ordering::Relaxed);
        }
        if !acks.is_empty() {
            // Complete the NTP exchange: t3 is "now" on the driver clock.
            // One wall read serves the batch — acks decoded together arrived
            // together within the fill's granularity.
            let t3 = inner.shared.wall_us();
            for (t0, t1, t2) in acks.drain(..) {
                st.clock.observe(t0, t1, t2, t3);
            }
            link.clock_offset_us.store(st.clock.offset_us(), Ordering::Relaxed);
            link.clock_rtt_us.store(st.clock.rtt_us(), Ordering::Relaxed);
        }
        if alive {
            st.outstanding = st.outstanding.saturating_sub(completions.len() as u32);
            alive = pump_link(&inner.shared, &mut st);
            if alive {
                sync_interest(inner, link.node, &mut st);
            }
        }
    }
    ingest_telemetry(inner, link, chunks, stats_seen);
    // Snapshot saves/tombstones from the worker: keep the latest per key so
    // the retry path can ship it to whichever worker inherits the task.
    if !snap_updates.is_empty() {
        let mut snaps = inner.shared.snapshots.lock();
        for (key, bytes) in snap_updates {
            if bytes.is_empty() {
                snaps.remove(&key);
            } else {
                snaps.insert(key, bytes);
            }
        }
    }
    if !completions.is_empty()
        || !fetches.is_empty()
        || !block_reqs.is_empty()
        || !block_evicts.is_empty()
    {
        apply_frames(inner, link, completions, fetches, block_reqs, block_evicts);
    }
    if !alive {
        start_failover(inner, link);
    }
}

/// Fold one readiness event's telemetry frames into driver state: decode
/// shipped trace chunks onto the link's record store, account their payload
/// bytes, and refresh the per-worker clock/freshness gauges.
fn ingest_telemetry(
    inner: &Arc<Inner>,
    link: &Arc<WorkerLink>,
    chunks: Vec<Vec<u8>>,
    stats_seen: bool,
) {
    let label = || format!("{}@{}", link.name, link.addr);
    if !chunks.is_empty() {
        let mut records = link.trace_records.lock();
        for chunk in &chunks {
            inner.shared.metrics.telemetry_bytes.add(chunk.len() as u64);
            // A malformed chunk loses those spans but not the run: the
            // driver-side estimates still cover the trace.
            if let Ok(mut rs) = paratrace::wire::decode_records(chunk) {
                records.append(&mut rs);
            }
        }
    }
    if stats_seen {
        inner.shared.metrics.set_node_gauge(
            "rnet_last_stats_us",
            &label(),
            inner.shared.wall_us() as f64,
        );
    }
    let rtt = link.clock_rtt_us.load(Ordering::Relaxed);
    if rtt > 0 {
        inner.shared.metrics.set_node_gauge("rnet_rtt_us", &label(), rtt as f64);
        inner.shared.metrics.set_node_gauge(
            "rnet_clock_offset_us",
            &label(),
            link.clock_offset_us.load(Ordering::Relaxed) as f64,
        );
    }
}

/// Completions and fetches collected from one readiness event: one core
/// lock pass for bookkeeping + follow-on placement, replies pushed onto
/// the link's backlog, traces emitted off-lock.
fn apply_frames(
    inner: &Arc<Inner>,
    link: &Arc<WorkerLink>,
    completions: Vec<(u64, Result<Vec<Value>, TaskError>, ExecStamps)>,
    fetches: Vec<u64>,
    block_reqs: Vec<u128>,
    block_evicts: Vec<u128>,
) {
    let now = inner.shared.wall_us();
    type Info = (TaskId, Arc<crate::scheduler::Placement>, u64, Arc<str>, ExecStamps);
    let mut infos: Vec<Info> = Vec::new();
    let mut replies: Vec<Frame> = Vec::new();
    let follow = {
        let mut core = inner.shared.core.lock();
        for (exec_id, result, stamps) in completions {
            // Late frames for already-failed-over executions are ignored
            // (`running` no longer knows the exec id).
            if let Some(run) = core.running.get(&exec_id) {
                let name = core
                    .instances
                    .get(&run.task)
                    .map(|i| Arc::clone(&i.def.name))
                    .unwrap_or_else(|| Arc::from("?"));
                infos.push((run.task, Arc::clone(&run.placement), run.start_us, name, stamps));
            }
            complete_attempt(&inner.shared, &mut core, exec_id, result, now, false);
        }
        for &key in fetches.iter().filter(|&&k| k & SNAP_BIT == 0) {
            // Task-data fetch: reply only when the value exists and has a
            // codec; the worker's own deadline handles the silent case.
            if let Some(blob) =
                core.data.get(key_version(key)).and_then(|v| codec::encode_value(&v))
            {
                replies.push(Frame::Data { key, blob });
            }
        }
        for &hash in &block_evicts {
            // The worker dropped the block under memory pressure: retract
            // residency at both granularities so the next dispatch ships
            // the bytes again (and scores the node honestly).
            core.blocks.evict(link.node, hash);
            let versions: Vec<DataVersion> = core.blocks.versions_of(hash).to_vec();
            for v in versions {
                core.data.remove_location(v, link.node);
            }
        }
        for &hash in &block_reqs {
            // Cache-miss refill; silence on an unknown hash is handled by
            // the worker's own fetch deadline, like key fetches.
            if let Some(block) = core.blocks.lookup(hash) {
                core.blocks.add_resident(link.node, hash);
                replies.push(Frame::BlockData { hash, blob: block.blob.clone() });
            }
        }
        collect_dispatch_remote(&inner.shared, &mut core)
    };
    for &key in fetches.iter().filter(|&&k| k & SNAP_BIT != 0) {
        // Snapshot fetch: always reply — an empty blob means "no
        // snapshot", so a fresh trial starts immediately instead of
        // blocking out the worker's fetch deadline.
        let bytes = inner.shared.snapshots.lock().get(&key).cloned().unwrap_or_default();
        replies.push(Frame::Data { key, blob: Blob { tag: SNAP_TAG.to_string(), bytes } });
    }
    let mut alive = true;
    if !replies.is_empty() {
        let mut st = link.state.lock();
        for f in &replies {
            st.send.push(f);
        }
        alive = pump_link(&inner.shared, &mut st);
        if alive {
            sync_interest(inner, link.node, &mut st);
        }
    }
    if !infos.is_empty() {
        // Driver-observed dispatch→completion windows: the causality clamp
        // applied to this worker's rebased spans at merge time.
        let mut bounds = inner.exec_bounds.lock();
        for (task, _, start_us, _, _) in &infos {
            bounds.insert(task.0, (*start_us, now));
        }
    }
    let offset = link.clock_offset_us.load(Ordering::Relaxed);
    for (task, placement, start_us, name, stamps) in infos {
        inner.shared.metrics.rpc_latency.record(now.saturating_sub(start_us));
        inner.shared.metrics.record_node_task(&format!("{}@{}", link.name, link.addr));
        if let Some((w_recv, w_start, w_end)) = stamps {
            // Rebase the worker stamps onto the driver timeline; exec is a
            // worker-clock difference, so the offset cancels there.
            let rebase = |t: u64| (t as i64 - offset).max(0) as u64;
            let m = &inner.shared.metrics;
            m.phase_wire.record(rebase(w_recv).saturating_sub(start_us));
            m.phase_exec.record(w_end.saturating_sub(w_start));
            m.phase_ship.record(now.saturating_sub(rebase(w_end)));
        }
        let task_ref = TaskRef::new(task.0, name);
        for (node, cores) in placement.node_cores() {
            for &c in cores {
                inner.shared.trace.task_run(
                    CoreId::new(node, c),
                    start_us,
                    now.max(start_us + 1),
                    task_ref.clone(),
                );
            }
        }
        inner.shared.trace.event(
            CoreId::new(placement.node, placement.cores.first().copied().unwrap_or(0)),
            now,
            EventKind::TaskEnd(task_ref),
        );
    }
    inner.shared.cv.notify_all();
    send_dispatches(inner, follow);
    if !alive {
        start_failover(inner, link);
    }
}

/// Tear the socket out of a dead link (idempotent: `stream == None` means
/// failover is already in flight) and run the slow recovery on a helper
/// thread so reconnect's blocking `connect` never stalls the event loop.
fn start_failover(inner: &Arc<Inner>, link: &Arc<WorkerLink>) {
    let sock = {
        let mut st = link.state.lock();
        let Some(sock) = st.stream.take() else { return };
        st.send.clear();
        st.recv = RecvBuf::new();
        st.want_write = false;
        st.registered_write = false;
        st.registered = false;
        sock
    };
    // Deregister before the fd closes on drop.
    let _ = inner.poller.deregister(sock.as_raw_fd());
    let _ = sock.shutdown(std::net::Shutdown::Both);
    drop(sock);
    if inner.stop.load(Ordering::SeqCst) {
        return;
    }
    let inner2 = Arc::clone(inner);
    let link2 = Arc::clone(link);
    let h = std::thread::spawn(move || failover(&inner2, &link2));
    inner.helpers.lock().push(h);
}

/// Failover for a dead connection: fail over orphaned executions, wipe
/// stale per-link state, then either reconnect (reviving the node) or
/// cascade-fail tasks the surviving cluster can never run.
fn failover(inner: &Arc<Inner>, link: &Arc<WorkerLink>) {
    let node = link.node;
    let now = inner.shared.wall_us();
    inner.shared.metrics.workers_lost.incr();
    inner.shared.metrics.node_failures.incr();
    inner.shared.trace.event(CoreId::new(node, 0), now, EventKind::NodeFailure);
    {
        let mut core = inner.shared.core.lock();
        core.sched.kill_node(node);
        core.data.clear_node_locations(node);
        core.blocks.clear_node(node);
        let orphans: Vec<u64> = core
            .running
            .iter()
            .filter(|(_, r)| r.placement.involves(node))
            .map(|(&e, _)| e)
            .collect();
        for e in orphans {
            complete_attempt(
                &inner.shared,
                &mut core,
                e,
                Err(TaskError::new(format!("worker {} connection lost", link.addr))),
                now,
                true,
            );
        }
    }
    {
        let mut st = link.state.lock();
        st.outstanding = 0;
        st.fn_ids.clear();
        st.next_fn_id = 1;
        // Pending submits are for executions just failed over; drop them.
        st.pending.clear();
    }
    if inner.cfg.reconnect && !inner.stop.load(Ordering::SeqCst) {
        if let Ok(boot) =
            connect_workers(std::slice::from_ref(&link.addr), inner.cfg.connect_timeout)
                .map(|mut v| v.remove(0))
        {
            {
                let mut st = link.state.lock();
                boot.stream.set_nonblocking(true).ok();
                st.stream = Some(boot.stream);
            }
            link.last_seen_us.store(inner.shared.wall_us(), Ordering::Relaxed);
            inner.shared.metrics.net_reconnects.incr();
            let follow = {
                let mut core = inner.shared.core.lock();
                core.sched.revive_node(node);
                collect_dispatch_remote(&inner.shared, &mut core)
            };
            // Hand the fresh socket to the event loop for registration.
            inner.registrations.lock().push(node);
            let _ = inner.wake.wake();
            inner.shared.cv.notify_all();
            send_dispatches(inner, follow);
            return;
        }
    }
    // No way back: anything the surviving cluster can never run fails now
    // rather than hanging the barrier; the rest re-dispatches.
    let follow = {
        let mut core = inner.shared.core.lock();
        let doomed = core.sched.drain_unsatisfiable();
        for entry in doomed {
            fail_task_cascade(&inner.shared, &mut core, entry.task);
        }
        collect_dispatch_remote(&inner.shared, &mut core)
    };
    inner.shared.cv.notify_all();
    send_dispatches(inner, follow);
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Resources a worker daemon advertises in its `Hello`.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Display name, e.g. `w0` (shows up in driver-side labels).
    pub name: String,
    /// Executor threads / schedulable cores.
    pub cores: u32,
    /// GPUs to advertise.
    pub gpus: u32,
    /// Memory to advertise, GiB.
    pub mem_gib: u32,
    /// Byte budget for the decoded-block LRU cache (`--cache-mem`).
    /// Blocks beyond it are evicted least-recently-used and re-fetched on
    /// demand; see `blocks::BlockCache`.
    pub cache_mem_bytes: u64,
    /// Driver/server addresses to dial on startup (`--dial`). Instead of
    /// waiting to be connected to, the worker opens these connections
    /// itself and sends its `Hello` — the pattern a long-lived
    /// `rcompss-server` behind one shared listener relies on. Each dialled
    /// connection is serviced exactly like an accepted one; dial failures
    /// are retried until [`WorkerConfig::dial_timeout`].
    pub dial: Vec<String>,
    /// How long to keep retrying each [`WorkerConfig::dial`] address.
    pub dial_timeout: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            name: "worker".to_string(),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get() as u32),
            gpus: 0,
            mem_gib: 16,
            cache_mem_bytes: 256 * 1024 * 1024,
            dial: Vec::new(),
            dial_timeout: Duration::from_secs(10),
        }
    }
}

/// A task execution daemon: accepts driver connections, executes submitted
/// tasks from a [`TaskRegistry`], and streams results back.
///
/// One event-loop thread ([`WorkerServer::run`]) owns the listener and
/// every connection socket; per-connection executor threads only block on
/// the job queue and communicate results back through the connection's
/// shared send buffer plus the loop's waker.
pub struct WorkerServer {
    listener: TcpListener,
    cfg: WorkerConfig,
    registry: Arc<TaskRegistry>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    poller: Poller,
    wake: Arc<Waker>,
}

/// Control handle for a worker running on a background thread.
pub struct WorkerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    wake: Arc<Waker>,
    thread: Option<JoinHandle<io::Result<()>>>,
}

impl WorkerServer {
    /// Bind to `addr` (use port 0 for an OS-assigned loopback port in
    /// tests) with the given resources and task registry.
    pub fn bind(addr: &str, cfg: WorkerConfig, registry: TaskRegistry) -> io::Result<WorkerServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        // Preregister the block-cache series in the process-global registry
        // so worker scrapes and StatsSnapshots show them from zero — a
        // cold cache reads as 0, not as a missing series.
        let global = runmetrics::global();
        global.counter("rcompss_block_cache_hits_total");
        global.counter("rcompss_block_cache_misses_total");
        global.counter("rcompss_block_cache_evictions_total");
        global.gauge("rcompss_block_cache_resident_bytes");
        let poller = Poller::new().unwrap_or_else(|_| Poller::fallback());
        let wake = Arc::new(Waker::new(&poller, WAKE_TOKEN)?);
        Ok(WorkerServer {
            listener,
            cfg,
            registry: Arc::new(registry),
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
            poller,
            wake,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections until halted: the worker's event loop.
    pub fn run(self) -> io::Result<()> {
        let WorkerServer { listener, cfg, registry, stop, conns, poller, wake } = self;
        let _ = poller.register(listener.as_raw_fd(), LISTEN_TOKEN, Interest::READ);
        let mut table: HashMap<u64, WorkerConn> = HashMap::new();
        let mut next_token: u64 = 0;
        // Dial-out connections first: each is serviced exactly like an
        // accepted one — the `Hello` goes out the moment the connection is
        // adopted, so the server's listener can role-negotiate on it.
        for addr in &cfg.dial {
            let deadline = std::time::Instant::now() + cfg.dial_timeout;
            let stream = loop {
                match TcpStream::connect(addr.as_str()) {
                    Ok(s) => break s,
                    Err(_)
                        if std::time::Instant::now() < deadline && !stop.load(Ordering::SeqCst) =>
                    {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => {
                        return Err(io::Error::new(e.kind(), format!("dialling {addr}: {e}")));
                    }
                }
            };
            stream.set_nodelay(true).ok();
            if let Some(conn) =
                accept_conn(stream, &cfg, &registry, &stop, &conns, &poller, &wake, next_token)
            {
                table.insert(next_token, conn);
                next_token += 1;
            }
        }
        let mut events = Vec::new();
        let mut result = Ok(());
        'serve: loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            if poller.wait(&mut events, Some(Duration::from_millis(500))).is_err() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let mut dead: Vec<u64> = Vec::new();
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    wake.drain();
                    continue;
                }
                if ev.token == LISTEN_TOKEN {
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if let Some(conn) = accept_conn(
                                    stream, &cfg, &registry, &stop, &conns, &poller, &wake,
                                    next_token,
                                ) {
                                    table.insert(next_token, conn);
                                    next_token += 1;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) => {
                                result = Err(e);
                                break 'serve;
                            }
                        }
                    }
                    continue;
                }
                if let Some(conn) = table.get_mut(&ev.token) {
                    if ev.readable && !service_worker_read(conn) {
                        dead.push(ev.token);
                    }
                }
            }
            // Flush pass: executor output arrives via the waker, socket
            // backpressure via writable events — either way, drain every
            // backlog and reconcile write interest.
            for (&token, conn) in table.iter_mut() {
                if dead.contains(&token) {
                    continue;
                }
                if !flush_worker_conn(&poller, token, conn) {
                    dead.push(token);
                }
            }
            for token in dead {
                if let Some(conn) = table.remove(&token) {
                    close_worker_conn(&poller, conn);
                }
            }
        }
        for (_, conn) in table {
            close_worker_conn(&poller, conn);
        }
        let _ = poller.deregister(listener.as_raw_fd());
        result
    }

    /// Run on a background thread, returning a control handle (the
    /// in-process form the loopback tests and benches use).
    pub fn spawn(self) -> io::Result<WorkerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let conns = Arc::clone(&self.conns);
        let wake = Arc::clone(&self.wake);
        let thread = std::thread::spawn(move || self.run());
        Ok(WorkerHandle { addr, stop, conns, wake, thread: Some(thread) })
    }
}

impl WorkerHandle {
    /// The worker's listen address, as a string the driver can connect to.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// SIGKILL-equivalent: stop accepting, silence every executor (no more
    /// result frames leave this worker), and sever all connections. From
    /// the driver's point of view the worker vanishes mid-task.
    pub fn halt(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.wake.wake();
        for c in self.conns.lock().iter() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// A detached closure that [`Self::halt`]s this worker — hand it to a
    /// killer thread while the test's main thread is blocked in a run.
    pub fn stopper(&self) -> impl Fn() + Send + 'static {
        let stop = Arc::clone(&self.stop);
        let conns = Arc::clone(&self.conns);
        let wake = Arc::clone(&self.wake);
        move || {
            stop.store(true, Ordering::SeqCst);
            let _ = wake.wake();
            for c in conns.lock().iter() {
                let _ = c.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Sever current connections but keep serving new ones — the
    /// transient-network-failure half of the reconnect story.
    pub fn drop_connections(&self) {
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        let _ = self.wake.wake();
    }

    /// Halt and join the event loop.
    pub fn join(mut self) -> io::Result<()> {
        self.halt();
        match self.thread.take() {
            Some(t) => {
                t.join().unwrap_or_else(|_| Err(io::Error::other("worker event loop panicked")))
            }
            None => Ok(()),
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.halt();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// How one queued argument resolves on the worker: through the
/// version-keyed value cache or the content-addressed block cache.
enum JobArg {
    /// Version-keyed: inline values were decoded and cached by the event
    /// loop before queueing (same-socket ordering), misses `Fetch`.
    Key(u64),
    /// Content-addressed: resolved from the block cache, misses
    /// `BlockRequest`.
    Block(u128),
}

/// One submitted task as queued on the worker.
struct Job {
    exec_id: u64,
    task_id: u64,
    attempt: u32,
    node: u32,
    name: Arc<str>,
    variant: u32,
    cores: Vec<u32>,
    gpus: Vec<u32>,
    args: Vec<JobArg>,
    /// Worker clock when the `Submit` frame was decoded — the first
    /// lifecycle stamp echoed back in `Done`.
    recv_us: u64,
}

/// Version-keyed value cache plus the in-flight fetch set that coalesces
/// concurrent misses: N executors needing the same key put exactly one
/// `Fetch` on the wire and all wait on the connection's `cache_cv`.
struct KeyCache {
    values: HashMap<u64, Value>,
    inflight: HashSet<u64>,
}

/// Content-addressed block cache plus its in-flight request set, the
/// block-plane analogue of [`KeyCache`]: one `BlockRequest` per missing
/// hash no matter how many tasks are blocked on it.
struct BlockCacheState {
    cache: BlockCache,
    inflight: HashSet<u128>,
}

/// State shared between one connection's event-loop side and its executor
/// threads. Executors never write the socket: outbound frames go through
/// `out` and the loop's waker.
struct ConnShared {
    /// Outbound backlog. Pushers flush it straight to the socket while
    /// they hold the lock (one thread hop fewer per result — on a serial
    /// RPC chain that is the whole round trip); the event loop drains
    /// whatever `WouldBlock` leaves behind.
    out: Mutex<SendBuf>,
    /// Write half of the socket (`try_clone` of the loop's fd) for the
    /// opportunistic flush above. Non-blocking, like the original.
    stream: TcpStream,
    /// Kicks the event loop when a push could not fully flush, so it arms
    /// write interest and resumes on the writable event.
    wake: Arc<Waker>,
    cache: Mutex<KeyCache>,
    cache_cv: Condvar,
    /// Decoded-block LRU under the `--cache-mem` budget, plus its
    /// in-flight request set. Own condvar (`blocks_cv`): parking_lot
    /// condvars are bound to one mutex at a time.
    blocks: Mutex<BlockCacheState>,
    blocks_cv: Condvar,
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    closed: AtomicBool,
    stop: Arc<AtomicBool>,
    /// Snapshot blobs by wire key (`SNAP_BIT` set). `Some` = blob in hand;
    /// `None` = the driver confirmed it has none (a cached miss, so a
    /// fresh trial asks at most once). Waiters sync on `snaps_cv` (its own
    /// condvar: parking_lot condvars are bound to one mutex at a time).
    snaps: Mutex<HashMap<u64, Option<Vec<u8>>>>,
    snaps_cv: Condvar,
    /// Worker-side span collector, always recording (executions are rare
    /// and records are tiny). Each telemetry-flagged heartbeat drains it to
    /// a `TraceChunk`; unflagged heartbeats drain-and-drop, so memory stays
    /// bounded and a tracing-disabled driver costs zero telemetry bytes.
    trace: TraceCollector,
    /// The clock every worker-side stamp shares: heartbeat-ack times, the
    /// `Done` lifecycle stamps, and trace record times — one epoch, so the
    /// driver's single offset estimate rebases all of them.
    epoch: std::time::Instant,
}

impl ConnShared {
    /// Microseconds since this connection's epoch — the worker clock on the
    /// wire.
    fn wall_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Queue an outbound frame and flush as much of the backlog as the
    /// socket accepts right now. Only backpressure (or a dead socket,
    /// which the event loop discovers on its read side) defers to the
    /// loop via the waker.
    fn push_out(&self, frame: &Frame) {
        let mut out = self.out.lock();
        out.push(frame);
        match out.flush(&mut &self.stream) {
            Ok((_, true)) => {}
            Ok((_, false)) | Err(_) => {
                let _ = self.wake.wake();
            }
        }
    }
}

/// Per-connection state owned by the worker's event loop.
struct WorkerConn {
    stream: TcpStream,
    recv: RecvBuf,
    /// Interned function names (`fn_id` → name), per connection.
    fn_names: HashMap<u64, Arc<str>>,
    shared: Arc<ConnShared>,
    /// What the poller currently believes about write interest.
    registered_write: bool,
}

/// The distributed worker's ambient snapshot channel: saves stream to the
/// driver as `Data` frames (the driver keeps the latest per key), loads
/// check the local map first and fall back to one `Fetch` round trip.
/// This is the vehicle for resubmit-with-snapshot: the worker that
/// inherits a dead peer's task fetches the dead peer's last checkpoint
/// from the driver and resumes from it.
struct WorkerSnapshotChannel(Arc<ConnShared>);

impl crate::snapshot::SnapshotChannel for WorkerSnapshotChannel {
    fn save(&self, key: u64, blob: &[u8]) {
        let wire_key = key | SNAP_BIT;
        self.0.snaps.lock().insert(wire_key, Some(blob.to_vec()));
        // Best-effort ship to the driver; a torn connection surfaces later
        // as the job failing, at which point the retry re-saves anyway.
        self.0.push_out(&Frame::Data {
            key: wire_key,
            blob: Blob { tag: SNAP_TAG.to_string(), bytes: blob.to_vec() },
        });
    }

    fn load(&self, key: u64) -> Option<Vec<u8>> {
        let wire_key = key | SNAP_BIT;
        {
            let snaps = self.0.snaps.lock();
            if let Some(entry) = snaps.get(&wire_key) {
                return entry.clone();
            }
        }
        self.0.push_out(&Frame::Fetch { key: wire_key });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut snaps = self.0.snaps.lock();
        loop {
            if let Some(entry) = snaps.get(&wire_key) {
                return entry.clone();
            }
            if self.0.closed.load(Ordering::SeqCst) || std::time::Instant::now() >= deadline {
                // Degrade to "no snapshot": the task trains from scratch.
                return None;
            }
            self.0.snaps_cv.wait_for(&mut snaps, Duration::from_millis(50));
        }
    }

    fn discard(&self, key: u64) {
        let wire_key = key | SNAP_BIT;
        self.0.snaps.lock().remove(&wire_key);
        // Empty blob = tombstone on the driver.
        self.0.push_out(&Frame::Data {
            key: wire_key,
            blob: Blob { tag: SNAP_TAG.to_string(), bytes: Vec::new() },
        });
    }
}

/// Set up a freshly accepted driver connection: non-blocking socket, Hello
/// queued, executor threads spawned, fd registered.
#[allow(clippy::too_many_arguments)]
fn accept_conn(
    stream: TcpStream,
    cfg: &WorkerConfig,
    registry: &Arc<TaskRegistry>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    poller: &Poller,
    wake: &Arc<Waker>,
    token: u64,
) -> Option<WorkerConn> {
    stream.set_nodelay(true).ok();
    if stream.set_nonblocking(true).is_err() {
        return None;
    }
    if let Ok(clone) = stream.try_clone() {
        conns.lock().push(clone);
    }
    let Ok(write_half) = stream.try_clone() else { return None };
    let shared = Arc::new(ConnShared {
        out: Mutex::new(SendBuf::new()),
        stream: write_half,
        wake: Arc::clone(wake),
        cache: Mutex::new(KeyCache { values: HashMap::new(), inflight: HashSet::new() }),
        cache_cv: Condvar::new(),
        blocks: Mutex::new(BlockCacheState {
            cache: BlockCache::new(cfg.cache_mem_bytes),
            inflight: HashSet::new(),
        }),
        blocks_cv: Condvar::new(),
        jobs: Mutex::new(VecDeque::new()),
        jobs_cv: Condvar::new(),
        closed: AtomicBool::new(false),
        stop: Arc::clone(stop),
        snaps: Mutex::new(HashMap::new()),
        snaps_cv: Condvar::new(),
        trace: TraceCollector::enabled(),
        epoch: std::time::Instant::now(),
    });
    if poller.register(stream.as_raw_fd(), token, Interest::READ).is_err() {
        return None;
    }
    // Direct-flushes like every other outbound frame; leftovers drain via
    // the loop's flush pass.
    shared.push_out(&Frame::Hello {
        name: cfg.name.clone(),
        cores: cfg.cores,
        gpus: cfg.gpus,
        mem_gib: cfg.mem_gib,
    });
    for _ in 0..cfg.cores.max(1) {
        let conn = Arc::clone(&shared);
        let registry = Arc::clone(registry);
        std::thread::spawn(move || executor_loop(conn, registry));
    }
    Some(WorkerConn {
        stream,
        recv: RecvBuf::new(),
        fn_names: HashMap::new(),
        shared,
        registered_write: false,
    })
}

/// Drain a readable event: fill the receive buffer until `WouldBlock`,
/// decoding and dispatching frames in place. Returns `false` on EOF,
/// error, or `Shutdown`.
fn service_worker_read(conn: &mut WorkerConn) -> bool {
    let WorkerConn { stream, recv, fn_names, shared, .. } = conn;
    'fill: loop {
        match recv.fill_from(stream) {
            Ok(Fill::Bytes(_)) => {}
            Ok(Fill::WouldBlock) => return true,
            Ok(Fill::Eof) | Err(_) => return false,
        }
        loop {
            match recv.next_frame() {
                Ok(Some(frame)) => {
                    if !handle_worker_frame(frame, fn_names, shared) {
                        return false;
                    }
                }
                Ok(None) => continue 'fill,
                Err(_) => return false,
            }
        }
    }
}

/// Dispatch one decoded frame. The frame borrows the receive buffer —
/// everything it needs beyond this call is copied out here (and inline
/// argument blobs go straight through [`codec::decode_tagged`] without an
/// owned intermediate). Returns `false` on `Shutdown`.
fn handle_worker_frame(
    frame: FrameRef<'_>,
    fn_names: &mut HashMap<u64, Arc<str>>,
    conn: &Arc<ConnShared>,
) -> bool {
    match frame {
        FrameRef::Submit {
            exec_id,
            task_id,
            attempt,
            node,
            fn_id,
            fn_name,
            variant,
            cores,
            gpus,
            args,
        } => {
            if let Some(name) = fn_name {
                fn_names.insert(fn_id, Arc::from(name));
            }
            let name = fn_names.get(&fn_id).cloned().unwrap_or_else(|| Arc::from("?"));
            let mut job_args = Vec::with_capacity(args.len());
            let mut bad_arg = None;
            for a in args {
                match a {
                    WireArgRef::Inline { key, blob } => {
                        match codec::decode_tagged(blob.tag, blob.bytes) {
                            Ok(v) => {
                                // Cache *before* queueing the job so
                                // same-socket ordering guarantees hold.
                                let mut cache = conn.cache.lock();
                                cache.inflight.remove(&key);
                                cache.values.insert(key, v);
                                drop(cache);
                                conn.cache_cv.notify_all();
                                job_args.push(JobArg::Key(key));
                            }
                            Err(e) => bad_arg = Some(e.to_string()),
                        }
                    }
                    WireArgRef::Cached { key } => job_args.push(JobArg::Key(key)),
                    // Content-addressed: either a BlockPut landed earlier
                    // on this socket, or the block cache still holds it
                    // from a previous task; a miss (eviction raced the
                    // driver's residency view) re-fetches on demand.
                    WireArgRef::Block { key: _, hash } => job_args.push(JobArg::Block(hash)),
                }
            }
            if let Some(msg) = bad_arg {
                conn.push_out(&Frame::Failed { exec_id, message: msg });
                return true;
            }
            let job = Job {
                exec_id,
                task_id,
                attempt,
                node,
                name,
                variant,
                cores,
                gpus,
                args: job_args,
                recv_us: conn.wall_us(),
            };
            conn.jobs.lock().push_back(job);
            conn.jobs_cv.notify_one();
        }
        FrameRef::Heartbeat { seq, t_send_us, telemetry } => {
            // Ack first — the clock exchange must not queue behind
            // telemetry payloads — then flush or drop buffered spans.
            let recv_us = conn.wall_us();
            conn.push_out(&Frame::HeartbeatAck {
                seq,
                t_send_us,
                recv_us,
                reply_us: conn.wall_us(),
            });
            if telemetry {
                flush_telemetry_frames(conn);
            } else {
                // The driver is not tracing: drop buffered spans so the
                // collector stays bounded and the wire stays silent.
                drop(conn.trace.drain());
            }
        }
        FrameRef::Data { key, blob } if key & SNAP_BIT != 0 => {
            // Snapshot fetch reply: raw bytes, empty = confirmed miss.
            // Both cases are cached so each trial asks at most once.
            let entry = if blob.bytes.is_empty() { None } else { Some(blob.bytes.to_vec()) };
            conn.snaps.lock().insert(key, entry);
            conn.snaps_cv.notify_all();
        }
        FrameRef::Data { key, blob } => {
            if let Ok(v) = codec::decode_tagged(blob.tag, blob.bytes) {
                let mut cache = conn.cache.lock();
                cache.inflight.remove(&key);
                cache.values.insert(key, v);
                drop(cache);
                conn.cache_cv.notify_all();
            }
        }
        // Unsolicited push (rides ahead of the Submit referencing it) and
        // fetch reply land identically: decode once, admit to the LRU.
        FrameRef::BlockPut { hash, blob } | FrameRef::BlockData { hash, blob } => {
            admit_block(conn, hash, blob.tag, blob.bytes);
        }
        FrameRef::Shutdown => return false,
        // Other frames are driver-bound; ignore.
        _ => {}
    }
    true
}

/// Ship buffered telemetry to the driver: one `TraceChunk` with every span
/// recorded since the last flush, plus a `StatsSnapshot` of the worker's
/// global metrics registry. Backpressure-aware: while the outbound buffer
/// still holds a backlog (a large result mid-flight), telemetry stays in
/// the collector for the next heartbeat — it must never wedge behind (or
/// in front of) task results.
fn flush_telemetry_frames(conn: &Arc<ConnShared>) {
    if !conn.out.lock().is_empty() {
        return;
    }
    let records = conn.trace.drain();
    if !records.is_empty() {
        conn.push_out(&Frame::TraceChunk { bytes: paratrace::wire::encode_records(&records) });
    }
    let snap = runmetrics::global().snapshot();
    conn.push_out(&Frame::StatsSnapshot {
        wall_us: conn.wall_us(),
        counters: snap.counters,
        gauges: snap.gauges,
    });
}

/// Drain a connection's outbound backlog and reconcile write interest.
/// Returns `false` when the socket died.
fn flush_worker_conn(poller: &Poller, token: u64, conn: &mut WorkerConn) -> bool {
    let mut out = conn.shared.out.lock();
    let drained = if out.is_empty() {
        true
    } else {
        match out.flush(&mut conn.stream) {
            Ok((_, drained)) => drained,
            Err(_) => return false,
        }
    };
    drop(out);
    let want_write = !drained;
    if want_write != conn.registered_write {
        let interest = if want_write { Interest::READ_WRITE } else { Interest::READ };
        if poller.modify(conn.stream.as_raw_fd(), token, interest).is_ok() {
            conn.registered_write = want_write;
        }
    }
    true
}

/// Tear down a dead connection: release its executors (closed flag + every
/// condvar) and remove the fd from the poll set before it closes.
fn close_worker_conn(poller: &Poller, conn: WorkerConn) {
    let _ = poller.deregister(conn.stream.as_raw_fd());
    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    conn.shared.closed.store(true, Ordering::SeqCst);
    conn.shared.jobs_cv.notify_all();
    conn.shared.cache_cv.notify_all();
    conn.shared.blocks_cv.notify_all();
    conn.shared.snaps_cv.notify_all();
}

/// Decode an incoming block and admit it to the LRU cache, waking any
/// executor parked on its hash and reporting what the budget pushed out
/// (`BlockEvict`, so the driver retracts its residency claims). Runs on
/// the event loop — decode cost is bounded by the same frames that would
/// otherwise decode inline.
fn admit_block(conn: &Arc<ConnShared>, hash: u128, tag: &str, bytes: &[u8]) {
    let Ok(v) = codec::decode_tagged(tag, bytes) else {
        // No codec for the tag: clear the in-flight mark so a waiter's
        // deadline produces a timeout error instead of a silent hang.
        conn.blocks.lock().inflight.remove(&hash);
        conn.blocks_cv.notify_all();
        return;
    };
    let mut blocks = conn.blocks.lock();
    blocks.inflight.remove(&hash);
    let evicted = blocks.cache.insert(hash, v, bytes.len() as u64);
    let resident = blocks.cache.resident_bytes();
    drop(blocks);
    conn.blocks_cv.notify_all();
    let global = runmetrics::global();
    global.gauge("rcompss_block_cache_resident_bytes").set(resident as f64);
    if !evicted.is_empty() {
        global.counter("rcompss_block_cache_evictions_total").add(evicted.len() as u64);
    }
    for h in evicted {
        conn.push_out(&Frame::BlockEvict { hash: h });
    }
}

/// Wait for `key` in the connection cache, requesting it from the driver
/// if it is missing (cold cache after a reconnect). Concurrent misses on
/// the same key coalesce: only the first requester puts a `Fetch` on the
/// wire, the rest wait on the same condvar.
fn resolve_arg(conn: &ConnShared, key: u64) -> Result<Value, TaskError> {
    let mut cache = conn.cache.lock();
    if let Some(v) = cache.values.get(&key) {
        return Ok(v.clone());
    }
    let leader = cache.inflight.insert(key);
    drop(cache);
    if leader {
        conn.push_out(&Frame::Fetch { key });
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut cache = conn.cache.lock();
    loop {
        if let Some(v) = cache.values.get(&key) {
            return Ok(v.clone());
        }
        if conn.closed.load(Ordering::SeqCst) || std::time::Instant::now() >= deadline {
            // Clear the mark so a later attempt re-requests instead of
            // waiting on a fetch that will never land.
            cache.inflight.remove(&key);
            return Err(TaskError::new("timed out fetching a task input"));
        }
        conn.cache_cv.wait_for(&mut cache, Duration::from_millis(50));
    }
}

/// Block-plane analogue of [`resolve_arg`]: look up a content hash in the
/// LRU cache, requesting the block from the driver on a miss with the
/// same single-`BlockRequest` coalescing.
fn resolve_block(conn: &ConnShared, hash: u128) -> Result<Value, TaskError> {
    let global = runmetrics::global();
    let mut blocks = conn.blocks.lock();
    if let Some(v) = blocks.cache.get(hash) {
        drop(blocks);
        global.counter("rcompss_block_cache_hits_total").incr();
        return Ok(v);
    }
    global.counter("rcompss_block_cache_misses_total").incr();
    let leader = blocks.inflight.insert(hash);
    drop(blocks);
    if leader {
        conn.push_out(&Frame::BlockRequest { hash });
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut blocks = conn.blocks.lock();
    loop {
        if let Some(v) = blocks.cache.get(hash) {
            return Ok(v);
        }
        if conn.closed.load(Ordering::SeqCst) || std::time::Instant::now() >= deadline {
            blocks.inflight.remove(&hash);
            return Err(TaskError::new("timed out fetching a task input block"));
        }
        conn.blocks_cv.wait_for(&mut blocks, Duration::from_millis(50));
    }
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("task panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("task panicked: {s}")
    } else {
        "task panicked".to_string()
    }
}

fn executor_loop(conn: Arc<ConnShared>, registry: Arc<TaskRegistry>) {
    // Task bodies on this worker snapshot through the driver: saves are
    // mirrored over the wire, loads fall back to a Fetch round trip.
    let snap_channel: Arc<dyn crate::snapshot::SnapshotChannel> =
        Arc::new(WorkerSnapshotChannel(Arc::clone(&conn)));
    loop {
        let job = {
            let mut jobs = conn.jobs.lock();
            loop {
                if let Some(j) = jobs.pop_front() {
                    break j;
                }
                if conn.closed.load(Ordering::SeqCst) {
                    return;
                }
                conn.jobs_cv.wait(&mut jobs);
            }
        };
        let frame = crate::snapshot::with_channel(Arc::clone(&snap_channel), || {
            run_job(&conn, &registry, &job)
        });
        // A halted worker goes silent — the driver must see it as a crash,
        // not a graceful completion.
        if conn.stop.load(Ordering::SeqCst) {
            return;
        }
        conn.push_out(&frame);
    }
}

fn run_job(conn: &ConnShared, registry: &TaskRegistry, job: &Job) -> Frame {
    let fail = |message: String| Frame::Failed { exec_id: job.exec_id, message };
    let Some(body) = registry.body(&job.name, job.variant) else {
        return fail(format!("worker has no task '{}' (variant {})", job.name, job.variant));
    };
    let mut inputs = Vec::with_capacity(job.args.len());
    for a in &job.args {
        let resolved = match *a {
            JobArg::Key(key) => resolve_arg(conn, key),
            JobArg::Block(hash) => resolve_block(conn, hash),
        };
        match resolved {
            Ok(v) => inputs.push(v),
            Err(e) => return fail(e.message),
        }
    }
    let ctx = TaskContext {
        task: TaskId(job.task_id),
        attempt: job.attempt,
        node: job.node,
        cores: job.cores.clone(),
        gpus: job.gpus.clone(),
        peer_nodes: Vec::new(),
        simulated: false,
    };
    let start_us = conn.wall_us();
    let result = catch_unwind(AssertUnwindSafe(|| body(&ctx, &inputs)))
        .unwrap_or_else(|p| Err(TaskError::new(panic_message(p))));
    let end_us = conn.wall_us().max(start_us + 1);
    // The ground-truth execution span, on the worker's clock and worker-
    // local node 0 (the merge rewrites it to the driver-side node id). The
    // worker's global registry feeds the StatsSnapshot stream.
    let core = CoreId::new(0, job.cores.first().copied().unwrap_or(0));
    conn.trace.task_run(core, start_us, end_us, TaskRef::new(job.task_id, Arc::clone(&job.name)));
    let global = runmetrics::global();
    global.counter("worker_tasks_executed_total").incr();
    global.histogram("worker_task_exec_us").record(end_us - start_us);
    match result {
        Ok(values) => {
            let mut outputs = Vec::with_capacity(values.len());
            for v in &values {
                match codec::encode_value(v) {
                    Some(blob) => outputs.push(blob),
                    None => {
                        return fail(format!(
                            "no wire codec registered for an output of task '{}'",
                            job.name
                        ))
                    }
                }
            }
            Frame::Done { exec_id: job.exec_id, recv_us: job.recv_us, start_us, end_us, outputs }
        }
        Err(e) => fail(e.message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_keys_roundtrip() {
        for (h, v) in [(0u64, 1u32), (1, 1), (7, 3), (u32::MAX as u64, u32::MAX)] {
            let dv = DataVersion { handle: DataHandle(h), version: v };
            assert_eq!(key_version(data_key(dv)), dv);
        }
    }

    #[test]
    fn default_config_is_sane() {
        let c = DistributedConfig::default();
        assert!(c.heartbeat_timeout > c.heartbeat_interval);
        assert!(c.window.is_none());
        assert!(!c.reconnect);
        let w = WorkerConfig::default();
        assert!(w.cores >= 1);
    }

    #[test]
    fn wake_and_listen_tokens_clear_node_range() {
        // Node indices are dense small integers; the reserved tokens must
        // never collide with them.
        assert_eq!(WAKE_TOKEN, u64::MAX);
        assert_eq!(LISTEN_TOKEN, u64::MAX - 1);
        assert!(LISTEN_TOKEN > u32::MAX as u64);
    }
}
