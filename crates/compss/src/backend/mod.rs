//! Execution backends.
//!
//! Both backends consume the same shared state (dependency graph, data
//! registry, scheduler, retry policy) and differ only in *how time passes*:
//!
//! * [`threaded`] — tasks execute on real OS threads; timestamps are wall
//!   time since runtime start. Use when tasks do real work (training real
//!   models in the HPO experiments of Figures 7–8).
//! * [`sim`] — tasks execute at virtual timestamps driven by a
//!   deterministic event queue; durations come from cost models. Use to
//!   reproduce cluster-scale behaviour (Figures 4–6, 9) on one machine.
//! * [`distributed`] — tasks execute on remote worker daemons over TCP
//!   (the `rnet` wire protocol); timestamps are wall time. Use to spread
//!   real work across machines, or across processes on one machine.

pub mod distributed;
pub mod sim;
pub mod threaded;
