//! Simulated backend: deterministic discrete-event execution.
//!
//! Task bodies still run (so the values flowing through the graph are real),
//! but they run at *virtual* timestamps: a task placed at virtual time `t`
//! first pays data-staging time (per the cluster's transfer model, zero
//! under a PFS), then occupies its cores for its submitted
//! `sim_duration_us`, and completes at `t + staging + duration`. Node
//! failures fire as scheduled events, killing and requeueing the tasks that
//! were running there — exactly the scenario of the paper's fault-tolerance
//! discussion.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cluster::transfer::DataLocation;
use cluster::EventQueue;
use paratrace::{CoreId, EventKind, StateKind, TaskRef};

use crate::data::Value;
use crate::runtime::{complete_attempt, Core, RunningExec, Shared};
use crate::task::{TaskContext, TaskError, TaskFn};

#[derive(Debug)]
enum SimEvent {
    Finish { exec: u64 },
    NodeFail { node: u32 },
}

/// Pending body + inputs for an in-flight simulated execution.
struct SimExec {
    ctx: TaskContext,
    body: Arc<TaskFn>,
    inputs: Vec<Value>,
    name: Arc<str>,
}

/// Virtual-time state of the simulated backend.
pub(crate) struct SimState {
    queue: EventQueue<SimEvent>,
    execs: HashMap<u64, SimExec>,
}

impl SimState {
    /// Fresh state at virtual time zero.
    pub fn new() -> Self {
        SimState { queue: EventQueue::new(), execs: HashMap::new() }
    }

    /// Current virtual time, µs.
    pub fn now(&self) -> u64 {
        self.queue.now()
    }

    /// Pre-register a node failure from the injector plan.
    pub fn schedule_node_failure(&mut self, at_us: u64, node: u32) {
        self.queue.schedule_at(at_us, SimEvent::NodeFail { node });
    }
}

/// Drive the simulation until `cond` holds (or nothing can change anymore).
/// Call with the core locked; single-threaded.
pub(crate) fn run_until(shared: &Shared, core: &mut Core, cond: impl Fn(&Core) -> bool) {
    loop {
        if cond(core) {
            return;
        }
        dispatch_sim(shared, core);
        let popped = core.sim.as_mut().expect("sim backend has sim state").queue.pop();
        let Some((t, event)) = popped else {
            // No pending events and nothing placeable: state is final.
            return;
        };
        match event {
            SimEvent::Finish { exec } => {
                let Some(se) = core.sim.as_mut().expect("sim state").execs.remove(&exec) else {
                    continue; // execution was killed by a node failure
                };
                let Some(run) = core.running.get(&exec) else { continue };
                let task_ref = TaskRef::new(se.ctx.task.0, Arc::clone(&se.name));
                for (node, cores) in run.placement.node_cores() {
                    for &c in cores {
                        shared.trace.task_run(
                            CoreId::new(node, c),
                            run.start_us,
                            t.max(run.start_us + 1),
                            task_ref.clone(),
                        );
                    }
                }
                shared.trace.event(
                    CoreId::new(
                        run.placement.node,
                        run.placement.cores.first().copied().unwrap_or(0),
                    ),
                    t,
                    EventKind::TaskEnd(task_ref),
                );
                let result = catch_unwind(AssertUnwindSafe(|| (se.body)(&se.ctx, &se.inputs)))
                    .unwrap_or_else(|_| Err(TaskError::new("task panicked")));
                complete_attempt(shared, core, exec, result, t, false);
            }
            SimEvent::NodeFail { node } => {
                core.sched.kill_node(node);
                shared.metrics.node_failures.incr();
                shared.trace.event(CoreId::new(node, 0), t, EventKind::NodeFailure);
                let victims: Vec<u64> = core
                    .running
                    .iter()
                    .filter(|(_, r)| r.placement.involves(node))
                    .map(|(&e, _)| e)
                    .collect();
                for exec in victims {
                    if let Some(se) = core.sim.as_mut().expect("sim state").execs.remove(&exec) {
                        // Truncated run bar so the kill is visible in traces.
                        if let Some(run) = core.running.get(&exec) {
                            let task_ref = TaskRef::new(se.ctx.task.0, Arc::clone(&se.name));
                            for (pnode, cores) in run.placement.node_cores() {
                                for &c in cores {
                                    shared.trace.task_run(
                                        CoreId::new(pnode, c),
                                        run.start_us.min(t),
                                        t.max(run.start_us + 1),
                                        task_ref.clone(),
                                    );
                                }
                            }
                        }
                    }
                    complete_attempt(
                        shared,
                        core,
                        exec,
                        Err(TaskError::new(format!("node {node} failed"))),
                        t,
                        true,
                    );
                }
            }
        }
    }
}

/// Place every placeable ready task at the current virtual time.
fn dispatch_sim(shared: &Shared, core: &mut Core) {
    // One relaxed load decides whether this round pays for decision timing.
    // Scheduler decision time is real (wall) time even under virtual task
    // time: it measures the runtime's own machinery, à la Dask-overheads.
    let measure = shared.metrics.enabled();
    loop {
        let now = core.sim.as_ref().expect("sim state").now();
        // Locality: prefer nodes already holding the inputs (only relevant
        // without a PFS).
        let decision_started = measure.then(std::time::Instant::now);
        let placed = {
            let data = &core.data;
            let instances = &core.instances;
            let use_locality = !shared.transfer.has_pfs();
            core.sched.pop_placeable(|task, node| {
                if !use_locality {
                    return 0;
                }
                instances.get(&task).map(|i| data.locality_score(&i.reads(), node)).unwrap_or(0)
            })
        };
        if let Some(t0) = decision_started {
            shared.metrics.sched_decision.record(t0.elapsed().as_micros() as u64);
        }
        let Some((entry, placement)) = placed else { break };
        let placement = Arc::new(placement);
        let task = entry.task;
        let inst = core.instances.get(&task).expect("ready task has an instance");
        let reads = inst.reads();
        let inputs: Vec<Value> =
            reads.iter().map(|v| core.data.get(*v).expect("inputs computed")).collect();
        let name = Arc::clone(&inst.def.name);
        // honour the scheduler's implementation choice (@implement)
        let body = if placement.variant == 0 {
            Arc::clone(&inst.def.body)
        } else {
            Arc::clone(&inst.def.alternatives[placement.variant - 1].body)
        };
        let attempt = inst.attempt;
        let duration = inst.sim_duration_us;

        // Staging: pay transfer time for inputs not resident on the node.
        let mut staging = 0u64;
        for v in &reads {
            if core.data.is_on_node(*v, placement.node) {
                continue;
            }
            let bytes = core.data.bytes(v.handle);
            let t = shared.transfer.time_to_node(bytes, DataLocation::Pfs, placement.node);
            if t > 0 {
                shared.trace.state(
                    CoreId::new(placement.node, placement.cores.first().copied().unwrap_or(0)),
                    now + staging,
                    now + staging + t,
                    StateKind::Transferring { bytes },
                );
                shared.metrics.transfer_bytes.add(bytes);
                shared.metrics.transfer_time.record(t);
            }
            staging += t;
            core.data.add_location(*v, placement.node);
        }

        let exec_id = core.next_exec;
        core.next_exec += 1;
        shared.metrics.dispatched.incr();
        shared.metrics.dep_wait.record(now.saturating_sub(inst.submitted_us));
        shared.trace.event(
            CoreId::new(placement.node, placement.cores.first().copied().unwrap_or(0)),
            now,
            EventKind::TaskDispatch(TaskRef::new(task.0, Arc::clone(&name))),
        );
        let ctx = TaskContext {
            task,
            attempt,
            node: placement.node,
            cores: placement.cores.clone(),
            gpus: placement.gpus.clone(),
            peer_nodes: placement.extra.iter().map(|(n, _, _)| *n).collect(),
            simulated: true,
        };
        core.running.insert(
            exec_id,
            RunningExec {
                task,
                placement,
                constraint: entry.constraint,
                attempt,
                start_us: now + staging,
            },
        );
        core.graph.set_running(task);
        let sim = core.sim.as_mut().expect("sim state");
        sim.execs.insert(exec_id, SimExec { ctx, body, inputs, name });
        sim.queue.schedule_at(now + staging + duration.max(1), SimEvent::Finish { exec: exec_id });
    }
    shared.metrics.ready_depth.set(core.sched.ready_len() as f64);
    shared.metrics.running.set(core.running.len() as f64);
}
