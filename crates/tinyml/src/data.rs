//! Synthetic datasets standing in for MNIST and CIFAR-10.
//!
//! The real datasets are not downloadable in this environment, so we generate
//! class-prototype mixtures whose *difficulty profile* matches what the paper
//! relies on:
//!
//! * **MNIST-like** — 784 features, 10 well-separated unimodal classes with
//!   moderate noise. The paper: "MNIST is a relatively simple application
//!   that generalises well after just a few epochs. Most of the combinations
//!   of hyperparameters are able to attain above 90 % accuracy."
//! * **CIFAR-like** — 3 072 features, 10 classes that are *multimodal*
//!   (three sub-modes each), weaker signal, more noise and 4 % label noise,
//!   so accuracy is lower, more epoch-hungry and more spread across
//!   hyperparameter configurations ("slightly bigger and more complex
//!   benchmark in comparison with MNIST").
//!
//! Everything is deterministic given the seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::tensor::Matrix;

/// A labelled classification dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Features, one example per row.
    pub x: Matrix,
    /// Integer labels, `len == x.rows()`.
    pub y: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
    /// Human-readable name ("mnist-like", "cifar10-like" …).
    pub name: String,
}

/// Standard-normal sample via Box–Muller (rand 0.8 has no normal dist
/// without `rand_distr`, which is outside the approved dependency set).
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Knobs for the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Sub-modes per class (1 = unimodal).
    pub modes_per_class: usize,
    /// Prototype amplitude (signal strength).
    pub signal: f32,
    /// Additive Gaussian noise σ.
    pub noise: f32,
    /// Fraction of labels replaced with a uniformly random class.
    pub label_noise: f32,
    /// Smooth prototypes spatially (treating rows as square 1- or
    /// 3-channel images), giving them the local correlations real images
    /// have. Required for convolutional models to have an edge.
    pub spatial: bool,
}

impl SyntheticSpec {
    /// MNIST-difficulty defaults (28×28 = 784 features).
    pub fn mnist_like() -> Self {
        // noise 2.6 is calibrated so short trainings land around 90–95 %
        // and long ones a little higher — the spread of the paper's Fig. 7.
        SyntheticSpec {
            dim: 784,
            classes: 10,
            modes_per_class: 1,
            signal: 1.0,
            noise: 2.6,
            label_noise: 0.0,
            spatial: false,
        }
    }

    /// MNIST-difficulty with spatially-smooth prototypes — the variant to
    /// train CNNs on.
    pub fn mnist_like_spatial() -> Self {
        // Smoothing averages away amplitude, so the signal is boosted to
        // keep the per-example SNR comparable.
        SyntheticSpec { spatial: true, signal: 3.0, ..SyntheticSpec::mnist_like() }
    }

    /// CIFAR-10-difficulty defaults (32×32×3 = 3 072 features).
    pub fn cifar_like() -> Self {
        SyntheticSpec {
            dim: 3072,
            classes: 10,
            modes_per_class: 3,
            signal: 0.45,
            noise: 1.4,
            label_noise: 0.04,
            spatial: false,
        }
    }

    /// CIFAR-10-difficulty with spatially-smooth prototypes.
    pub fn cifar_like_spatial() -> Self {
        SyntheticSpec { spatial: true, signal: 1.5, ..SyntheticSpec::cifar_like() }
    }
}

/// 3×3 box blur over a `(c, side, side)` image stored flat; two passes.
fn smooth_spatial(proto: &mut [f32], dim: usize) {
    let Some((c, side)) = [1usize, 3].into_iter().find_map(|c| {
        let per = dim / c;
        let side = (per as f64).sqrt() as usize;
        (dim.is_multiple_of(c) && side * side == per).then_some((c, side))
    }) else {
        return; // not image-shaped: leave as-is
    };
    for _ in 0..2 {
        let src = proto.to_vec();
        for ch in 0..c {
            for y in 0..side {
                for x in 0..side {
                    let mut sum = 0.0f32;
                    let mut n = 0.0f32;
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let yy = y as i64 + dy;
                            let xx = x as i64 + dx;
                            if yy >= 0 && xx >= 0 && (yy as usize) < side && (xx as usize) < side {
                                sum += src[(ch * side + yy as usize) * side + xx as usize];
                                n += 1.0;
                            }
                        }
                    }
                    proto[(ch * side + y) * side + x] = sum / n;
                }
            }
        }
    }
}

impl Dataset {
    /// Generate `n` examples from `spec`, deterministically from `seed`.
    pub fn synthetic(name: &str, n: usize, spec: &SyntheticSpec, seed: u64) -> Self {
        assert!(spec.classes >= 2, "need at least two classes");
        assert!(spec.modes_per_class >= 1);
        let mut rng = StdRng::seed_from_u64(seed);

        // Class/mode prototypes: sparse ±signal patterns so that different
        // prototypes overlap on some features (classes share structure, like
        // digit strokes / image statistics).
        let n_protos = spec.classes * spec.modes_per_class;
        let mut protos = Vec::with_capacity(n_protos);
        for _ in 0..n_protos {
            let mut proto: Vec<f32> = (0..spec.dim)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        if rng.gen_bool(0.5) {
                            spec.signal
                        } else {
                            -spec.signal
                        }
                    } else {
                        0.0
                    }
                })
                .collect();
            if spec.spatial {
                smooth_spatial(&mut proto, spec.dim);
            }
            protos.push(proto);
        }

        let mut x = Matrix::zeros(n, spec.dim);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.classes; // balanced classes
            let mode = rng.gen_range(0..spec.modes_per_class);
            let proto = &protos[class * spec.modes_per_class + mode];
            let row = x.row_mut(i);
            for (v, &p) in row.iter_mut().zip(proto) {
                *v = p + spec.noise * normal(&mut rng);
            }
            let label = if spec.label_noise > 0.0 && rng.gen_bool(spec.label_noise as f64) {
                rng.gen_range(0..spec.classes)
            } else {
                class
            };
            y.push(label);
        }
        Dataset { x, y, n_classes: spec.classes, name: name.to_string() }
    }

    /// `n` examples of the MNIST-difficulty dataset.
    pub fn synthetic_mnist(n: usize, seed: u64) -> Self {
        Self::synthetic("mnist-like", n, &SyntheticSpec::mnist_like(), seed)
    }

    /// `n` examples of the CIFAR-10-difficulty dataset.
    pub fn synthetic_cifar10(n: usize, seed: u64) -> Self {
        Self::synthetic("cifar10-like", n, &SyntheticSpec::cifar_like(), seed)
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// Deterministic train/validation split; `val_frac` of the examples go
    /// to validation. Examples are shuffled before splitting.
    pub fn split(&self, val_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&val_frac), "val_frac in [0,1)");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_val = (self.len() as f64 * val_frac).round() as usize;
        let (val_idx, train_idx) = idx.split_at(n_val);
        (
            self.subset(train_idx, &format!("{}-train", self.name)),
            self.subset(val_idx, &format!("{}-val", self.name)),
        )
    }

    /// Materialise a subset by example indices.
    pub fn subset(&self, idx: &[usize], name: &str) -> Dataset {
        Dataset {
            x: self.x.gather_rows(idx),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
            name: name.to_string(),
        }
    }

    /// Shuffled mini-batch index lists for one epoch. Deterministic in
    /// `(seed, epoch)`. The final batch may be smaller.
    pub fn batches(&self, batch_size: usize, seed: u64, epoch: u32) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9)));
        idx.chunks(batch_size).map(<[usize]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = Dataset::synthetic_mnist(100, 5);
        let b = Dataset::synthetic_mnist(100, 5);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        let c = Dataset::synthetic_mnist(100, 6);
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn shapes_and_balance() {
        let d = Dataset::synthetic_mnist(200, 1);
        assert_eq!(d.len(), 200);
        assert_eq!(d.dim(), 784);
        assert_eq!(d.n_classes, 10);
        // balanced: every class has 20 examples
        for class in 0..10 {
            assert_eq!(d.y.iter().filter(|&&y| y == class).count(), 20);
        }
    }

    #[test]
    fn cifar_like_is_bigger_and_noisier() {
        let m = SyntheticSpec::mnist_like();
        let c = SyntheticSpec::cifar_like();
        assert!(c.dim > m.dim);
        assert!(c.signal / c.noise < m.signal / m.noise, "worse per-dim SNR");
        assert!(c.signal < m.signal);
        assert!(c.modes_per_class > m.modes_per_class);
        assert!(c.label_noise > m.label_noise);
        let d = Dataset::synthetic_cifar10(50, 2);
        assert_eq!(d.dim(), 3072);
    }

    #[test]
    fn label_noise_perturbs_some_labels() {
        let spec = SyntheticSpec { label_noise: 0.5, ..SyntheticSpec::mnist_like() };
        let d = Dataset::synthetic("noisy", 400, &spec, 3);
        let mismatches = d.y.iter().enumerate().filter(|&(i, &y)| y != i % 10).count();
        assert!(mismatches > 50, "expected heavy label noise, saw {mismatches}");
    }

    #[test]
    fn split_partitions_without_loss() {
        let d = Dataset::synthetic_mnist(100, 9);
        let (train, val) = d.split(0.2, 1);
        assert_eq!(train.len(), 80);
        assert_eq!(val.len(), 20);
        assert_eq!(train.n_classes, 10);
        assert!(train.name.ends_with("-train"));
        // same split twice is identical
        let (train2, _) = d.split(0.2, 1);
        assert_eq!(train.y, train2.y);
    }

    #[test]
    fn batches_cover_every_example_once() {
        let d = Dataset::synthetic_mnist(103, 4);
        let batches = d.batches(32, 7, 0);
        assert_eq!(batches.len(), 4, "ceil(103/32)");
        assert_eq!(batches.last().unwrap().len(), 7);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn batches_reshuffle_per_epoch() {
        let d = Dataset::synthetic_mnist(64, 4);
        let e0 = d.batches(16, 7, 0);
        let e1 = d.batches(16, 7, 1);
        assert_ne!(e0, e1, "different epochs shuffle differently");
        assert_eq!(e0, d.batches(16, 7, 0), "same epoch is stable");
    }

    #[test]
    fn spatial_prototypes_are_locally_correlated() {
        // noise 0 exposes the raw prototypes
        let flat = Dataset::synthetic(
            "a",
            60,
            &SyntheticSpec { noise: 0.0, ..SyntheticSpec::mnist_like() },
            5,
        );
        let spatial = Dataset::synthetic(
            "b",
            60,
            &SyntheticSpec { noise: 0.0, ..SyntheticSpec::mnist_like_spatial() },
            5,
        );
        // neighbouring-pixel correlation of the class means: smoothing must
        // raise it far above the iid baseline.
        let corr = |d: &Dataset| {
            // average class-0 examples to approximate the prototype
            let mut mean = vec![0.0f32; d.dim()];
            let mut n = 0.0f32;
            for i in 0..d.len() {
                if d.y[i] == 0 {
                    for (m, &v) in mean.iter_mut().zip(d.x.row(i)) {
                        *m += v;
                    }
                    n += 1.0;
                }
            }
            for m in &mut mean {
                *m /= n;
            }
            let mut num = 0.0f32;
            let mut den = 0.0f32;
            for y in 0..28 {
                for x in 0..27 {
                    num += mean[y * 28 + x] * mean[y * 28 + x + 1];
                    den += mean[y * 28 + x] * mean[y * 28 + x];
                }
            }
            num / den.max(1e-9)
        };
        let c_flat = corr(&flat);
        let c_sp = corr(&spatial);
        assert!(c_sp > 0.5, "smoothed prototypes correlate: {c_sp}");
        assert!(c_sp > c_flat + 0.3, "flat {c_flat} vs spatial {c_sp}");
    }

    #[test]
    fn spatial_flag_keeps_determinism_and_shape() {
        let a = Dataset::synthetic("s", 50, &SyntheticSpec::cifar_like_spatial(), 2);
        let b = Dataset::synthetic("s", 50, &SyntheticSpec::cifar_like_spatial(), 2);
        assert_eq!(a.x, b.x);
        assert_eq!(a.dim(), 3072);
    }

    #[test]
    fn smoothing_skips_non_square_dims() {
        let spec = SyntheticSpec { dim: 10, spatial: true, ..SyntheticSpec::mnist_like() };
        let d = Dataset::synthetic("odd", 20, &spec, 1);
        assert_eq!(d.dim(), 10, "falls back gracefully");
    }

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
