//! Optimizers — the paper's first hyperparameter axis:
//! `"optimizer": ["Adam", "SGD", "RMSprop"]` (Listing 1).

use std::str::FromStr;

/// Which optimiser to use, exactly the three from the paper's config file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizerKind {
    /// Stochastic gradient descent (optionally with momentum — we use 0.9,
    /// Keras' common default for SGD-with-momentum setups).
    Sgd,
    /// RMSprop with ρ = 0.9.
    RmsProp,
    /// Adam with β₁ = 0.9, β₂ = 0.999.
    Adam,
}

impl OptimizerKind {
    /// All kinds, in the paper's config-file order.
    pub const ALL: [OptimizerKind; 3] =
        [OptimizerKind::Adam, OptimizerKind::Sgd, OptimizerKind::RmsProp];

    /// Canonical display name, matching the paper's JSON values.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Sgd => "SGD",
            OptimizerKind::RmsProp => "RMSprop",
            OptimizerKind::Adam => "Adam",
        }
    }

    /// A sensible default learning rate for this optimiser (Keras defaults).
    pub fn default_lr(&self) -> f32 {
        match self {
            OptimizerKind::Sgd => 0.01,
            OptimizerKind::RmsProp => 0.001,
            OptimizerKind::Adam => 0.001,
        }
    }
}

impl FromStr for OptimizerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sgd" => Ok(OptimizerKind::Sgd),
            "rmsprop" => Ok(OptimizerKind::RmsProp),
            "adam" => Ok(OptimizerKind::Adam),
            other => Err(format!("unknown optimizer '{other}' (expected Adam/SGD/RMSprop)")),
        }
    }
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-parameter-tensor optimiser state.
#[derive(Debug, Clone)]
enum Slot {
    Sgd { velocity: Vec<f32> },
    RmsProp { sq_avg: Vec<f32> },
    Adam { m: Vec<f32>, v: Vec<f32> },
}

/// Exported per-slot optimiser state — the serializable twin of the
/// private `Slot`, used by checkpointing ([`crate::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SlotState {
    /// SGD momentum velocity.
    Sgd(Vec<f32>),
    /// RMSprop running squared-gradient average.
    RmsProp(Vec<f32>),
    /// Adam first and second moment estimates.
    Adam(Vec<f32>, Vec<f32>),
}

/// Complete serializable optimiser state.
///
/// Round-tripping through [`Optimizer::state`] /
/// [`Optimizer::from_state`] is bit-exact: a restored optimiser continues
/// the same update trajectory (momenta, squared averages, Adam moments and
/// bias-correction clock) as if training had never stopped. The learning
/// rate is deliberately absent — schedules re-derive it from the epoch
/// index every epoch, so the resume path re-applies it.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerState {
    /// Optimiser family.
    pub kind: OptimizerKind,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    /// Update-step clock (Adam bias correction).
    pub t: u64,
    /// Per-tensor state, in slot order.
    pub slots: Vec<SlotState>,
}

/// A stateful optimiser over a fixed set of parameter tensors.
///
/// Call [`Optimizer::step`] once per tensor per update, always in the same
/// tensor order; the optimiser keys state by the `slot` index.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    lr: f32,
    /// Coupled L2 weight decay: the effective gradient is `g + wd·p`.
    weight_decay: f32,
    t: u64,
    slots: Vec<Slot>,
}

impl Optimizer {
    /// Build an optimiser of `kind` with learning rate `lr`.
    pub fn new(kind: OptimizerKind, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Optimizer { kind, lr, weight_decay: 0.0, t: 0, slots: Vec::new() }
    }

    /// Add L2 weight decay (chainable).
    ///
    /// # Panics
    /// Panics on negative values.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// The optimiser kind.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Update the learning rate (used by schedules between epochs).
    ///
    /// # Panics
    /// Panics on non-positive values.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Begin a new update step (advances Adam's bias-correction clock).
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Export the complete mutable state for checkpointing.
    pub fn state(&self) -> OptimizerState {
        OptimizerState {
            kind: self.kind,
            weight_decay: self.weight_decay,
            t: self.t,
            slots: self
                .slots
                .iter()
                .map(|s| match s {
                    Slot::Sgd { velocity } => SlotState::Sgd(velocity.clone()),
                    Slot::RmsProp { sq_avg } => SlotState::RmsProp(sq_avg.clone()),
                    Slot::Adam { m, v } => SlotState::Adam(m.clone(), v.clone()),
                })
                .collect(),
        }
    }

    /// Rebuild an optimiser from exported state. `lr` seeds the learning
    /// rate (schedules overwrite it per epoch); the momenta and step clock
    /// come back bit-identical to the exporting optimiser's.
    ///
    /// # Panics
    /// Panics on a non-positive `lr` or when a slot's family does not
    /// match `state.kind`.
    pub fn from_state(state: &OptimizerState, lr: f32) -> Self {
        let slots = state
            .slots
            .iter()
            .map(|s| match (s, state.kind) {
                (SlotState::Sgd(v), OptimizerKind::Sgd) => Slot::Sgd { velocity: v.clone() },
                (SlotState::RmsProp(s), OptimizerKind::RmsProp) => {
                    Slot::RmsProp { sq_avg: s.clone() }
                }
                (SlotState::Adam(m, v), OptimizerKind::Adam) => {
                    Slot::Adam { m: m.clone(), v: v.clone() }
                }
                _ => panic!("optimizer slot family does not match kind {:?}", state.kind),
            })
            .collect();
        let mut opt = Optimizer::new(state.kind, lr).with_weight_decay(state.weight_decay);
        opt.t = state.t;
        opt.slots = slots;
        opt
    }

    /// Update parameter tensor `slot` in place from `grad`.
    ///
    /// # Panics
    /// Panics if `params.len() != grad.len()`, or if a slot changes size
    /// between calls.
    pub fn step(&mut self, slot: usize, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len(), "parameter/gradient length mismatch");
        while self.slots.len() <= slot {
            let n = params.len();
            self.slots.push(match self.kind {
                OptimizerKind::Sgd => Slot::Sgd { velocity: vec![0.0; n] },
                OptimizerKind::RmsProp => Slot::RmsProp { sq_avg: vec![0.0; n] },
                OptimizerKind::Adam => Slot::Adam { m: vec![0.0; n], v: vec![0.0; n] },
            });
        }
        let lr = self.lr;
        let wd = self.weight_decay;
        match &mut self.slots[slot] {
            Slot::Sgd { velocity } => {
                assert_eq!(velocity.len(), params.len(), "slot size changed");
                const MOMENTUM: f32 = 0.9;
                for ((p, &g), v) in params.iter_mut().zip(grad).zip(velocity.iter_mut()) {
                    let g = g + wd * *p;
                    *v = MOMENTUM * *v - lr * g;
                    *p += *v;
                }
            }
            Slot::RmsProp { sq_avg } => {
                assert_eq!(sq_avg.len(), params.len(), "slot size changed");
                const RHO: f32 = 0.9;
                const EPS: f32 = 1e-7;
                for ((p, &g), s) in params.iter_mut().zip(grad).zip(sq_avg.iter_mut()) {
                    let g = g + wd * *p;
                    *s = RHO * *s + (1.0 - RHO) * g * g;
                    *p -= lr * g / (s.sqrt() + EPS);
                }
            }
            Slot::Adam { m, v } => {
                assert_eq!(m.len(), params.len(), "slot size changed");
                const B1: f32 = 0.9;
                const B2: f32 = 0.999;
                const EPS: f32 = 1e-8;
                let t = self.t.max(1) as i32;
                let bc1 = 1.0 - B1.powi(t);
                let bc2 = 1.0 - B2.powi(t);
                for ((p, &g), (mi, vi)) in
                    params.iter_mut().zip(grad).zip(m.iter_mut().zip(v.iter_mut()))
                {
                    let g = g + wd * *p;
                    *mi = B1 * *mi + (1.0 - B1) * g;
                    *vi = B2 * *vi + (1.0 - B2) * g * g;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *p -= lr * m_hat / (v_hat.sqrt() + EPS);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_matches_paper_config_values() {
        assert_eq!("Adam".parse::<OptimizerKind>().unwrap(), OptimizerKind::Adam);
        assert_eq!("SGD".parse::<OptimizerKind>().unwrap(), OptimizerKind::Sgd);
        assert_eq!("RMSprop".parse::<OptimizerKind>().unwrap(), OptimizerKind::RmsProp);
        assert!("AdaGrad".parse::<OptimizerKind>().is_err());
        assert_eq!(OptimizerKind::RmsProp.to_string(), "RMSprop");
    }

    /// Optimising f(x) = x² must drive x toward 0. Adam/RMSprop take steps
    /// of ≈lr regardless of gradient magnitude, so give them a rate and
    /// budget that can cover the distance.
    fn minimises_quadratic(kind: OptimizerKind) {
        let mut opt = Optimizer::new(kind, 0.05);
        let mut x = vec![5.0f32];
        let start = x[0].abs();
        for _ in 0..2_000 {
            opt.begin_step();
            let g = vec![2.0 * x[0]];
            opt.step(0, &mut x, &g);
        }
        let now = x[0].abs();
        assert!(now < start, "no progress for {kind:?}");
        assert!(now < 1.0, "{kind:?} should approach the minimum, x = {}", x[0]);
    }

    #[test]
    fn sgd_minimises_quadratic() {
        minimises_quadratic(OptimizerKind::Sgd);
    }

    #[test]
    fn rmsprop_minimises_quadratic() {
        minimises_quadratic(OptimizerKind::RmsProp);
    }

    #[test]
    fn adam_minimises_quadratic() {
        minimises_quadratic(OptimizerKind::Adam);
    }

    #[test]
    fn slots_keep_independent_state() {
        let mut opt = Optimizer::new(OptimizerKind::Adam, 0.1);
        let mut a = vec![1.0f32];
        let mut b = vec![1.0f32];
        opt.begin_step();
        opt.step(0, &mut a, &[1.0]);
        opt.step(1, &mut b, &[1.0]);
        assert_eq!(a, b, "identical inputs through distinct slots move identically");
        // now drive only slot 0; slot 1's state must not change
        opt.begin_step();
        opt.step(0, &mut a, &[1.0]);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_grad_panics() {
        let mut opt = Optimizer::new(OptimizerKind::Sgd, 0.1);
        opt.step(0, &mut [0.0, 0.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn nonpositive_lr_rejected() {
        let _ = Optimizer::new(OptimizerKind::Adam, 0.0);
    }

    #[test]
    fn set_lr_changes_step_size() {
        let mut opt = Optimizer::new(OptimizerKind::Sgd, 0.1);
        assert_eq!(opt.lr(), 0.1);
        let mut a = vec![0.0f32];
        opt.begin_step();
        opt.step(0, &mut a, &[1.0]);
        let first = a[0];
        opt.set_lr(0.01);
        let mut b = vec![0.0f32];
        let mut opt2 = Optimizer::new(OptimizerKind::Sgd, 0.01);
        opt2.begin_step();
        opt2.step(0, &mut b, &[1.0]);
        assert!(first.abs() > b[0].abs(), "smaller lr moves less");
        assert_eq!(opt.lr(), 0.01);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn set_lr_rejects_zero() {
        Optimizer::new(OptimizerKind::Sgd, 0.1).set_lr(0.0);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        // zero gradient: with decay the parameter decays toward 0,
        // without it it stays put.
        let mut with = Optimizer::new(OptimizerKind::Sgd, 0.1).with_weight_decay(0.1);
        let mut without = Optimizer::new(OptimizerKind::Sgd, 0.1);
        let mut pw = vec![1.0f32];
        let mut po = vec![1.0f32];
        for _ in 0..50 {
            with.begin_step();
            with.step(0, &mut pw, &[0.0]);
            without.begin_step();
            without.step(0, &mut po, &[0.0]);
        }
        assert!(pw[0].abs() < 0.7, "decayed: {}", pw[0]);
        assert_eq!(po[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "weight decay")]
    fn negative_weight_decay_rejected() {
        let _ = Optimizer::new(OptimizerKind::Adam, 0.1).with_weight_decay(-0.1);
    }

    /// A restored optimiser must continue the exact trajectory of the
    /// original: run k steps, export, run more steps on both the original
    /// and the restored copy, compare parameters bitwise.
    fn state_round_trip_continues_trajectory(kind: OptimizerKind) {
        let mut opt = Optimizer::new(kind, 0.05).with_weight_decay(1e-3);
        let mut x = vec![3.0f32, -2.0, 0.5];
        for i in 0..7 {
            opt.begin_step();
            let g: Vec<f32> = x.iter().map(|&v| 2.0 * v + i as f32 * 0.01).collect();
            opt.step(0, &mut x, &g);
        }
        let st = opt.state();
        let mut restored = Optimizer::from_state(&st, opt.lr());
        assert_eq!(restored.state(), st, "export/import round trip");
        let mut x2 = x.clone();
        for i in 0..5 {
            opt.begin_step();
            restored.begin_step();
            let g: Vec<f32> = x.iter().map(|&v| 2.0 * v + i as f32 * 0.02).collect();
            opt.step(0, &mut x, &g);
            let g2: Vec<f32> = x2.iter().map(|&v| 2.0 * v + i as f32 * 0.02).collect();
            restored.step(0, &mut x2, &g2);
        }
        assert_eq!(x, x2, "{kind:?} diverged after restore");
    }

    #[test]
    fn sgd_state_round_trips() {
        state_round_trip_continues_trajectory(OptimizerKind::Sgd);
    }

    #[test]
    fn rmsprop_state_round_trips() {
        state_round_trip_continues_trajectory(OptimizerKind::RmsProp);
    }

    #[test]
    fn adam_state_round_trips() {
        state_round_trip_continues_trajectory(OptimizerKind::Adam);
    }

    #[test]
    #[should_panic(expected = "slot family")]
    fn mismatched_slot_family_rejected() {
        let st = OptimizerState {
            kind: OptimizerKind::Adam,
            weight_decay: 0.0,
            t: 1,
            slots: vec![SlotState::Sgd(vec![0.0])],
        };
        let _ = Optimizer::from_state(&st, 0.1);
    }
}
