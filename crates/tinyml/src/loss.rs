//! Softmax cross-entropy loss.

use crate::tensor::Matrix;

/// Row-wise softmax, numerically stabilised by max subtraction.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean softmax cross-entropy of `logits (batch × classes)` against integer
/// `labels`, and the gradient w.r.t. the logits.
///
/// # Panics
/// Panics if a label is out of range or the batch is empty.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    assert!(!labels.is_empty(), "empty batch");
    let batch = logits.rows() as f32;
    let mut probs = softmax(logits);
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        let p = probs.get(r, label).max(1e-12);
        loss -= p.ln();
        // dL/dlogits = (softmax - onehot) / batch
        let row = probs.row_mut(r);
        for v in row.iter_mut() {
            *v /= batch;
        }
        row[label] -= 1.0 / batch;
    }
    (loss / batch, probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
        // larger logit ⇒ larger probability
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = softmax(&Matrix::from_vec(1, 2, vec![1001.0, 1002.0]));
        assert!((a.get(0, 0) - b.get(0, 0)).abs() < 1e-6);
        assert!(b.as_slice().iter().all(|v| v.is_finite()), "no overflow at huge logits");
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Matrix::from_vec(1, 3, vec![100.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn uniform_prediction_loss_is_log_classes() {
        let logits = Matrix::zeros(4, 10);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp.set(r, c, logits.get(r, c) + eps);
                let mut lm = logits.clone();
                lm.set(r, c, logits.get(r, c) - eps);
                let (loss_p, _) = softmax_cross_entropy(&lp, &labels);
                let (loss_m, _) = softmax_cross_entropy(&lm, &labels);
                let num = (loss_p - loss_m) / (2.0 * eps);
                assert!(
                    (num - grad.get(r, c)).abs() < 1e-3,
                    "grad mismatch at ({r},{c}): {} vs {num}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let _ = softmax_cross_entropy(&Matrix::zeros(1, 3), &[3]);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_count_mismatch_panics() {
        let _ = softmax_cross_entropy(&Matrix::zeros(2, 3), &[0]);
    }
}
