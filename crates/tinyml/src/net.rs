//! Multi-layer perceptron with ReLU hidden activations.
//!
//! This is the `create_model(config)` of the paper's Listing 2: "New model
//! created every time with different parameters". Architecture parameters
//! (hidden layer sizes) can themselves be hyperparameters.
//!
//! The layers carry no parallelism knobs of their own: every
//! forward/backward product here lowers to the [`crate::tensor`] GEMM
//! family, which consults the ambient degree installed by
//! [`crate::par::with_threads`] (the training loop opens that scope from
//! [`crate::train::TrainConfig::threads`], which in turn is fed by the
//! task runtime's core grant). A 4-core-constrained experiment task thus
//! runs its dense layers on 4 workers with no change to this file's API.

use crate::layers::{relu_backward, relu_inplace, Dense};
use crate::loss::softmax_cross_entropy;
use crate::optim::Optimizer;
use crate::tensor::Matrix;

/// A trainable classifier over flat feature rows.
///
/// Both [`Mlp`] and [`crate::cnn::Cnn`] implement this, so the training
/// loop and the HPO objectives are architecture-agnostic — mirroring the
/// paper's "our scheme does not constrain the user to any framework".
pub trait Model {
    /// Compute logits, one row per input row.
    fn forward(&self, x: &Matrix) -> Matrix;

    /// One optimisation step on a mini-batch; returns the batch loss.
    fn train_batch(&mut self, opt: &mut Optimizer, x: &Matrix, labels: &[usize]) -> f32;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize;

    /// Every trainable tensor, flattened, in optimiser slot order — the
    /// weight half of a training checkpoint (see [`crate::snapshot`]).
    fn params(&self) -> Vec<Vec<f32>>;

    /// Overwrite the trainable tensors from a [`Model::params`] export.
    /// Returns `false` (leaving the model untouched) when the tensor
    /// count or any length disagrees — the snapshot came from a
    /// different architecture.
    fn restore_params(&mut self, params: &[Vec<f32>]) -> bool;

    /// Predicted class per row (argmax of [`Model::forward`]).
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        argmax_rows(&self.forward(x))
    }
}

/// Copy `src` tensors onto `dst` slices after verifying every length
/// matches (shared by the [`Model::restore_params`] impls).
pub(crate) fn restore_into(dst: &mut [&mut [f32]], src: &[Vec<f32>]) -> bool {
    if dst.len() != src.len() || dst.iter().zip(src).any(|(d, s)| d.len() != s.len()) {
        return false;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        d.copy_from_slice(s);
    }
    true
}

/// Index of the largest entry in each row (ties break low, empty rows 0).
fn argmax_rows(logits: &Matrix) -> Vec<usize> {
    (0..logits.rows())
        .map(|r| {
            logits
                .row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// A dense feed-forward classifier.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Gradients for every layer, same order as [`Mlp::layers`].
#[derive(Debug)]
pub struct Gradients {
    /// `(dW, db)` per layer.
    pub per_layer: Vec<(Matrix, Vec<f32>)>,
}

impl Mlp {
    /// Build a network `input → hidden… → classes`, deterministically
    /// initialised from `seed`.
    ///
    /// # Panics
    /// Panics on zero input dimension or zero classes.
    pub fn new(input_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(classes > 0, "classes must be positive");
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(input_dim);
        dims.extend_from_slice(hidden);
        dims.push(classes);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Dense::new(w[0], w[1], seed.wrapping_add(i as u64 * 0x9E37)))
            .collect();
        Mlp { layers }
    }

    /// Number of layers (hidden + output).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass producing logits.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                relu_inplace(&mut h);
            }
        }
        h
    }

    /// Predicted class per row.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        argmax_rows(&self.forward(x))
    }

    /// Forward + backward on one mini-batch. Returns `(loss, gradients)`.
    pub fn loss_and_gradients(&self, x: &Matrix, labels: &[usize]) -> (f32, Gradients) {
        // Forward, caching inputs and pre-activations per layer.
        let mut inputs: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        let mut pre_acts: Vec<Option<Matrix>> = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(h.clone());
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                pre_acts.push(Some(relu_inplace(&mut h)));
            } else {
                pre_acts.push(None);
            }
        }
        let (loss, mut dz) = softmax_cross_entropy(&h, labels);

        // Backward.
        let mut per_layer: Vec<(Matrix, Vec<f32>)> = Vec::with_capacity(self.layers.len());
        for i in (0..self.layers.len()).rev() {
            let (dw, db, dx) = self.layers[i].backward(&inputs[i], &dz);
            per_layer.push((dw, db));
            dz = dx;
            if i > 0 {
                // dz now flows through the ReLU that preceded layer i.
                if let Some(pre) = &pre_acts[i - 1] {
                    relu_backward(&mut dz, pre);
                }
            }
        }
        per_layer.reverse();
        (loss, Gradients { per_layer })
    }

    /// Apply `grads` through `opt`. Layer `i` uses optimiser slots
    /// `2i` (weights) and `2i+1` (bias).
    pub fn apply_gradients(&mut self, opt: &mut Optimizer, grads: &Gradients) {
        assert_eq!(grads.per_layer.len(), self.layers.len(), "gradient/layer count");
        opt.begin_step();
        for (i, (layer, (dw, db))) in self.layers.iter_mut().zip(&grads.per_layer).enumerate() {
            opt.step(2 * i, layer.w.as_mut_slice(), dw.as_slice());
            opt.step(2 * i + 1, &mut layer.b, db);
        }
    }

    /// Immutable access to the layers (inspection/tests).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }
}

impl Model for Mlp {
    fn forward(&self, x: &Matrix) -> Matrix {
        Mlp::forward(self, x)
    }

    fn train_batch(&mut self, opt: &mut Optimizer, x: &Matrix, labels: &[usize]) -> f32 {
        let (loss, grads) = self.loss_and_gradients(x, labels);
        self.apply_gradients(opt, &grads);
        loss
    }

    fn param_count(&self) -> usize {
        Mlp::param_count(self)
    }

    fn params(&self) -> Vec<Vec<f32>> {
        // Same order as `apply_gradients`: slots 2i (weights), 2i+1 (bias).
        let mut out = Vec::with_capacity(2 * self.layers.len());
        for layer in &self.layers {
            out.push(layer.w.as_slice().to_vec());
            out.push(layer.b.clone());
        }
        out
    }

    fn restore_params(&mut self, params: &[Vec<f32>]) -> bool {
        let mut dst: Vec<&mut [f32]> = Vec::with_capacity(2 * self.layers.len());
        for layer in &mut self.layers {
            dst.push(layer.w.as_mut_slice());
            dst.push(&mut layer.b);
        }
        restore_into(&mut dst, params)
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        Mlp::predict(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::OptimizerKind;

    #[test]
    fn construction_wires_dimensions() {
        let net = Mlp::new(784, &[64, 32], 10, 1);
        assert_eq!(net.depth(), 3);
        let dims: Vec<(usize, usize)> =
            net.layers().iter().map(|l| (l.in_dim(), l.out_dim())).collect();
        assert_eq!(dims, vec![(784, 64), (64, 32), (32, 10)]);
        assert_eq!(net.param_count(), 784 * 64 + 64 + 64 * 32 + 32 + 32 * 10 + 10);
    }

    #[test]
    fn no_hidden_layers_is_logistic_regression() {
        let net = Mlp::new(5, &[], 3, 1);
        assert_eq!(net.depth(), 1);
        let x = Matrix::zeros(2, 5);
        assert_eq!(net.forward(&x).cols(), 3);
    }

    #[test]
    fn predict_returns_argmax_class() {
        let net = Mlp::new(4, &[8], 3, 2);
        let x = Matrix::from_fn(6, 4, |r, c| ((r + c) as f32).cos());
        let preds = net.predict(&x);
        assert_eq!(preds.len(), 6);
        assert!(preds.iter().all(|&p| p < 3));
        let logits = net.forward(&x);
        for (r, &p) in preds.iter().enumerate() {
            let row = logits.row(r);
            assert!(row.iter().all(|&v| v <= row[p]));
        }
    }

    #[test]
    fn full_network_numerical_gradient_check() {
        let net = Mlp::new(3, &[4], 2, 9);
        let x = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin());
        let labels = [0usize, 1, 0, 1, 1];
        let (_, grads) = net.loss_and_gradients(&x, &labels);
        let eps = 1e-2f32;
        // check a sample of weight entries in each layer
        for li in 0..net.depth() {
            for &(r, c) in &[(0usize, 0usize), (1, 1)] {
                let mut plus = net.clone();
                let orig = plus.layers[li].w.get(r, c);
                plus.layers[li].w.set(r, c, orig + eps);
                let (lp, _) = plus.loss_and_gradients(&x, &labels);
                let mut minus = net.clone();
                minus.layers[li].w.set(r, c, orig - eps);
                let (lm, _) = minus.loss_and_gradients(&x, &labels);
                let num = (lp - lm) / (2.0 * eps);
                let ana = grads.per_layer[li].0.get(r, c);
                assert!(
                    (num - ana).abs() < 2e-2,
                    "layer {li} ({r},{c}): analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn training_step_reduces_loss_on_fixed_batch() {
        let mut net = Mlp::new(6, &[32], 3, 3);
        // sin over well-spread integer arguments ≈ quasi-random features,
        // avoiding near-aliased rows that would make labels unlearnable.
        let x = Matrix::from_fn(30, 6, |r, c| ((r * 37 + c * 11) as f32).sin());
        let labels: Vec<usize> = (0..30).map(|r| r % 3).collect();
        let mut opt = Optimizer::new(OptimizerKind::Adam, 2e-2);
        let (initial, _) = net.loss_and_gradients(&x, &labels);
        for _ in 0..500 {
            let (_, g) = net.loss_and_gradients(&x, &labels);
            net.apply_gradients(&mut opt, &g);
        }
        let (final_loss, _) = net.loss_and_gradients(&x, &labels);
        assert!(
            final_loss < initial * 0.5,
            "overfitting a fixed batch must at least halve the loss: {initial} → {final_loss}"
        );
    }

    #[test]
    fn seeding_is_reproducible() {
        let a = Mlp::new(10, &[5], 2, 77);
        let b = Mlp::new(10, &[5], 2, 77);
        let x = Matrix::from_fn(3, 10, |r, c| (r as f32) - (c as f32) * 0.1);
        assert_eq!(a.forward(&x), b.forward(&x));
    }
}
