//! Network layers: fully-connected (dense) with ReLU activations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Matrix;

/// A fully-connected layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias, `out_dim`.
    pub b: Vec<f32>,
}

impl Dense {
    /// He-uniform initialisation (suits the ReLU activations we use),
    /// deterministic under `seed`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0f32 / in_dim as f32).sqrt();
        let w = Matrix::from_fn(in_dim, out_dim, |_, _| rng.gen_range(-limit..limit));
        Dense { w, b: vec![0.0; out_dim] }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass: `x (batch × in) → batch × out`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row_vector(&self.b);
        z
    }

    /// Backward pass. Given the input `x` that produced the forward output
    /// and the gradient `dz` w.r.t. that output, returns
    /// `(dw, db, dx)`.
    pub fn backward(&self, x: &Matrix, dz: &Matrix) -> (Matrix, Vec<f32>, Matrix) {
        let dw = x.t_matmul(dz); // xᵀ · dz : in × out
        let db = dz.col_sums();
        let dx = dz.matmul_t(&self.w); // dz · wᵀ : batch × in
        (dw, db, dx)
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

/// ReLU forward, in place. Returns a copy of the pre-activation needed by
/// [`relu_backward`].
pub fn relu_inplace(z: &mut Matrix) -> Matrix {
    let pre = z.clone();
    z.map_inplace(|v| v.max(0.0));
    pre
}

/// ReLU backward: zero the gradient where the pre-activation was ≤ 0.
pub fn relu_backward(dz: &mut Matrix, pre_activation: &Matrix) {
    debug_assert_eq!(dz.rows(), pre_activation.rows());
    debug_assert_eq!(dz.cols(), pre_activation.cols());
    for (g, &p) in dz.as_mut_slice().iter_mut().zip(pre_activation.as_slice()) {
        if p <= 0.0 {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_seeded_and_bounded() {
        let a = Dense::new(10, 5, 42);
        let b = Dense::new(10, 5, 42);
        let c = Dense::new(10, 5, 43);
        assert_eq!(a.w, b.w, "same seed ⇒ same weights");
        assert_ne!(a.w, c.w, "different seed ⇒ different weights");
        let limit = (6.0f32 / 10.0).sqrt();
        assert!(a.w.as_slice().iter().all(|v| v.abs() <= limit));
        assert!(a.b.iter().all(|&v| v == 0.0));
        assert_eq!(a.param_count(), 55);
        assert_eq!((a.in_dim(), a.out_dim()), (10, 5));
    }

    #[test]
    fn forward_applies_affine_map() {
        let mut layer = Dense::new(2, 2, 0);
        layer.w = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        layer.b = vec![10.0, 20.0];
        let x = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let y = layer.forward(&x);
        assert_eq!(y.as_slice(), &[13.0, 24.0]);
    }

    #[test]
    fn backward_shapes_and_bias_grad() {
        let layer = Dense::new(3, 4, 1);
        let x = Matrix::from_fn(5, 3, |r, c| (r + c) as f32);
        let dz = Matrix::from_fn(5, 4, |_, _| 1.0);
        let (dw, db, dx) = layer.backward(&x, &dz);
        assert_eq!((dw.rows(), dw.cols()), (3, 4));
        assert_eq!(db.len(), 4);
        assert_eq!((dx.rows(), dx.cols()), (5, 3));
        assert!(db.iter().all(|&v| v == 5.0), "db = column sums of dz");
    }

    #[test]
    fn dense_numerical_gradient_check() {
        // Finite-difference check of dL/dW for L = sum(forward(x)).
        let mut layer = Dense::new(3, 2, 7);
        let x = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f32).sin());
        let dz = Matrix::from_fn(4, 2, |_, _| 1.0);
        let (dw, _, _) = layer.backward(&x, &dz);
        let eps = 1e-3f32;
        for r in 0..3 {
            for c in 0..2 {
                let orig = layer.w.get(r, c);
                layer.w.set(r, c, orig + eps);
                let lp: f32 = layer.forward(&x).as_slice().iter().sum();
                layer.w.set(r, c, orig - eps);
                let lm: f32 = layer.forward(&x).as_slice().iter().sum();
                layer.w.set(r, c, orig);
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - dw.get(r, c)).abs() < 1e-2,
                    "grad mismatch at ({r},{c}): analytic {} vs numeric {num}",
                    dw.get(r, c)
                );
            }
        }
    }

    #[test]
    fn relu_roundtrip() {
        let mut z = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let pre = relu_inplace(&mut z);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let mut dz = Matrix::from_vec(1, 4, vec![1.0; 4]);
        relu_backward(&mut dz, &pre);
        assert_eq!(dz.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }
}
