//! Dense row-major `f32` matrices and the handful of BLAS-like kernels the
//! training loop needs.
//!
//! # Kernel strategy: blocked ikj order, row-parallel
//!
//! The GEMM family ([`Matrix::matmul`], [`Matrix::matmul_into`],
//! [`Matrix::matmul_t`], [`Matrix::t_matmul`]) shares one design:
//!
//! * **ikj loop order** — the innermost loop is a contiguous saxpy over an
//!   output row, which auto-vectorises well; slices are hoisted out of
//!   loops to elide bounds checks, and hot-loop buffers are reused via
//!   `&mut` outputs.
//! * **Cache blocking over k** (panel size `KC`) — each pass streams a
//!   `KC × n` panel of the right-hand operand while sweeping the rows of a
//!   thread's output chunk, so the panel stays resident in L1/L2 instead
//!   of being evicted once per output row.
//! * **Row parallelism** — when the ambient degree of parallelism (see
//!   [`crate::par`]) and the problem size warrant it, the *output rows*
//!   are split into contiguous chunks ([`par::par_row_chunks`]), one
//!   scoped worker per chunk. Problems under `par::degree_for`'s work
//!   floor run serially, so tiny matrices never pay a thread spawn.
//!
//! # Serial-equivalence guarantee
//!
//! Parallelism only partitions output rows; each output element is
//! produced by exactly one thread using the same k-ascending (respectively
//! r-ascending) accumulation order as the serial kernel. Results are
//! therefore **bit-identical** at every thread count, which is what lets
//! the HPO layer treat the degree of parallelism as a pure performance
//! knob that cannot perturb a trial's accuracy.

use crate::par;

/// k-panel size of the blocked GEMM: the `KC × n` slab of the right-hand
/// matrix revisited per output-row sweep (64 KiB at n = 64 — comfortably
/// L2-resident, several rows' worth of L1 reuse).
const KC: usize = 256;

/// The blocked ikj GEMM body for one contiguous chunk of output rows:
/// `out[rows] += a[rows] × b`, where `out` is the chunk itself (its row 0
/// is `rows.start` of the full product). Accumulates in k-ascending order
/// per element regardless of blocking, preserving serial equivalence.
fn gemm_rows(
    a: &[f32],
    b: &[f32],
    k_dim: usize,
    n: usize,
    rows: std::ops::Range<usize>,
    out: &mut [f32],
) {
    for kb in (0..k_dim).step_by(KC) {
        let kend = (kb + KC).min(k_dim);
        for (ri, i) in rows.clone().enumerate() {
            let a_row = &a[i * k_dim + kb..i * k_dim + kend];
            let out_row = &mut out[ri * n..(ri + 1) * n];
            for (dk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[(kb + dk) * n..(kb + dk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Flat immutable view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Select the listed rows into a new matrix (mini-batch gather).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (o, &r) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(r));
        }
        out
    }

    /// `self × other`, allocating the output.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self × other` reusing `out`'s buffer — the blocked, optionally
    /// row-parallel GEMM (see the module docs for the strategy).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        assert_eq!(out.rows, self.rows, "output rows");
        assert_eq!(out.cols, other.cols, "output cols");
        out.data.fill(0.0);
        let (k_dim, n) = (self.cols, other.cols);
        if self.rows == 0 || n == 0 || k_dim == 0 {
            return;
        }
        let threads = par::degree_for(self.rows * k_dim * n);
        let (a, b) = (&self.data, &other.data);
        par::par_row_chunks(&mut out.data, n, threads, |rows, chunk| {
            gemm_rows(a, b, k_dim, n, rows, chunk);
        });
    }

    /// `selfᵀ × other` without materialising the transpose. Output rows
    /// (= `self` columns) are split across workers; each worker sweeps the
    /// shared operands top-to-bottom, accumulating its own rows only.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must agree for AᵀB");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        if self.rows == 0 || self.cols == 0 || n == 0 {
            return out;
        }
        let threads = par::degree_for(self.rows * self.cols * n);
        par::par_row_chunks(&mut out.data, n, threads, |irange, chunk| {
            for r in 0..self.rows {
                let a_row = self.row(r);
                let b_row = other.row(r);
                for (ri, i) in irange.clone().enumerate() {
                    let a = a_row[i];
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut chunk[ri * n..(ri + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// `self × otherᵀ` without materialising the transpose: a row-parallel
    /// panel of dot products (each output element is one `self` row ·
    /// one `other` row).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "col counts must agree for ABᵀ");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let n = other.rows;
        if self.rows == 0 || n == 0 {
            return out;
        }
        let threads = par::degree_for(self.rows * self.cols.max(1) * n);
        par::par_row_chunks(&mut out.data, n, threads, |rows, chunk| {
            for (ri, i) in rows.clone().enumerate() {
                let a_row = self.row(i);
                let out_row = &mut chunk[ri * n..(ri + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = other.row(j);
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// Add `bias` (len = cols) to every row in place.
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column-wise sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f32) {
        self.map_inplace(|v| v * s);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);

        let f = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_products_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + 2 * c) as f32);
        let b = Matrix::from_fn(3, 2, |r, c| (2 * r + c) as f32);
        // AᵀB via t_matmul vs manual transpose
        let at = Matrix::from_fn(4, 3, |r, c| a.get(c, r));
        assert_eq!(a.t_matmul(&b), at.matmul(&b));

        let d = Matrix::from_fn(5, 4, |r, c| (r * c) as f32);
        let dt = Matrix::from_fn(4, 5, |r, c| d.get(c, r));
        assert_eq!(a.matmul_t(&d), a.matmul(&dt));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn gather_rows_picks_batch() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let g = m.gather_rows(&[3, 1]);
        assert_eq!(g.as_slice(), &[3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn bias_and_colsums_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_vector(&[1.0, -2.0]);
        assert_eq!(m.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn map_scale_norm() {
        let mut m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(m.norm(), 5.0);
        m.scale(2.0);
        assert_eq!(m.as_slice(), &[6.0, 8.0]);
        m.map_inplace(|v| v.max(7.0));
        assert_eq!(m.as_slice(), &[7.0, 8.0]);
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(2, 2, |r, c| (r * c) as f32);
        let mut out = Matrix::from_vec(2, 2, vec![99.0; 4]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b), "stale buffer contents must be cleared");
    }

    /// Naive f64 triple loop, the independent reference for the blocked
    /// kernel (different summation order, hence the tolerance).
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|k| a.get(i, k) as f64 * b.get(k, j) as f64).sum::<f64>() as f32
        })
    }

    #[test]
    fn blocked_gemm_matches_naive_reference_across_k_panels() {
        // k = 700 spans multiple KC-panels; n and m exercise odd sizes.
        let a = Matrix::from_fn(5, 700, |r, c| ((r * 700 + c) as f32 * 0.37).sin());
        let b = Matrix::from_fn(700, 13, |r, c| ((r + 13 * c) as f32 * 0.21).cos());
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() <= 1e-3 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn parallel_kernels_are_bit_identical_to_serial() {
        // Big enough to clear par::degree_for's work floor, so threads > 1
        // genuinely take the scoped-worker path.
        let a = Matrix::from_fn(96, 300, |r, c| ((r * 300 + c) as f32 * 0.13).sin());
        let b = Matrix::from_fn(300, 96, |r, c| ((r + 300 * c) as f32 * 0.29).cos());
        let bt = Matrix::from_fn(96, 300, |r, c| b.get(c, r));
        let serial = crate::par::with_threads(1, || {
            (a.matmul(&b), a.matmul_t(&bt), a.t_matmul(&a.matmul(&b)))
        });
        for threads in [2usize, 3, 8] {
            let par = crate::par::with_threads(threads, || {
                (a.matmul(&b), a.matmul_t(&bt), a.t_matmul(&a.matmul(&b)))
            });
            assert_eq!(par.0, serial.0, "matmul, {threads} threads");
            assert_eq!(par.1, serial.1, "matmul_t, {threads} threads");
            assert_eq!(par.2, serial.2, "t_matmul, {threads} threads");
        }
    }

    #[test]
    fn degenerate_shapes_survive_every_thread_count() {
        for threads in [1usize, 2, 5] {
            crate::par::with_threads(threads, || {
                // 1×N, N×1, k=1 and empty-ish extremes.
                let row = Matrix::from_fn(1, 7, |_, c| c as f32);
                let col = Matrix::from_fn(7, 1, |r, _| r as f32);
                assert_eq!(row.matmul(&col).as_slice(), &[91.0]);
                let outer = col.matmul(&row);
                assert_eq!((outer.rows(), outer.cols()), (7, 7));
                assert_eq!(outer.get(3, 2), 6.0);
                assert_eq!(row.matmul_t(&row).as_slice(), &[91.0]);
                let gram = col.t_matmul(&col);
                assert_eq!(gram.as_slice(), &[91.0]);
                let empty = Matrix::zeros(0, 4).matmul(&Matrix::zeros(4, 3));
                assert_eq!((empty.rows(), empty.cols()), (0, 3));
            });
        }
    }
}
