//! Dense row-major `f32` matrices and the handful of BLAS-like kernels the
//! training loop needs.
//!
//! Performance notes (per the repo's HPC guides): the GEMM uses an
//! i-k-j loop order so the innermost loop is a contiguous saxpy over the
//! output row (auto-vectorises well), slices are hoisted out of loops to
//! elide bounds checks, and all buffers are reused through `&mut` outputs
//! where the training loop is hot.

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Flat immutable view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Select the listed rows into a new matrix (mini-batch gather).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (o, &r) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(r));
        }
        out
    }

    /// `self × other`, allocating the output.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self × other` reusing `out`'s buffer.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        assert_eq!(out.rows, self.rows, "output rows");
        assert_eq!(out.cols, other.cols, "output cols");
        out.data.fill(0.0);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `selfᵀ × other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must agree for AᵀB");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "col counts must agree for ABᵀ");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Add `bias` (len = cols) to every row in place.
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column-wise sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f32) {
        self.map_inplace(|v| v * s);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);

        let f = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_products_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + 2 * c) as f32);
        let b = Matrix::from_fn(3, 2, |r, c| (2 * r + c) as f32);
        // AᵀB via t_matmul vs manual transpose
        let at = Matrix::from_fn(4, 3, |r, c| a.get(c, r));
        assert_eq!(a.t_matmul(&b), at.matmul(&b));

        let d = Matrix::from_fn(5, 4, |r, c| (r * c) as f32);
        let dt = Matrix::from_fn(4, 5, |r, c| d.get(c, r));
        assert_eq!(a.matmul_t(&d), a.matmul(&dt));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn gather_rows_picks_batch() {
        let m = Matrix::from_fn(4, 2, |r, _| r as f32);
        let g = m.gather_rows(&[3, 1]);
        assert_eq!(g.as_slice(), &[3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn bias_and_colsums_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_vector(&[1.0, -2.0]);
        assert_eq!(m.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn map_scale_norm() {
        let mut m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(m.norm(), 5.0);
        m.scale(2.0);
        assert_eq!(m.as_slice(), &[6.0, 8.0]);
        m.map_inplace(|v| v.max(7.0));
        assert_eq!(m.as_slice(), &[7.0, 8.0]);
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(2, 2, |r, c| (r * c) as f32);
        let mut out = Matrix::from_vec(2, 2, vec![99.0; 4]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b), "stale buffer contents must be cleared");
    }
}
