//! The training loop — the body of the paper's `experiment(config)` task.
//!
//! `train` runs mini-batch gradient descent for the configured number of
//! epochs, recording per-epoch training loss and validation accuracy (the
//! curves plotted in the paper's Figures 7 and 8), and supports an epoch
//! callback so the HPO layer can implement early stopping ("the process can
//! be stopped as soon as one task achieves a specified accuracy").
//!
//! Training runs under a [`crate::par::with_threads`] scope sized by
//! [`TrainConfig::threads`], so a task the scheduler constrained to N
//! cores really trains on N worker threads — the substrate behind the
//! paper's Figure 5/9 multi-core-per-task experiments. Thread count is a
//! pure speed knob: results are bit-identical at any degree.

use crate::cnn::Cnn;
use crate::data::Dataset;
use crate::metrics::evaluate;
use crate::net::{Mlp, Model};
use crate::optim::{Optimizer, OptimizerKind};
use crate::snapshot::TrainSnapshot;

/// Which model family to train — the paper's experiments are CNNs; dense
/// nets are the fast default for large sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelArch {
    /// Multi-layer perceptron over [`TrainConfig::hidden_layers`].
    Dense,
    /// Two-block CNN (see [`crate::cnn::Cnn`]); the dataset rows must be
    /// square images (1 or 3 channels).
    Cnn {
        /// Channels of the first conv block.
        conv1_channels: usize,
        /// Channels of the second conv block.
        conv2_channels: usize,
    },
}

/// Learning-rate schedule applied between epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant,
    /// Multiply the rate by `factor` every `every_epochs` epochs.
    StepDecay {
        /// Epochs between decays (≥ 1).
        every_epochs: u32,
        /// Multiplicative factor in `(0, 1]`.
        factor: f32,
    },
    /// Cosine annealing from the base rate down to `min_frac × base`.
    Cosine {
        /// Final rate as a fraction of the base rate, in `(0, 1]`.
        min_frac: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based) of `total` epochs.
    pub fn lr_at(&self, base: f32, epoch: u32, total: u32) -> f32 {
        match self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every_epochs, factor } => {
                let steps = epoch / (*every_epochs).max(1);
                base * factor.powi(steps as i32)
            }
            LrSchedule::Cosine { min_frac } => {
                let lo = base * min_frac;
                if total <= 1 {
                    return base;
                }
                let t = epoch as f32 / (total - 1) as f32;
                lo + 0.5 * (base - lo) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// Hyperparameters of one training — the paper's `config`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs (paper axis: 20 / 50 / 100).
    pub epochs: u32,
    /// Mini-batch size (paper axis: 32 / 64 / 128).
    pub batch_size: usize,
    /// Optimiser (paper axis: Adam / SGD / RMSprop).
    pub optimizer: OptimizerKind,
    /// Learning rate; `0.0` means "use the optimiser's default".
    pub learning_rate: f32,
    /// Learning-rate schedule across epochs.
    pub lr_schedule: LrSchedule,
    /// Model family.
    pub arch: ModelArch,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Hidden layer widths.
    pub hidden_layers: Vec<usize>,
    /// Validation fraction carved out of the dataset.
    pub val_fraction: f64,
    /// RNG seed (weights + shuffling).
    pub seed: u64,
    /// Intra-task worker threads for the compute kernels (GEMM, im2col
    /// convolution). `0` (the default) inherits the ambient degree — the
    /// enclosing [`crate::par::with_threads`] scope that the HPO runner
    /// opens from the task's granted core set, or the `TINYML_THREADS`
    /// environment variable for standalone use. Any thread count produces
    /// bit-identical results (see [`crate::par`]); this knob only changes
    /// speed, never the trained model.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 64,
            optimizer: OptimizerKind::Adam,
            learning_rate: 0.0,
            lr_schedule: LrSchedule::Constant,
            arch: ModelArch::Dense,
            weight_decay: 0.0,
            hidden_layers: vec![64],
            val_fraction: 0.2,
            seed: 42,
            threads: 0,
        }
    }
}

impl TrainConfig {
    /// The learning rate actually used.
    pub fn effective_lr(&self) -> f32 {
        if self.learning_rate > 0.0 {
            self.learning_rate
        } else {
            self.optimizer.default_lr()
        }
    }

    /// One-line description, used as plot legend ("Adam/e50/b64").
    pub fn label(&self) -> String {
        format!("{}/e{}/b{}", self.optimizer, self.epochs, self.batch_size)
    }
}

/// Per-epoch training history, the "training history" the paper's tasks
/// return alongside the final metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f64>,
    /// Validation accuracy per epoch.
    pub val_accuracy: Vec<f64>,
}

impl History {
    /// Last recorded validation accuracy (0.0 before the first epoch).
    pub fn final_val_accuracy(&self) -> f64 {
        self.val_accuracy.last().copied().unwrap_or(0.0)
    }

    /// Best validation accuracy over all epochs.
    pub fn best_val_accuracy(&self) -> f64 {
        self.val_accuracy.iter().copied().fold(0.0, f64::max)
    }

    /// Number of completed epochs.
    pub fn epochs_run(&self) -> usize {
        self.val_accuracy.len()
    }
}

/// Signal returned by the per-epoch callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochSignal {
    /// Keep training.
    Continue,
    /// Stop now (early stopping).
    Stop,
}

/// Checkpoint control for one training run (see [`train_with_checkpoints`]).
///
/// The default is inert: no resume, never save.
#[derive(Default)]
pub struct Checkpointing<'a> {
    /// Save a snapshot after every `every` completed epochs; `0` disables
    /// saving.
    pub every: u32,
    /// Resume from this snapshot instead of initialising fresh weights.
    /// The snapshot's own seed drives the dataset split and per-epoch
    /// minibatch shuffle — **not** [`TrainConfig::seed`] — so a resumed
    /// trial replays the exact batch stream of the original run even if
    /// the resuming process derived a different ambient seed.
    pub resume: Option<TrainSnapshot>,
    /// Receives each saved snapshot. The `ckpt` crate's `DirStore` (or
    /// the distributed backend's driver channel) sits behind this.
    pub sink: Option<&'a mut dyn FnMut(&TrainSnapshot)>,
}

/// Train with a per-epoch observer. The observer receives
/// `(epoch_index, train_loss, val_accuracy)` after every epoch and may stop
/// training early.
pub fn train_with_observer(
    cfg: &TrainConfig,
    data: &Dataset,
    mut observer: impl FnMut(u32, f64, f64) -> EpochSignal,
) -> History {
    train_with_checkpoints(cfg, data, Checkpointing::default(), &mut observer)
}

/// Train with checkpointing: optionally resume from a snapshot, and emit a
/// snapshot to `ckpt.sink` every `ckpt.every` epochs. With an inert
/// [`Checkpointing`] this is exactly [`train_with_observer`]; a resumed
/// run produces a [`History`] (and final weights) bit-identical to the
/// uninterrupted run's, because the snapshot carries the weights, the
/// optimiser momenta and step clock, and the original RNG seed.
///
/// The observer sees only the epochs actually executed here (absolute
/// epoch indices); replaying pre-snapshot history into early-stop logic is
/// the caller's choice.
pub fn train_with_checkpoints(
    cfg: &TrainConfig,
    data: &Dataset,
    mut ckpt: Checkpointing<'_>,
    observer: &mut impl FnMut(u32, f64, f64) -> EpochSignal,
) -> History {
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    // Every kernel below (forward/backward GEMMs, im2col convolutions,
    // validation inference) runs under this scope; `threads == 0` keeps
    // the degree the runtime already installed from the task's core grant.
    crate::par::with_threads(cfg.threads, move || {
        train_inner(cfg, data, &mut ckpt, cfg.epochs, None, observer)
    })
}

/// Train one *stage segment*: run epochs `[resume.next_epoch, until)` (or
/// `[0, until)` from scratch) and return the complete training state at
/// exactly `until` — weights, optimiser state, seed, accumulated history —
/// as a fork point other runs can resume from via [`Checkpointing::resume`].
///
/// Unlike [`train_with_checkpoints`], which suppresses the final-epoch
/// snapshot (a finished trial's outcome supersedes it), a segment's whole
/// purpose *is* the state at its end, so the fork snapshot is always
/// produced — even when `until == cfg.epochs`. `ckpt.resume` supplies the
/// parent fork (or a mid-segment recovery snapshot); `ckpt.every` /
/// `ckpt.sink` checkpoint *within* the segment on the usual cadence.
///
/// Because training is deterministic and a snapshot carries seed, weights,
/// optimiser moments and history, chaining segments is bit-identical to
/// one uninterrupted run over the same epochs.
///
/// # Panics
/// Panics if `until > cfg.epochs`.
pub fn train_segment(
    cfg: &TrainConfig,
    data: &Dataset,
    mut ckpt: Checkpointing<'_>,
    until: u32,
) -> TrainSnapshot {
    assert!(until <= cfg.epochs, "segment end {until} past cfg.epochs {}", cfg.epochs);
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    crate::par::with_threads(cfg.threads, move || {
        let mut fork = None;
        let _ = train_inner(cfg, data, &mut ckpt, until, Some(&mut fork), &mut |_, _, _| {
            EpochSignal::Continue
        });
        fork.expect("segment always produces its fork snapshot")
    })
}

fn train_inner(
    cfg: &TrainConfig,
    data: &Dataset,
    ckpt: &mut Checkpointing<'_>,
    stop_epoch: u32,
    fork: Option<&mut Option<TrainSnapshot>>,
    observer: &mut impl FnMut(u32, f64, f64) -> EpochSignal,
) -> History {
    // The seed governing the split and every epoch's shuffle: on resume it
    // travels with the snapshot (re-deriving it here would silently change
    // the minibatch stream of a retried trial).
    let seed = ckpt.resume.as_ref().map_or(cfg.seed, |s| s.seed);
    let (train_set, val_set) = data.split(cfg.val_fraction, seed);
    let mut net: Box<dyn Model> = match cfg.arch {
        ModelArch::Dense => {
            Box::new(Mlp::new(data.dim(), &cfg.hidden_layers, data.n_classes, seed))
        }
        ModelArch::Cnn { conv1_channels, conv2_channels } => {
            let shape = Cnn::infer_shape(data.dim()).unwrap_or_else(|| {
                panic!("CNN needs square 1/3-channel images; dim {} is neither", data.dim())
            });
            Box::new(Cnn::new(shape, data.n_classes, conv1_channels, conv2_channels, seed))
        }
    };
    let base_lr = cfg.effective_lr();
    let mut opt = Optimizer::new(cfg.optimizer, base_lr).with_weight_decay(cfg.weight_decay);

    let mut start_epoch = 0u32;
    let mut resumed_history = History::default();
    if let Some(snap) = ckpt.resume.take() {
        assert!(
            net.restore_params(&snap.params),
            "snapshot does not match the model architecture \
             (params {} vs model {} tensors)",
            snap.params.len(),
            net.params().len(),
        );
        opt = Optimizer::from_state(&snap.opt, base_lr);
        start_epoch = snap.next_epoch.min(stop_epoch);
        resumed_history = snap.history;
    }

    // Process-global observability: handles fetched once per training run,
    // and only when the registry is switched on (one relaxed load here).
    let epoch_metrics = {
        let reg = runmetrics::global();
        reg.enabled()
            .then(|| (reg.histogram("tinyml_epoch_us"), reg.gauge("tinyml_samples_per_sec")))
    };

    let mut history = resumed_history;
    for epoch in start_epoch..stop_epoch {
        opt.set_lr(cfg.lr_schedule.lr_at(base_lr, epoch, cfg.epochs).max(1e-8));
        let epoch_started = epoch_metrics.as_ref().map(|_| std::time::Instant::now());
        let mut loss_sum = 0.0f64;
        let batches = train_set.batches(cfg.batch_size, seed, epoch);
        let n_batches = batches.len().max(1);
        for batch in batches {
            let x = train_set.x.gather_rows(&batch);
            let y: Vec<usize> = batch.iter().map(|&i| train_set.y[i]).collect();
            loss_sum += net.train_batch(&mut opt, &x, &y) as f64;
        }
        let train_loss = loss_sum / n_batches as f64;
        let val_acc = evaluate(net.as_ref(), &val_set);
        if let (Some((epoch_us, samples_per_sec)), Some(t0)) = (&epoch_metrics, epoch_started) {
            let us = t0.elapsed().as_micros() as u64;
            epoch_us.record(us);
            if us > 0 {
                samples_per_sec.set(train_set.len() as f64 / (us as f64 / 1e6));
            }
        }
        history.train_loss.push(train_loss);
        history.val_accuracy.push(val_acc);
        let stop = observer(epoch, train_loss, val_acc) == EpochSignal::Stop;
        // Snapshot on the configured cadence (and not after the final
        // epoch — a finished trial's outcome supersedes its snapshots).
        if ckpt.every > 0
            && (epoch + 1).is_multiple_of(ckpt.every)
            && !stop
            && epoch + 1 < stop_epoch
        {
            if let Some(sink) = ckpt.sink.as_mut() {
                sink(&TrainSnapshot {
                    seed,
                    epochs_total: cfg.epochs,
                    next_epoch: epoch + 1,
                    params: net.params(),
                    opt: opt.state(),
                    history: history.clone(),
                });
            }
        }
        if stop {
            break;
        }
    }
    if let Some(out) = fork {
        *out = Some(TrainSnapshot {
            seed,
            epochs_total: cfg.epochs,
            // history length is the absolute epoch count (resumed epochs
            // plus the ones run here), so this stays correct even if an
            // observer stopped the loop before `stop_epoch`.
            next_epoch: history.epochs_run() as u32,
            params: net.params(),
            opt: opt.state(),
            history: history.clone(),
        });
    }
    history
}

/// Train to completion without an observer.
pub fn train(cfg: &TrainConfig, data: &Dataset) -> History {
    train_with_observer(cfg, data, |_, _, _| EpochSignal::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(optimizer: OptimizerKind) -> TrainConfig {
        TrainConfig {
            epochs: 5,
            batch_size: 32,
            optimizer,
            hidden_layers: vec![32],
            seed: 1,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn mnist_like_reaches_high_accuracy_fast() {
        // The property Figure 7 rests on: MNIST-like generalises quickly.
        let data = Dataset::synthetic_mnist(1500, 7);
        let h = train(&quick_cfg(OptimizerKind::Adam), &data);
        assert!(h.final_val_accuracy() > 0.85, "got {}", h.final_val_accuracy());
        assert_eq!(h.epochs_run(), 5);
    }

    #[test]
    fn all_three_paper_optimizers_learn() {
        let data = Dataset::synthetic_mnist(800, 3);
        for kind in OptimizerKind::ALL {
            let h = train(&quick_cfg(kind), &data);
            assert!(h.final_val_accuracy() > 0.5, "{kind} stuck at {}", h.final_val_accuracy());
        }
    }

    #[test]
    fn epoch_metrics_flow_into_global_registry() {
        // Counters in the global registry are monotonic and shared across
        // this test binary, so assert deltas rather than absolutes.
        let reg = runmetrics::global();
        let before = reg.snapshot().histogram("tinyml_epoch_us").map(|h| h.count).unwrap_or(0);
        reg.set_enabled(true);
        let data = Dataset::synthetic_mnist(200, 11);
        let h = train(&TrainConfig { epochs: 3, ..quick_cfg(OptimizerKind::Sgd) }, &data);
        reg.set_enabled(false);
        assert_eq!(h.epochs_run(), 3);
        let snap = reg.snapshot();
        let epochs = snap.histogram("tinyml_epoch_us").expect("epoch series").count;
        assert!(epochs >= before + 3, "expected ≥3 new epoch samples, got {epochs}-{before}");
        assert!(snap.gauge("tinyml_samples_per_sec").expect("throughput gauge") > 0.0);
    }

    #[test]
    fn loss_trends_downward() {
        let data = Dataset::synthetic_mnist(600, 5);
        let h = train(&quick_cfg(OptimizerKind::Adam), &data);
        let first = h.train_loss.first().copied().unwrap();
        let last = h.train_loss.last().copied().unwrap();
        assert!(last < first, "loss should fall: {first} → {last}");
    }

    #[test]
    fn thread_count_never_changes_the_model() {
        // The serial-equivalence guarantee, end to end: the whole training
        // history (losses and accuracies) is identical at any degree.
        let data = Dataset::synthetic_mnist(400, 8);
        let serial = train(&TrainConfig { threads: 1, ..quick_cfg(OptimizerKind::Adam) }, &data);
        for threads in [2usize, 4] {
            let par = train(&TrainConfig { threads, ..quick_cfg(OptimizerKind::Adam) }, &data);
            assert_eq!(par, serial, "{threads} threads");
        }
        // CNN path too (exercises the batched im2col lowering).
        let spatial = Dataset::synthetic(
            "mnist-spatial",
            120,
            &crate::data::SyntheticSpec::mnist_like_spatial(),
            4,
        );
        let cnn_cfg = TrainConfig {
            epochs: 1,
            arch: ModelArch::Cnn { conv1_channels: 3, conv2_channels: 4 },
            ..quick_cfg(OptimizerKind::Sgd)
        };
        let cnn_serial = train(&TrainConfig { threads: 1, ..cnn_cfg.clone() }, &spatial);
        let cnn_par = train(&TrainConfig { threads: 4, ..cnn_cfg }, &spatial);
        assert_eq!(cnn_par, cnn_serial);
    }

    #[test]
    fn training_is_deterministic() {
        let data = Dataset::synthetic_mnist(400, 9);
        let a = train(&quick_cfg(OptimizerKind::RmsProp), &data);
        let b = train(&quick_cfg(OptimizerKind::RmsProp), &data);
        assert_eq!(a, b);
    }

    #[test]
    fn observer_can_stop_early() {
        let data = Dataset::synthetic_mnist(400, 2);
        let mut calls = 0;
        let h = train_with_observer(&quick_cfg(OptimizerKind::Adam), &data, |_, _, _| {
            calls += 1;
            if calls == 2 {
                EpochSignal::Stop
            } else {
                EpochSignal::Continue
            }
        });
        assert_eq!(h.epochs_run(), 2);
        assert_eq!(calls, 2);
    }

    #[test]
    fn cifar_like_is_harder_than_mnist_like() {
        // The property Figure 8 rests on: same budget, lower accuracy.
        let mnist = Dataset::synthetic_mnist(900, 4);
        let cfg = quick_cfg(OptimizerKind::Adam);
        let hm = train(&cfg, &mnist);
        let cifar = Dataset::synthetic_cifar10(900, 4);
        let hc = train(&cfg, &cifar);
        assert!(
            hc.final_val_accuracy() < hm.final_val_accuracy(),
            "cifar {} !< mnist {}",
            hc.final_val_accuracy(),
            hm.final_val_accuracy()
        );
    }

    #[test]
    fn history_helpers() {
        let h = History { train_loss: vec![1.0, 0.5], val_accuracy: vec![0.3, 0.8] };
        assert_eq!(h.final_val_accuracy(), 0.8);
        assert_eq!(h.best_val_accuracy(), 0.8);
        assert_eq!(h.epochs_run(), 2);
        assert_eq!(History::default().final_val_accuracy(), 0.0);
    }

    #[test]
    fn config_label_and_lr() {
        let cfg = quick_cfg(OptimizerKind::Sgd);
        assert_eq!(cfg.label(), "SGD/e5/b32");
        assert_eq!(cfg.effective_lr(), 0.01);
        let explicit = TrainConfig { learning_rate: 0.5, ..cfg };
        assert_eq!(explicit.effective_lr(), 0.5);
    }

    #[test]
    fn lr_schedules_produce_expected_rates() {
        let s = LrSchedule::Constant;
        assert_eq!(s.lr_at(0.1, 0, 10), 0.1);
        assert_eq!(s.lr_at(0.1, 9, 10), 0.1);

        let d = LrSchedule::StepDecay { every_epochs: 3, factor: 0.5 };
        assert_eq!(d.lr_at(0.8, 0, 10), 0.8);
        assert_eq!(d.lr_at(0.8, 2, 10), 0.8);
        assert_eq!(d.lr_at(0.8, 3, 10), 0.4);
        assert_eq!(d.lr_at(0.8, 6, 10), 0.2);

        let c = LrSchedule::Cosine { min_frac: 0.1 };
        assert!((c.lr_at(1.0, 0, 11) - 1.0).abs() < 1e-6, "starts at base");
        assert!((c.lr_at(1.0, 10, 11) - 0.1).abs() < 1e-6, "ends at min");
        let mid = c.lr_at(1.0, 5, 11);
        assert!(mid > 0.1 && mid < 1.0);
        assert_eq!(c.lr_at(1.0, 0, 1), 1.0, "single-epoch training keeps base");
    }

    #[test]
    fn scheduled_training_still_learns() {
        let data = Dataset::synthetic_mnist(800, 6);
        let cfg = TrainConfig {
            lr_schedule: LrSchedule::StepDecay { every_epochs: 2, factor: 0.5 },
            weight_decay: 1e-4,
            ..quick_cfg(OptimizerKind::Adam)
        };
        let h = train(&cfg, &data);
        assert!(h.final_val_accuracy() > 0.6, "got {}", h.final_val_accuracy());
        // deterministic as well
        assert_eq!(train(&cfg, &data), h);
    }

    #[test]
    fn weight_decay_changes_the_trajectory() {
        let data = Dataset::synthetic_mnist(400, 6);
        let plain = train(&quick_cfg(OptimizerKind::Adam), &data);
        let decayed =
            train(&TrainConfig { weight_decay: 0.05, ..quick_cfg(OptimizerKind::Adam) }, &data);
        assert_ne!(plain, decayed);
    }

    /// Capture the snapshot emitted after `every` epochs of a run.
    fn snapshot_at(cfg: &TrainConfig, data: &Dataset, every: u32) -> crate::TrainSnapshot {
        let mut captured = None;
        let mut sink = |s: &crate::TrainSnapshot| {
            if captured.is_none() {
                captured = Some(s.clone());
            }
        };
        let _ = train_with_checkpoints(
            cfg,
            data,
            Checkpointing { every, resume: None, sink: Some(&mut sink) },
            &mut |_, _, _| EpochSignal::Continue,
        );
        captured.expect("no snapshot emitted")
    }

    #[test]
    fn resumed_run_is_bit_identical_to_uninterrupted() {
        let data = Dataset::synthetic_mnist(400, 5);
        for kind in OptimizerKind::ALL {
            let cfg = TrainConfig {
                lr_schedule: LrSchedule::StepDecay { every_epochs: 2, factor: 0.5 },
                weight_decay: 1e-4,
                ..quick_cfg(kind)
            };
            let uninterrupted = train(&cfg, &data);
            let snap = snapshot_at(&cfg, &data, 2);
            assert_eq!(snap.next_epoch, 2);
            assert_eq!(snap.history.epochs_run(), 2);
            let resumed = train_with_checkpoints(
                &cfg,
                &data,
                Checkpointing { every: 0, resume: Some(snap), sink: None },
                &mut |_, _, _| EpochSignal::Continue,
            );
            assert_eq!(resumed, uninterrupted, "{kind} resumed run diverged");
        }
    }

    #[test]
    fn snapshot_survives_its_wire_encoding() {
        // The full path a distributed retry takes: snapshot → bytes →
        // snapshot → resume. Must still be bit-identical.
        let data = Dataset::synthetic_mnist(300, 8);
        let cfg = quick_cfg(OptimizerKind::Adam);
        let uninterrupted = train(&cfg, &data);
        let snap = snapshot_at(&cfg, &data, 3);
        let snap = crate::TrainSnapshot::decode(&snap.encode()).expect("decodes");
        let resumed = train_with_checkpoints(
            &cfg,
            &data,
            Checkpointing { every: 0, resume: Some(snap), sink: None },
            &mut |_, _, _| EpochSignal::Continue,
        );
        assert_eq!(resumed, uninterrupted);
    }

    #[test]
    fn resume_uses_the_snapshot_seed_not_the_ambient_one() {
        // The RNG bugfix: a resuming process that derived a different seed
        // must still replay the original run's split and shuffle stream.
        let data = Dataset::synthetic_mnist(400, 5);
        let cfg = quick_cfg(OptimizerKind::Sgd);
        let uninterrupted = train(&cfg, &data);
        let snap = snapshot_at(&cfg, &data, 2);
        let wrong_seed_cfg = TrainConfig { seed: cfg.seed ^ 0x5555, ..cfg };
        let resumed = train_with_checkpoints(
            &wrong_seed_cfg,
            &data,
            Checkpointing { every: 0, resume: Some(snap), sink: None },
            &mut |_, _, _| EpochSignal::Continue,
        );
        assert_eq!(resumed, uninterrupted, "snapshot seed must override cfg.seed");
    }

    #[test]
    fn cnn_resume_is_bit_identical_too() {
        let data = Dataset::synthetic(
            "mnist-spatial",
            120,
            &crate::data::SyntheticSpec::mnist_like_spatial(),
            4,
        );
        let cfg = TrainConfig {
            epochs: 3,
            arch: ModelArch::Cnn { conv1_channels: 3, conv2_channels: 4 },
            ..quick_cfg(OptimizerKind::Adam)
        };
        let uninterrupted = train(&cfg, &data);
        let snap = snapshot_at(&cfg, &data, 1);
        let snap = crate::TrainSnapshot::decode(&snap.encode()).unwrap();
        let resumed = train_with_checkpoints(
            &cfg,
            &data,
            Checkpointing { every: 0, resume: Some(snap), sink: None },
            &mut |_, _, _| EpochSignal::Continue,
        );
        assert_eq!(resumed, uninterrupted);
    }

    #[test]
    fn snapshot_cadence_and_final_epoch_suppression() {
        let data = Dataset::synthetic_mnist(200, 3);
        let cfg = quick_cfg(OptimizerKind::Sgd); // 5 epochs
        let mut epochs_seen = Vec::new();
        let mut sink = |s: &crate::TrainSnapshot| epochs_seen.push(s.next_epoch);
        let _ = train_with_checkpoints(
            &cfg,
            &data,
            Checkpointing { every: 2, resume: None, sink: Some(&mut sink) },
            &mut |_, _, _| EpochSignal::Continue,
        );
        // every=2 over 5 epochs: snapshots after epochs 2 and 4; nothing at
        // 5 (the run is finished — the outcome supersedes snapshots).
        assert_eq!(epochs_seen, vec![2, 4]);
    }

    #[test]
    #[should_panic(expected = "architecture")]
    fn mismatched_snapshot_architecture_panics() {
        let data = Dataset::synthetic_mnist(200, 3);
        let cfg = quick_cfg(OptimizerKind::Sgd);
        let snap = snapshot_at(&cfg, &data, 2);
        let other = TrainConfig { hidden_layers: vec![8], ..cfg };
        let _ = train_with_checkpoints(
            &other,
            &data,
            Checkpointing { every: 0, resume: Some(snap), sink: None },
            &mut |_, _, _| EpochSignal::Continue,
        );
    }

    #[test]
    fn segment_chain_is_bit_identical_to_uninterrupted() {
        // The stage-tree contract: [0,2) then [2,5) equals one [0,5) run.
        let data = Dataset::synthetic_mnist(400, 5);
        for kind in OptimizerKind::ALL {
            let cfg = TrainConfig {
                lr_schedule: LrSchedule::StepDecay { every_epochs: 2, factor: 0.5 },
                ..quick_cfg(kind)
            };
            let uninterrupted = train(&cfg, &data);
            let fork = train_segment(&cfg, &data, Checkpointing::default(), 2);
            assert_eq!(fork.next_epoch, 2);
            assert_eq!(fork.history.epochs_run(), 2);
            let done = train_segment(
                &cfg,
                &data,
                Checkpointing { every: 0, resume: Some(fork), sink: None },
                cfg.epochs,
            );
            assert_eq!(done.history, uninterrupted, "{kind} segment chain diverged");
            assert_eq!(done.next_epoch, cfg.epochs);
        }
    }

    #[test]
    fn shared_prefix_fork_matches_separate_runs() {
        // Two configs that differ only in total epochs share [0,3): train
        // that prefix once under the longer config, fork, and both the
        // short trial's outcome and the long trial's continuation must be
        // bit-identical to their standalone runs.
        let data = Dataset::synthetic_mnist(400, 6);
        let short = TrainConfig { epochs: 3, ..quick_cfg(OptimizerKind::Adam) };
        let long = TrainConfig { epochs: 6, ..quick_cfg(OptimizerKind::Adam) };
        let fork = train_segment(&long, &data, Checkpointing::default(), 3);
        assert_eq!(fork.history, train(&short, &data), "short trial reads the fork");
        let cont = train_segment(
            &long,
            &data,
            Checkpointing { every: 0, resume: Some(fork), sink: None },
            6,
        );
        assert_eq!(cont.history, train(&long, &data), "long trial resumes the fork");
    }

    #[test]
    fn decay_fork_children_diverge_correctly() {
        // Same base, different step-decay factors: prefix [0,2) is shared
        // (decay binds at epoch 2), each child resumes with its own
        // schedule and must match its standalone run.
        let data = Dataset::synthetic_mnist(300, 7);
        let mk = |factor: f32| TrainConfig {
            epochs: 4,
            lr_schedule: LrSchedule::StepDecay { every_epochs: 2, factor },
            ..quick_cfg(OptimizerKind::Sgd)
        };
        let (a, b) = (mk(0.5), mk(0.25));
        let fork = train_segment(&a, &data, Checkpointing::default(), 2);
        for cfg in [&a, &b] {
            let done = train_segment(
                cfg,
                &data,
                Checkpointing { every: 0, resume: Some(fork.clone()), sink: None },
                4,
            );
            assert_eq!(done.history, train(cfg, &data));
        }
    }

    #[test]
    fn segment_emits_final_fork_even_at_cfg_epochs() {
        let data = Dataset::synthetic_mnist(200, 3);
        let cfg = quick_cfg(OptimizerKind::Sgd); // 5 epochs
        let mut cadence = Vec::new();
        let mut sink = |s: &crate::TrainSnapshot| cadence.push(s.next_epoch);
        let done = train_segment(
            &cfg,
            &data,
            Checkpointing { every: 2, resume: None, sink: Some(&mut sink) },
            5,
        );
        // cadence snapshots at 2 and 4 (segment end suppressed there), plus
        // the unconditional fork return at 5.
        assert_eq!(cadence, vec![2, 4]);
        assert_eq!(done.next_epoch, 5);
    }

    #[test]
    fn zero_length_segment_returns_initial_state() {
        let data = Dataset::synthetic_mnist(200, 3);
        let cfg = quick_cfg(OptimizerKind::Adam);
        let fork = train_segment(&cfg, &data, Checkpointing::default(), 0);
        assert_eq!(fork.next_epoch, 0);
        assert_eq!(fork.history.epochs_run(), 0);
        assert!(!fork.params.is_empty(), "initial weights captured");
    }

    #[test]
    #[should_panic(expected = "past cfg.epochs")]
    fn segment_end_past_config_epochs_panics() {
        let data = Dataset::synthetic_mnist(100, 3);
        let _ = train_segment(&quick_cfg(OptimizerKind::Adam), &data, Checkpointing::default(), 6);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let data = Dataset {
            x: crate::tensor::Matrix::zeros(0, 4),
            y: vec![],
            n_classes: 2,
            name: "empty".into(),
        };
        let _ = train(&TrainConfig::default(), &data);
    }
}
