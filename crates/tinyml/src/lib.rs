//! `tinyml` — a small, dependency-light neural-network library.
//!
//! The paper trains TensorFlow models on MNIST and CIFAR-10. Rust has no
//! mature TensorFlow, and the reproduction environment has no dataset
//! downloads, so this crate supplies the closest equivalent that exercises
//! the same code path: real mini-batch gradient-descent training of dense
//! networks, with the exact hyperparameter axes the paper sweeps —
//! **optimizer ∈ {Adam, SGD, RMSprop}**, **epochs**, **batch size** (the
//! config file of the paper's Listing 1) — over synthetic datasets whose
//! difficulty mirrors MNIST ("generalises well after just a few epochs, most
//! combinations attain above 90 % accuracy") and CIFAR-10 ("slightly bigger
//! and more complex").
//!
//! Everything is deterministic given a seed, which the HPO layer and the
//! property tests rely on. That determinism survives parallelism: the
//! compute kernels ([`tensor`], [`conv`]) split work across the scoped
//! worker pool in [`par`] in a way that preserves accumulation order, so a
//! training run is bit-identical at any thread count. The degree of
//! parallelism flows in from the task runtime's core grant (or the
//! `TINYML_THREADS` environment variable standalone) — see [`par`] for the
//! full story.
//!
//! # Quick start
//!
//! ```
//! use tinyml::data::Dataset;
//! use tinyml::optim::OptimizerKind;
//! use tinyml::train::{train, TrainConfig};
//!
//! let data = Dataset::synthetic_mnist(1_000, 7);
//! let cfg = TrainConfig {
//!     epochs: 5,
//!     batch_size: 64,
//!     optimizer: OptimizerKind::Adam,
//!     learning_rate: 1e-3,
//!     hidden_layers: vec![32],
//!     seed: 1,
//!     ..TrainConfig::default()
//! };
//! let report = train(&cfg, &data);
//! assert!(report.final_val_accuracy() > 0.5);
//! ```

#![warn(missing_docs)]

pub mod cnn;
pub mod conv;
pub mod data;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod net;
pub mod optim;
pub mod par;
pub mod snapshot;
pub mod tensor;
pub mod train;

pub use data::Dataset;
pub use net::{Mlp, Model};
pub use optim::OptimizerKind;
pub use snapshot::TrainSnapshot;
pub use tensor::Matrix;
pub use train::{train, train_segment, Checkpointing, History, ModelArch, TrainConfig};
