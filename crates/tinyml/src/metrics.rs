//! Evaluation metrics.

use crate::data::Dataset;
use crate::net::Model;

/// Fraction of `preds` equal to `labels`.
///
/// # Panics
/// Panics on length mismatch.
pub fn accuracy(preds: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(preds.len(), labels.len(), "prediction/label length mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    let hits = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    hits as f64 / preds.len() as f64
}

/// Accuracy of `net` over a whole dataset.
pub fn evaluate(net: &(impl Model + ?Sized), data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    accuracy(&net.predict(&data.x), &data.y)
}

/// `classes × classes` confusion matrix; `m[true][pred]` counts.
pub fn confusion_matrix(preds: &[usize], labels: &[usize], classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(preds.len(), labels.len());
    let mut m = vec![vec![0usize; classes]; classes];
    for (&p, &l) in preds.iter().zip(labels) {
        m[l][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Mlp;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_counts_pairs() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1, "true 2 predicted 1");
        assert_eq!(m[2][2], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn evaluate_runs_end_to_end() {
        let data = Dataset::synthetic_mnist(50, 3);
        let net = Mlp::new(data.dim(), &[8], data.n_classes, 1);
        let acc = evaluate(&net, &data);
        assert!((0.0..=1.0).contains(&acc));
    }
}
