//! Training-state snapshots: everything needed to resume a trial at an
//! epoch boundary and reproduce the uninterrupted run bit for bit.
//!
//! A [`TrainSnapshot`] captures, after epoch `next_epoch - 1` completes:
//!
//! - the model's trainable tensors in optimiser slot order
//!   ([`crate::net::Model::params`]),
//! - the optimiser's mutable state — SGD velocity / RMSprop square
//!   averages / Adam moments plus the step clock
//!   ([`crate::optim::OptimizerState`]),
//! - the RNG seed the run was started with, so the resumed trial replays
//!   the **same** dataset split and the same per-epoch minibatch order
//!   (the seed travels with the snapshot rather than being re-derived by
//!   the resuming process — re-seeding from scratch silently changes the
//!   shuffle stream on a retried trial),
//! - the per-epoch history so far, so the resumed run's final `History`
//!   equals the uninterrupted one.
//!
//! The encoding is a versioned little-endian binary layout with floats
//! stored via `to_bits`, so decode(encode(s)) == s exactly — no text
//! round-tripping, no precision loss. Integrity (checksums, atomic
//! writes) is the `ckpt` crate's job; this module only defines the
//! payload.

use crate::optim::{OptimizerKind, OptimizerState, SlotState};
use crate::train::History;

/// Magic + layout version framing every encoded snapshot.
const MAGIC: u32 = 0x544E_5331; // "TNS1"

/// A resumable training checkpoint (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSnapshot {
    /// RNG seed of the original run (split + minibatch shuffling).
    pub seed: u64,
    /// Total epochs the original run was configured for (drives the lr
    /// schedule, which must keep its original shape on resume).
    pub epochs_total: u32,
    /// First epoch the resumed run should execute (== epochs completed).
    pub next_epoch: u32,
    /// Trainable tensors in optimiser slot order.
    pub params: Vec<Vec<f32>>,
    /// Optimiser state (momenta, moments, step clock).
    pub opt: OptimizerState,
    /// Per-epoch history up to `next_epoch`.
    pub history: History,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vec_f32(out: &mut Vec<u8>, v: &[f32]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn put_vec_f64(out: &mut Vec<u8>, v: &[f64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn vec_f32(&mut self) -> Option<Vec<f32>> {
        let n = self.u32()? as usize;
        // 4 bytes per element must fit in what's left: rejects garbage
        // lengths without attempting a huge allocation.
        if self.bytes.len() - self.pos < n * 4 {
            return None;
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f32::from_bits(u32::from_le_bytes(self.take(4)?.try_into().ok()?)));
        }
        Some(v)
    }

    fn vec_f64(&mut self) -> Option<Vec<f64>> {
        let n = self.u32()? as usize;
        if self.bytes.len() - self.pos < n * 8 {
            return None;
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f64::from_bits(u64::from_le_bytes(self.take(8)?.try_into().ok()?)));
        }
        Some(v)
    }
}

fn kind_tag(kind: OptimizerKind) -> u32 {
    match kind {
        OptimizerKind::Sgd => 0,
        OptimizerKind::RmsProp => 1,
        OptimizerKind::Adam => 2,
    }
}

fn tag_kind(tag: u32) -> Option<OptimizerKind> {
    match tag {
        0 => Some(OptimizerKind::Sgd),
        1 => Some(OptimizerKind::RmsProp),
        2 => Some(OptimizerKind::Adam),
        _ => None,
    }
}

impl TrainSnapshot {
    /// Serialize to the versioned binary layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, MAGIC);
        put_u64(&mut out, self.seed);
        put_u32(&mut out, self.epochs_total);
        put_u32(&mut out, self.next_epoch);
        put_u32(&mut out, self.params.len() as u32);
        for p in &self.params {
            put_vec_f32(&mut out, p);
        }
        put_u32(&mut out, kind_tag(self.opt.kind));
        out.extend_from_slice(&self.opt.weight_decay.to_bits().to_le_bytes());
        put_u64(&mut out, self.opt.t);
        put_u32(&mut out, self.opt.slots.len() as u32);
        for slot in &self.opt.slots {
            match slot {
                SlotState::Sgd(v) => {
                    put_u32(&mut out, 0);
                    put_vec_f32(&mut out, v);
                }
                SlotState::RmsProp(s) => {
                    put_u32(&mut out, 1);
                    put_vec_f32(&mut out, s);
                }
                SlotState::Adam(m, v) => {
                    put_u32(&mut out, 2);
                    put_vec_f32(&mut out, m);
                    put_vec_f32(&mut out, v);
                }
            }
        }
        put_vec_f64(&mut out, &self.history.train_loss);
        put_vec_f64(&mut out, &self.history.val_accuracy);
        out
    }

    /// Decode an [`TrainSnapshot::encode`]d snapshot. `None` on any
    /// truncation, bad magic, or malformed field — never panics, so a
    /// corrupt snapshot file degrades to "no checkpoint" rather than a
    /// crashed resume.
    pub fn decode(bytes: &[u8]) -> Option<TrainSnapshot> {
        let mut r = Reader { bytes, pos: 0 };
        if r.u32()? != MAGIC {
            return None;
        }
        let seed = r.u64()?;
        let epochs_total = r.u32()?;
        let next_epoch = r.u32()?;
        let n_params = r.u32()? as usize;
        if bytes.len() - r.pos < n_params * 4 {
            return None;
        }
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(r.vec_f32()?);
        }
        let kind = tag_kind(r.u32()?)?;
        let weight_decay = f32::from_bits(u32::from_le_bytes(r.take(4)?.try_into().ok()?));
        let t = r.u64()?;
        let n_slots = r.u32()? as usize;
        if bytes.len() - r.pos < n_slots * 4 {
            return None;
        }
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            slots.push(match r.u32()? {
                0 => SlotState::Sgd(r.vec_f32()?),
                1 => SlotState::RmsProp(r.vec_f32()?),
                2 => SlotState::Adam(r.vec_f32()?, r.vec_f32()?),
                _ => return None,
            });
        }
        let train_loss = r.vec_f64()?;
        let val_accuracy = r.vec_f64()?;
        if r.pos != bytes.len() {
            return None; // trailing garbage
        }
        Some(TrainSnapshot {
            seed,
            epochs_total,
            next_epoch,
            params,
            opt: OptimizerState { kind, weight_decay, t, slots },
            history: History { train_loss, val_accuracy },
        })
    }

    /// Serialized size in bytes (what a save will write).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainSnapshot {
        TrainSnapshot {
            seed: 0xDEAD_BEEF_CAFE,
            epochs_total: 20,
            next_epoch: 5,
            params: vec![vec![1.5, -2.25, f32::MIN_POSITIVE], vec![0.0, -0.0]],
            opt: OptimizerState {
                kind: OptimizerKind::Adam,
                weight_decay: 1e-4,
                t: 312,
                slots: vec![
                    SlotState::Adam(vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]),
                    SlotState::Adam(vec![-0.1, -0.2], vec![1e-30, 1e30]),
                ],
            },
            history: History {
                train_loss: vec![2.1, 1.4, 0.9, 0.7, 0.55],
                val_accuracy: vec![0.3, 0.5, 0.7, 0.8, 0.85],
            },
        }
    }

    #[test]
    fn encode_decode_round_trip_is_exact() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(bytes.len(), s.encoded_len());
        let back = TrainSnapshot::decode(&bytes).unwrap();
        assert_eq!(back, s);
        // Bit-exactness, not just PartialEq: negative zero survives.
        assert!(back.params[1][1].to_bits() == (-0.0f32).to_bits());
    }

    #[test]
    fn sgd_and_rmsprop_slots_round_trip() {
        for (kind, slot) in [
            (OptimizerKind::Sgd, SlotState::Sgd(vec![0.25, -0.5])),
            (OptimizerKind::RmsProp, SlotState::RmsProp(vec![1.0, 2.0])),
        ] {
            let s = TrainSnapshot {
                opt: OptimizerState { kind, weight_decay: 0.0, t: 1, slots: vec![slot] },
                ..sample()
            };
            assert_eq!(TrainSnapshot::decode(&s.encode()).unwrap(), s);
        }
    }

    #[test]
    fn truncation_and_garbage_decode_to_none() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(TrainSnapshot::decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(TrainSnapshot::decode(&extended).is_none(), "trailing byte accepted");
        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xFF;
        assert!(TrainSnapshot::decode(&bad_magic).is_none());
    }

    #[test]
    fn absurd_length_fields_do_not_allocate_or_panic() {
        // magic + seed + epochs + next + a params count claiming u32::MAX
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAGIC);
        put_u64(&mut bytes, 1);
        put_u32(&mut bytes, 10);
        put_u32(&mut bytes, 2);
        put_u32(&mut bytes, u32::MAX);
        assert!(TrainSnapshot::decode(&bytes).is_none());
    }
}
