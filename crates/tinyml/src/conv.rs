//! Convolutional layers — the paper's experiments train small CNNs on
//! MNIST/CIFAR-10; this module supplies the same model class.
//!
//! # Lowering strategy: per-sample im2col → GEMM, sample-parallel
//!
//! A convolution is never computed with nested spatial loops here. Each
//! sample's padded patches are unrolled into an `(oh·ow, c·k·k)` matrix
//! (`im2col`) and the convolution lowers to the GEMM kernels of
//! [`crate::tensor`]; backward is the two transposed products
//! (`dW += dy_sᵀ·cols_s`, `dcols_s = dy_s·W`) plus a col2im scatter. The
//! unroll stays per-sample *on purpose*: for these kernel sizes the
//! `cols_s` matrix is a few tens of KiB, so the whole
//! im2col → GEMM → scatter pipeline runs out of L1/L2 — a whole-batch
//! unroll measures ~35 % slower on MNIST-shaped batches because it streams
//! megabyte intermediates through memory between every stage.
//!
//! Parallelism is over *samples* instead (see [`crate::par`]): a task
//! granted N cores by the scheduler splits the batch into N contiguous
//! sample ranges, and each scoped worker runs the cache-hot per-sample
//! pipeline over its own range, writing its disjoint `y`/`dx` chunks
//! without any locking.
//!
//! # Serial equivalence
//!
//! `y` and `dx` are computed per sample, so they are bit-identical at any
//! thread count trivially. `dW`/`db` are cross-sample *reductions*; to keep
//! them deterministic too, samples are accumulated into per-block partial
//! sums of a **fixed** block size (`SAMPLE_BLOCK`, independent of the
//! thread count) and the block partials are summed block-ascending on the
//! caller thread. Every float therefore sees the same accumulation tree no
//! matter how many workers ran — gradients are bit-identical across thread
//! counts. Pooling is 2×2 max with argmax memoisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::par;
use crate::tensor::Matrix;

/// A dense 4-D tensor in `(n, c, h, w)` row-major layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Zero-filled tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 { n, c, h, w, data: vec![0.0; n * c * h * w] }
    }

    /// Wrap a flat buffer.
    ///
    /// # Panics
    /// Panics if the buffer size doesn't match the shape.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * c * h * w, "shape/buffer mismatch");
        Tensor4 { n, c, h, w, data }
    }

    /// Reinterpret a batch of flat rows (e.g. dataset rows) as images.
    ///
    /// # Panics
    /// Panics if `m.cols() != c*h*w`.
    pub fn from_matrix(m: &Matrix, c: usize, h: usize, w: usize) -> Self {
        assert_eq!(m.cols(), c * h * w, "row length is not c*h*w");
        Tensor4 { n: m.rows(), c, h, w, data: m.as_slice().to_vec() }
    }

    /// Flatten to a `(n, c*h*w)` matrix (for the dense head).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.n, self.c * self.h * self.w, self.data.clone())
    }

    #[inline]
    fn idx(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        ((n * self.c + c) * self.h + y) * self.w + x
    }

    /// Element access.
    pub fn get(&self, n: usize, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.idx(n, c, y, x)]
    }

    /// Element assignment.
    pub fn set(&mut self, n: usize, c: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(n, c, y, x);
        self.data[i] = v;
    }

    /// Flat view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// Sample count per `dW`/`db` partial sum. Fixed (never derived from the
/// thread count), so the gradient accumulation tree — and therefore every
/// output bit — is identical at any degree of parallelism.
const SAMPLE_BLOCK: usize = 8;

/// Unroll padded patches of sample `s` into a `(oh*ow, c*kh*kw)` matrix —
/// small enough (tens of KiB for this repo's model sizes) to stay
/// L1/L2-resident through the GEMM and scatter that follow.
fn im2col(x: &Tensor4, s: usize, k: usize, pad: usize) -> Matrix {
    let (oh, ow) = (x.h + 2 * pad - k + 1, x.w + 2 * pad - k + 1);
    let mut cols = Matrix::zeros(oh * ow, x.c * k * k);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = cols.row_mut(oy * ow + ox);
            let mut i = 0;
            for c in 0..x.c {
                for ky in 0..k {
                    let y = oy + ky;
                    for kx in 0..k {
                        let xx = ox + kx;
                        // padded coordinates: subtract pad, check bounds
                        row[i] = if y >= pad && xx >= pad && y - pad < x.h && xx - pad < x.w {
                            x.get(s, c, y - pad, xx - pad)
                        } else {
                            0.0
                        };
                        i += 1;
                    }
                }
            }
        }
    }
    cols
}

/// Scatter one sample's `(oh*ow, c*kh*kw)` patch gradient onto its `dx`
/// slice (length `c*h*w`). Patches accumulate in patch-ascending order.
fn col2im_into(
    cols: &Matrix,
    (c_dim, h, w): (usize, usize, usize),
    k: usize,
    pad: usize,
    dx_s: &mut [f32],
) {
    let (oh, ow) = (h + 2 * pad - k + 1, w + 2 * pad - k + 1);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = cols.row(oy * ow + ox);
            let mut i = 0;
            for c in 0..c_dim {
                for ky in 0..k {
                    let y = oy + ky;
                    for kx in 0..k {
                        let xx = ox + kx;
                        if y >= pad && xx >= pad && y - pad < h && xx - pad < w {
                            dx_s[(c * h + (y - pad)) * w + (xx - pad)] += row[i];
                        }
                        i += 1;
                    }
                }
            }
        }
    }
}

/// A 2-D convolution with square kernels, stride 1 and symmetric padding.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel size (square).
    pub k: usize,
    /// Zero padding on every side.
    pub pad: usize,
    /// Weights, `(out_c, in_c*k*k)`.
    pub w: Matrix,
    /// Bias per output channel.
    pub b: Vec<f32>,
}

impl Conv2d {
    /// He-initialised convolution.
    pub fn new(in_c: usize, out_c: usize, k: usize, pad: usize, seed: u64) -> Self {
        let fan_in = in_c * k * k;
        let limit = (6.0f32 / fan_in as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Matrix::from_fn(out_c, fan_in, |_, _| rng.gen_range(-limit..limit));
        Conv2d { in_c, out_c, k, pad, w, b: vec![0.0; out_c] }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 2 * self.pad - self.k + 1, w + 2 * self.pad - self.k + 1)
    }

    /// Forward pass: per-sample im2col → GEMM (`cols_s · Wᵀ`) → transpose
    /// scatter with the bias fused in, parallelised over samples (each
    /// worker writes its own disjoint output chunk).
    ///
    /// # Panics
    /// Panics if the channel count doesn't match.
    pub fn forward(&self, x: &Tensor4) -> Tensor4 {
        assert_eq!(x.c, self.in_c, "channel mismatch");
        let (oh, ow) = self.out_hw(x.h, x.w);
        let p = oh * ow;
        let out_c = self.out_c;
        let mut out = Tensor4::zeros(x.n, out_c, oh, ow);
        if x.n == 0 || p == 0 || out_c == 0 {
            return out;
        }
        let fan_in = self.in_c * self.k * self.k;
        let threads = par::degree_for(x.n * p * fan_in * out_c);
        par::par_row_chunks(out.as_mut_slice(), out_c * p, threads, |samples, chunk| {
            // The per-sample GEMMs run serially inside this worker: the
            // batch is already split across workers one level up.
            par::with_threads(1, || {
                for (si, s) in samples.clone().enumerate() {
                    let cols = im2col(x, s, self.k, self.pad); // (p, fan_in)
                    let y = cols.matmul_t(&self.w); // (p, out_c)
                    let sample = &mut chunk[si * out_c * p..(si + 1) * out_c * p];
                    for oc in 0..out_c {
                        for pp in 0..p {
                            sample[oc * p + pp] = y.get(pp, oc) + self.b[oc];
                        }
                    }
                }
            });
        });
        out
    }

    /// Backward pass: given the forward input and `dy` (same shape as the
    /// forward output), returns `(dw, db, dx)`.
    ///
    /// Per sample: the same im2col unroll as forward, then
    /// `dW += dy_sᵀ · cols_s`, `dcols_s = dy_s · W`, and a col2im scatter
    /// for `dx`. Samples are split across workers; `dW`/`db` accumulate
    /// into per-`SAMPLE_BLOCK` partials reduced block-ascending, so the
    /// result is bit-identical at any thread count (see module docs).
    pub fn backward(&self, x: &Tensor4, dy: &Tensor4) -> (Matrix, Vec<f32>, Tensor4) {
        let (oh, ow) = self.out_hw(x.h, x.w);
        assert_eq!((dy.c, dy.h, dy.w), (self.out_c, oh, ow), "dy shape");
        let p = oh * ow;
        let out_c = self.out_c;
        let fan_in = self.in_c * self.k * self.k;
        let mut dx = Tensor4::zeros(x.n, x.c, x.h, x.w);
        let n = x.n;
        if n == 0 || p == 0 || out_c == 0 {
            return (Matrix::zeros(out_c, fan_in), vec![0.0; out_c], dx);
        }

        let chw = x.c * x.h * x.w;
        let dw_len = out_c * fan_in;
        let blocks = n.div_ceil(SAMPLE_BLOCK);
        let mut pdw = vec![0.0f32; blocks * dw_len];
        let mut pdb = vec![0.0f32; blocks * out_c];
        let dy_flat = dy.as_slice();

        // ~2 GEMMs' worth of FMAs per output element.
        let threads = par::degree_for(2 * n * p * fan_in * out_c);
        // One contiguous block range per worker; slice dx / the partial
        // buffers to match, so every write target is a disjoint `&mut`.
        let ranges = par::split_ranges(blocks, threads);
        let body = |block_range: std::ops::Range<usize>,
                    dx_chunk: &mut [f32],
                    pdw_chunk: &mut [f32],
                    pdb_chunk: &mut [f32]| {
            par::with_threads(1, || {
                let s0 = block_range.start * SAMPLE_BLOCK;
                for (bi, blk) in block_range.clone().enumerate() {
                    let dw_b = &mut pdw_chunk[bi * dw_len..(bi + 1) * dw_len];
                    let db_b = &mut pdb_chunk[bi * out_c..(bi + 1) * out_c];
                    for s in blk * SAMPLE_BLOCK..((blk + 1) * SAMPLE_BLOCK).min(n) {
                        // dy for this sample as (p, out_c), db fused in
                        let mut dy_s = Matrix::zeros(p, out_c);
                        for (oc, db_oc) in db_b.iter_mut().enumerate() {
                            for pp in 0..p {
                                let g = dy_flat[(s * out_c + oc) * p + pp];
                                dy_s.set(pp, oc, g);
                                *db_oc += g;
                            }
                        }
                        let cols = im2col(x, s, self.k, self.pad);
                        // dW_b += dy_sᵀ (out_c × p) · cols (p × fan_in)
                        let contrib = dy_s.t_matmul(&cols);
                        for (o, &v) in dw_b.iter_mut().zip(contrib.as_slice()) {
                            *o += v;
                        }
                        // dcols = dy_s (p × out_c) · w (out_c × fan_in)
                        let dcols = dy_s.matmul(&self.w);
                        col2im_into(
                            &dcols,
                            (x.c, x.h, x.w),
                            self.k,
                            self.pad,
                            &mut dx_chunk[(s - s0) * chw..(s - s0 + 1) * chw],
                        );
                    }
                }
            });
        };

        // Carve the three output buffers into per-range disjoint chunks.
        let mut items = Vec::with_capacity(ranges.len());
        let (mut dx_rest, mut pdw_rest, mut pdb_rest) =
            (dx.as_mut_slice(), pdw.as_mut_slice(), pdb.as_mut_slice());
        for r in ranges {
            let samples = ((r.end * SAMPLE_BLOCK).min(n) - r.start * SAMPLE_BLOCK) * chw;
            let (dx_c, rest) = std::mem::take(&mut dx_rest).split_at_mut(samples);
            dx_rest = rest;
            let (pdw_c, rest) = std::mem::take(&mut pdw_rest).split_at_mut(r.len() * dw_len);
            pdw_rest = rest;
            let (pdb_c, rest) = std::mem::take(&mut pdb_rest).split_at_mut(r.len() * out_c);
            pdb_rest = rest;
            items.push((r, dx_c, pdw_c, pdb_c));
        }
        let mut items = items.into_iter();
        let own = items.next().expect("blocks >= 1 yields at least one range");
        std::thread::scope(|sc| {
            let body = &body;
            for (r, dx_c, pdw_c, pdb_c) in items {
                sc.spawn(move || body(r, dx_c, pdw_c, pdb_c));
            }
            body(own.0, own.1, own.2, own.3);
        });

        // Deterministic reduction: block partials summed block-ascending.
        let mut dw = Matrix::zeros(out_c, fan_in);
        let mut db = vec![0.0f32; out_c];
        for blk in 0..blocks {
            for (o, &v) in dw.as_mut_slice().iter_mut().zip(&pdw[blk * dw_len..]) {
                *o += v;
            }
            for (o, &v) in db.iter_mut().zip(&pdb[blk * out_c..]) {
                *o += v;
            }
        }
        (dw, db, dx)
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

/// 2×2 max pooling with stride 2.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2;

impl MaxPool2 {
    /// Forward pass; returns the pooled tensor and the flat argmax indices
    /// (into the input) needed for backprop. Odd trailing rows/columns are
    /// dropped (floor semantics, like most frameworks' default).
    pub fn forward(&self, x: &Tensor4) -> (Tensor4, Vec<usize>) {
        let (oh, ow) = (x.h / 2, x.w / 2);
        let mut out = Tensor4::zeros(x.n, x.c, oh, ow);
        let mut arg = vec![0usize; x.n * x.c * oh * ow];
        let mut o = 0;
        for s in 0..x.n {
            for c in 0..x.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0;
                        for dy in 0..2 {
                            for dxx in 0..2 {
                                let y = oy * 2 + dy;
                                let xx = ox * 2 + dxx;
                                let v = x.get(s, c, y, xx);
                                if v > best {
                                    best = v;
                                    best_i = ((s * x.c + c) * x.h + y) * x.w + xx;
                                }
                            }
                        }
                        out.set(s, c, oy, ox, best);
                        arg[o] = best_i;
                        o += 1;
                    }
                }
            }
        }
        (out, arg)
    }

    /// Backward: scatter `dy` to the argmax positions.
    pub fn backward(
        &self,
        dy: &Tensor4,
        arg: &[usize],
        input_shape: (usize, usize, usize, usize),
    ) -> Tensor4 {
        let (n, c, h, w) = input_shape;
        let mut dx = Tensor4::zeros(n, c, h, w);
        for (g, &i) in dy.as_slice().iter().zip(arg) {
            dx.as_mut_slice()[i] += g;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor4_layout_roundtrip() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        t.set(1, 2, 3, 4, 7.5);
        assert_eq!(t.get(1, 2, 3, 4), 7.5);
        assert_eq!(t.as_slice().len(), 120);
        let m = t.to_matrix();
        assert_eq!((m.rows(), m.cols()), (2, 60));
        let back = Tensor4::from_matrix(&m, 3, 4, 5);
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "shape/buffer mismatch")]
    fn tensor4_validates_buffer() {
        let _ = Tensor4::from_vec(1, 1, 2, 2, vec![0.0; 3]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1-channel 3×3 kernel with centre 1 and pad 1 = identity map.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0);
        conv.w = Matrix::from_vec(1, 9, vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        conv.b = vec![0.0];
        let x = Tensor4::from_vec(1, 1, 3, 3, (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x);
        assert_eq!((y.h, y.w), (3, 3));
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn valid_convolution_hand_checked() {
        // 2×2 sum kernel, no padding, 3×3 input → 2×2 output of window sums.
        let mut conv = Conv2d::new(1, 1, 2, 0, 0);
        conv.w = Matrix::from_vec(1, 4, vec![1.0; 4]);
        conv.b = vec![0.5];
        let x = Tensor4::from_vec(1, 1, 3, 3, (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x);
        assert_eq!((y.h, y.w), (2, 2));
        // windows: [1,2,4,5]=12, [2,3,5,6]=16, [4,5,7,8]=24, [5,6,8,9]=28 (+0.5)
        assert_eq!(y.as_slice(), &[12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn multi_channel_shapes() {
        let conv = Conv2d::new(3, 8, 3, 1, 1);
        let x = Tensor4::zeros(2, 3, 8, 8);
        let y = conv.forward(&x);
        assert_eq!((y.n, y.c, y.h, y.w), (2, 8, 8, 8));
        assert_eq!(conv.param_count(), 8 * 27 + 8);
    }

    #[test]
    fn conv_numerical_gradient_check() {
        let conv = Conv2d::new(2, 3, 3, 1, 5);
        let x =
            Tensor4::from_vec(2, 2, 4, 4, (0..64).map(|i| ((i * 37) as f32).sin() * 0.5).collect());
        let y = conv.forward(&x);
        let dy = Tensor4::from_vec(y.n, y.c, y.h, y.w, vec![1.0; y.as_slice().len()]);
        let (dw, db, dx) = conv.backward(&x, &dy);
        let eps = 1e-2f32;
        let loss =
            |c: &Conv2d, input: &Tensor4| -> f32 { c.forward(input).as_slice().iter().sum() };
        // weights
        for &(r, cc) in &[(0usize, 0usize), (1, 7), (2, 17)] {
            let mut plus = conv.clone();
            plus.w.set(r, cc, conv.w.get(r, cc) + eps);
            let mut minus = conv.clone();
            minus.w.set(r, cc, conv.w.get(r, cc) - eps);
            let num = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * eps);
            assert!(
                (num - dw.get(r, cc)).abs() < 0.05 * dw.get(r, cc).abs().max(1.0),
                "dw({r},{cc}): analytic {} vs numeric {num}",
                dw.get(r, cc)
            );
        }
        // bias: dL/db = number of output positions per channel × batch
        let positions = (y.h * y.w * y.n) as f32;
        assert!(db.iter().all(|&g| (g - positions).abs() < 1e-3), "{db:?}");
        // input gradient
        for &flat in &[0usize, 13, 37] {
            let mut plus = x.clone();
            plus.as_mut_slice()[flat] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[flat] -= eps;
            let num = (loss(&conv, &plus) - loss(&conv, &minus)) / (2.0 * eps);
            let ana = dx.as_slice()[flat];
            assert!((num - ana).abs() < 0.05, "dx[{flat}]: analytic {ana} vs numeric {num}");
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let x = Tensor4::from_vec(
            1,
            1,
            4,
            4,
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let pool = MaxPool2;
        let (y, arg) = pool.forward(&x);
        assert_eq!((y.h, y.w), (2, 2));
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        let dy = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let dx = pool.backward(&dy, &arg, (1, 1, 4, 4));
        assert_eq!(dx.get(0, 0, 1, 1), 1.0, "grad lands on the max position");
        assert_eq!(dx.get(0, 0, 1, 3), 2.0);
        assert_eq!(dx.get(0, 0, 3, 1), 3.0);
        assert_eq!(dx.get(0, 0, 3, 3), 4.0);
        assert_eq!(dx.as_slice().iter().sum::<f32>(), 10.0, "mass conserved");
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let x = Tensor4::zeros(1, 1, 5, 5);
        let (y, _) = MaxPool2.forward(&x);
        assert_eq!((y.h, y.w), (2, 2));
    }

    #[test]
    fn conv_parallel_matches_serial_bit_for_bit() {
        // Batch and geometry large enough that the lowered GEMMs cross the
        // par work floor, so threads > 1 really exercise the workers.
        let conv = Conv2d::new(3, 8, 3, 1, 21);
        let x = Tensor4::from_vec(
            16,
            3,
            16,
            16,
            (0..16 * 3 * 16 * 16).map(|i| ((i * 31) as f32 * 0.017).sin()).collect(),
        );
        let (serial_y, serial_grads) = crate::par::with_threads(1, || {
            let y = conv.forward(&x);
            let dy = Tensor4::from_vec(y.n, y.c, y.h, y.w, y.as_slice().to_vec());
            let grads = conv.backward(&x, &dy);
            (y, grads)
        });
        for threads in [2usize, 4, 8] {
            let (y, grads) = crate::par::with_threads(threads, || {
                let y = conv.forward(&x);
                let dy = Tensor4::from_vec(y.n, y.c, y.h, y.w, y.as_slice().to_vec());
                let grads = conv.backward(&x, &dy);
                (y, grads)
            });
            assert_eq!(y, serial_y, "forward, {threads} threads");
            assert_eq!(grads.0, serial_grads.0, "dw, {threads} threads");
            assert_eq!(grads.1, serial_grads.1, "db, {threads} threads");
            assert_eq!(grads.2, serial_grads.2, "dx, {threads} threads");
        }
    }

    #[test]
    fn conv_seeding_is_reproducible() {
        let a = Conv2d::new(1, 4, 3, 1, 9);
        let b = Conv2d::new(1, 4, 3, 1, 9);
        assert_eq!(a.w, b.w);
        let c = Conv2d::new(1, 4, 3, 1, 10);
        assert_ne!(a.w, c.w);
    }
}
