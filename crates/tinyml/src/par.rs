//! Intra-task parallelism: a dependency-free scoped worker pool.
//!
//! The paper's Figure 5/9 experiments hinge on multi-core task constraints:
//! a training task granted N cores by the scheduler should run ~N× faster.
//! This module is how `tinyml` spends those cores. It deliberately avoids
//! external crates (no rayon): workers are plain [`std::thread::scope`]
//! threads that each own a contiguous *row range* of the output, so no
//! synchronisation beyond the scope join is ever needed.
//!
//! # How the degree of parallelism flows
//!
//! The degree is an *ambient*, thread-scoped setting, not a parameter on
//! every kernel:
//!
//! 1. The rcompss runtime places a task and hands its body a
//!    `TaskContext` whose `cores` list is the exact core set granted by
//!    the `@constraint` scheduler.
//! 2. The HPO runner wraps the objective in
//!    [`with_threads`]`(ctx.parallelism(), …)`.
//! 3. `train`/`net`/`cnn` run unchanged; every GEMM and convolution in
//!    [`crate::tensor`] / [`crate::conv`] consults [`current_threads`] and
//!    splits its output rows across that many scoped workers.
//!
//! Standalone users (benches, scripts) either call [`with_threads`]
//! directly or set the `TINYML_THREADS` environment variable, which acts
//! as the default when no scope is active. The default without either is
//! **1** — fully serial, so library behaviour is unchanged unless a caller
//! opts in.
//!
//! # Serial-equivalence guarantee
//!
//! Kernels built on this module partition *output rows* only; every output
//! element is computed by exactly one thread, using the same in-order
//! accumulation the serial kernel uses. Parallel results are therefore
//! bit-identical to serial results — not merely close. The property tests
//! in `tests/properties.rs` and the unit tests here assert this.
//!
//! ```
//! use tinyml::par;
//!
//! // Fill an 4×2 row-major buffer with its flat index, 3 workers.
//! let mut out = vec![0.0f32; 8];
//! par::par_row_chunks(&mut out, 2, 3, |rows, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (rows.start * 2 + i) as f32;
//!     }
//! });
//! assert_eq!(out, (0..8).map(|i| i as f32).collect::<Vec<_>>());
//!
//! // The ambient degree: scoped override, restored after the scope.
//! let outside = par::current_threads();
//! let seen = par::with_threads(4, par::current_threads);
//! assert_eq!(seen, 4);
//! assert_eq!(par::current_threads(), outside);
//! ```

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

/// Minimum fused multiply-adds a worker must have before an extra thread
/// pays for its ~tens-of-µs spawn cost (scoped threads are spawned per
/// kernel call, not pooled across calls).
const MIN_WORK_PER_THREAD: usize = 128 * 1024;

thread_local! {
    /// Ambient degree for the current thread; 0 = unset (fall back to env).
    static AMBIENT: Cell<usize> = const { Cell::new(0) };
}

/// `TINYML_THREADS` parsed once per process (≥ 1; absent/invalid ⇒ 1).
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("TINYML_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// The degree of parallelism in effect on this thread: the innermost
/// [`with_threads`] scope, else `TINYML_THREADS`, else 1.
pub fn current_threads() -> usize {
    let scoped = AMBIENT.with(Cell::get);
    if scoped == 0 {
        env_threads()
    } else {
        scoped
    }
}

/// Run `f` with the ambient degree of parallelism set to `threads`,
/// restoring the previous value afterwards (also on unwind, so a panicking
/// training task cannot leak its setting into the next task on the same
/// worker thread). `threads == 0` means "inherit": `f` runs under the
/// current ambient degree unchanged.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    if threads == 0 {
        return f();
    }
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|c| c.set(self.0));
        }
    }
    let prev = AMBIENT.with(|c| c.replace(threads));
    let _restore = Restore(prev);
    f()
}

/// The number of workers a kernel should use for `work` fused
/// multiply-adds: the ambient degree, capped so each worker gets at least
/// `MIN_WORK_PER_THREAD` of them (small problems stay serial).
pub fn degree_for(work: usize) -> usize {
    let t = current_threads();
    if t <= 1 {
        return 1;
    }
    t.min((work / MIN_WORK_PER_THREAD).max(1))
}

/// Split `0..len` into at most `parts` contiguous ranges whose lengths
/// differ by at most one (the first `len % parts` ranges get the extra
/// element). Returns fewer ranges when `len < parts`; empty when `len == 0`.
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Run `f` over a balanced partition of `0..len` on up to `threads`
/// workers. The calling thread executes the first range itself; the rest
/// run on scoped threads joined before return. Serial (`threads <= 1`)
/// calls `f(0..len)` inline with zero overhead.
pub fn par_ranges<F>(len: usize, threads: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let t = threads.clamp(1, len);
    if t == 1 {
        f(0..len);
        return;
    }
    let mut ranges = split_ranges(len, t).into_iter();
    let own = ranges.next().expect("len > 0 yields at least one range");
    std::thread::scope(|s| {
        let f = &f;
        for r in ranges {
            s.spawn(move || f(r));
        }
        f(own);
    });
}

/// Partition a row-major buffer of `row_len`-sized rows into contiguous
/// row-range chunks and run `f(range, chunk)` on up to `threads` workers.
/// Each chunk is a disjoint `&mut` slice (`split_at_mut`), so workers write
/// their rows without any locking; the calling thread takes the first
/// chunk. This is the building block of the blocked GEMM and the batched
/// im2col convolution.
///
/// # Panics
/// Panics if `row_len == 0` or `data.len()` is not a multiple of `row_len`.
pub fn par_row_chunks<F>(data: &mut [f32], row_len: usize, threads: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert!(data.len().is_multiple_of(row_len), "buffer is not whole rows");
    let rows = data.len() / row_len;
    let t = threads.clamp(1, rows.max(1));
    if t == 1 {
        f(0..rows, data);
        return;
    }
    let mut ranges = split_ranges(rows, t).into_iter();
    let own_range = ranges.next().expect("rows > 0 yields at least one range");
    let (own_chunk, mut rest) = data.split_at_mut(own_range.len() * row_len);
    std::thread::scope(|s| {
        let f = &f;
        for r in ranges {
            let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * row_len);
            rest = tail;
            s.spawn(move || f(r, chunk));
        }
        f(own_range, own_chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_balanced_and_covers() {
        assert_eq!(split_ranges(0, 4), vec![]);
        assert_eq!(split_ranges(3, 1), vec![0..3]);
        assert_eq!(split_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(split_ranges(2, 5), vec![0..1, 1..2], "never more parts than items");
        for len in 0..40usize {
            for parts in 1..9usize {
                let rs = split_ranges(len, parts);
                let total: usize = rs.iter().map(Range::len).sum();
                assert_eq!(total, len);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty ranges");
                    next = r.end;
                }
                let min = rs.iter().map(Range::len).min().unwrap_or(0);
                let max = rs.iter().map(Range::len).max().unwrap_or(0);
                assert!(max - min <= 1, "balanced within one");
            }
        }
    }

    #[test]
    fn ambient_default_scoping_and_restore() {
        let default = current_threads();
        assert_eq!(default, env_threads(), "no scope ⇒ the TINYML_THREADS default");
        let inner = with_threads(6, || {
            let nested = with_threads(2, current_threads);
            assert_eq!(nested, 2, "innermost scope wins");
            assert_eq!(current_threads(), 6, "restored after nested scope");
            let inherited = with_threads(0, current_threads);
            assert_eq!(inherited, 6, "0 inherits");
            current_threads()
        });
        assert_eq!(inner, 6);
        assert_eq!(current_threads(), default, "restored after scope");
    }

    #[test]
    fn ambient_restored_on_panic() {
        let default = current_threads();
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_threads(), default, "unwind must not leak the setting");
    }

    #[test]
    fn degree_respects_minimum_work() {
        with_threads(8, || {
            assert_eq!(degree_for(10), 1, "tiny problems stay serial");
            assert_eq!(degree_for(MIN_WORK_PER_THREAD * 3), 3);
            assert_eq!(degree_for(MIN_WORK_PER_THREAD * 100), 8, "capped at ambient");
        });
        with_threads(1, || {
            assert_eq!(degree_for(usize::MAX / 2), 1, "serial ambient stays serial");
        });
    }

    #[test]
    fn par_ranges_covers_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for &threads in &[1usize, 2, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            par_ranges(23, threads, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "t={threads}");
        }
        par_ranges(0, 4, |_| panic!("must not be called for empty input"));
    }

    #[test]
    fn row_chunks_partition_disjointly() {
        for &threads in &[1usize, 2, 4, 7] {
            let mut data = vec![0.0f32; 9 * 5];
            par_row_chunks(&mut data, 5, threads, |rows, chunk| {
                assert_eq!(chunk.len(), rows.len() * 5);
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (rows.start * 5 + i) as f32;
                }
            });
            let expect: Vec<f32> = (0..45).map(|i| i as f32).collect();
            assert_eq!(data, expect, "t={threads}: every cell written exactly once");
        }
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn row_chunks_rejects_ragged_buffers() {
        let mut data = vec![0.0f32; 7];
        par_row_chunks(&mut data, 3, 2, |_, _| {});
    }
}
