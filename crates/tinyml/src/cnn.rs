//! A small convolutional classifier — the model family the paper actually
//! trains on MNIST/CIFAR-10 with TensorFlow.
//!
//! Architecture: `conv(k3,p1) → ReLU → maxpool2 → conv(k3,p1) → ReLU →
//! maxpool2 → dense → softmax`. Sizes are parameters so the HPO layer can
//! search over channel counts too.
//!
//! Compute-wise this file is pure wiring: both conv blocks lower to the
//! sample-parallel im2col GEMMs of [`crate::conv`] and the head to the
//! row-parallel dense GEMMs of [`crate::tensor`], all driven by the
//! scoped worker pool in [`crate::par`]. The degree of parallelism arrives
//! ambiently from the training loop's `with_threads` scope (ultimately the
//! task's core grant), so a CNN trial constrained to N cores trains with
//! N-way intra-task parallelism without this model holding any thread
//! state — and produces bit-identical weights at any N.

use crate::conv::{Conv2d, MaxPool2, Tensor4};
use crate::layers::Dense;
use crate::loss::softmax_cross_entropy;
use crate::net::Model;
use crate::optim::Optimizer;
use crate::tensor::Matrix;

/// ReLU on a tensor, in place; returns the pre-activation copy.
fn relu_tensor(t: &mut Tensor4) -> Tensor4 {
    let pre = t.clone();
    for v in t.as_mut_slice() {
        *v = v.max(0.0);
    }
    pre
}

/// Zero gradient entries whose pre-activation was ≤ 0.
fn relu_tensor_backward(dy: &mut Tensor4, pre: &Tensor4) {
    for (g, &p) in dy.as_mut_slice().iter_mut().zip(pre.as_slice()) {
        if p <= 0.0 {
            *g = 0.0;
        }
    }
}

/// The convolutional network.
#[derive(Debug, Clone)]
pub struct Cnn {
    /// Input image shape `(channels, height, width)`.
    pub input: (usize, usize, usize),
    conv1: Conv2d,
    conv2: Conv2d,
    head: Dense,
    pool: MaxPool2,
}

impl Cnn {
    /// Build for `input = (c, h, w)` images, `classes` outputs, with
    /// `c1`/`c2` channels in the two conv blocks.
    ///
    /// # Panics
    /// Panics if the image is too small for two 2× poolings.
    pub fn new(
        input: (usize, usize, usize),
        classes: usize,
        c1: usize,
        c2: usize,
        seed: u64,
    ) -> Self {
        let (c, h, w) = input;
        assert!(h >= 4 && w >= 4, "need at least 4×4 images for two poolings");
        let conv1 = Conv2d::new(c, c1, 3, 1, seed ^ 0x1111);
        let conv2 = Conv2d::new(c1, c2, 3, 1, seed ^ 0x2222);
        let (h2, w2) = (h / 2 / 2, w / 2 / 2);
        let head = Dense::new(c2 * h2 * w2, classes, seed ^ 0x3333);
        Cnn { input, conv1, conv2, head, pool: MaxPool2 }
    }

    /// Guess an image shape from a flat feature length: tries 1 then 3
    /// channels with square images. This matches the repo's synthetic
    /// datasets (784 = 1×28², 3 072 = 3×32²).
    pub fn infer_shape(dim: usize) -> Option<(usize, usize, usize)> {
        for c in [1usize, 3] {
            if dim.is_multiple_of(c) {
                let side = ((dim / c) as f64).sqrt() as usize;
                if side * side * c == dim {
                    return Some((c, side, side));
                }
            }
        }
        None
    }

    fn forward_tensor(&self, x: &Tensor4) -> Matrix {
        let mut a1 = self.conv1.forward(x);
        relu_tensor(&mut a1);
        let (p1, _) = self.pool.forward(&a1);
        let mut a2 = self.conv2.forward(&p1);
        relu_tensor(&mut a2);
        let (p2, _) = self.pool.forward(&a2);
        self.head.forward(&p2.to_matrix())
    }

    fn batch_to_tensor(&self, x: &Matrix) -> Tensor4 {
        let (c, h, w) = self.input;
        Tensor4::from_matrix(x, c, h, w)
    }
}

impl Model for Cnn {
    fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_tensor(&self.batch_to_tensor(x))
    }

    fn train_batch(&mut self, opt: &mut Optimizer, x: &Matrix, labels: &[usize]) -> f32 {
        let x = self.batch_to_tensor(x);
        // forward with caches
        let mut a1 = self.conv1.forward(&x);
        let pre1 = relu_tensor(&mut a1);
        let (p1, arg1) = self.pool.forward(&a1);
        let mut a2 = self.conv2.forward(&p1);
        let pre2 = relu_tensor(&mut a2);
        let (p2, arg2) = self.pool.forward(&a2);
        let flat = p2.to_matrix();
        let logits = self.head.forward(&flat);
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels);

        // backward
        let (dw_h, db_h, dflat) = self.head.backward(&flat, &dlogits);
        let dp2 = Tensor4::from_matrix(&dflat, p2.c, p2.h, p2.w);
        let mut da2 = self.pool.backward(&dp2, &arg2, (a2.n, a2.c, a2.h, a2.w));
        relu_tensor_backward(&mut da2, &pre2);
        let (dw2, db2, dp1) = self.conv2.backward(&p1, &da2);
        let mut da1 = self.pool.backward(&dp1, &arg1, (a1.n, a1.c, a1.h, a1.w));
        relu_tensor_backward(&mut da1, &pre1);
        let (dw1, db1, _dx) = self.conv1.backward(&x, &da1);

        // apply
        opt.begin_step();
        opt.step(0, self.conv1.w.as_mut_slice(), dw1.as_slice());
        opt.step(1, &mut self.conv1.b, &db1);
        opt.step(2, self.conv2.w.as_mut_slice(), dw2.as_slice());
        opt.step(3, &mut self.conv2.b, &db2);
        opt.step(4, self.head.w.as_mut_slice(), dw_h.as_slice());
        opt.step(5, &mut self.head.b, &db_h);
        loss
    }

    fn param_count(&self) -> usize {
        self.conv1.param_count() + self.conv2.param_count() + self.head.param_count()
    }

    fn params(&self) -> Vec<Vec<f32>> {
        // Same order as the `opt.step` calls in `train_batch`: slots 0–5.
        vec![
            self.conv1.w.as_slice().to_vec(),
            self.conv1.b.clone(),
            self.conv2.w.as_slice().to_vec(),
            self.conv2.b.clone(),
            self.head.w.as_slice().to_vec(),
            self.head.b.clone(),
        ]
    }

    fn restore_params(&mut self, params: &[Vec<f32>]) -> bool {
        let mut dst: Vec<&mut [f32]> = vec![
            self.conv1.w.as_mut_slice(),
            &mut self.conv1.b,
            self.conv2.w.as_mut_slice(),
            &mut self.conv2.b,
            self.head.w.as_mut_slice(),
            &mut self.head.b,
        ];
        crate::net::restore_into(&mut dst, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::metrics::accuracy;
    use crate::optim::OptimizerKind;

    #[test]
    fn shapes_wire_up_for_mnist_and_cifar_geometry() {
        let mnist = Cnn::new((1, 28, 28), 10, 4, 8, 1);
        assert_eq!(Cnn::infer_shape(784), Some((1, 28, 28)));
        assert_eq!(Cnn::infer_shape(3072), Some((3, 32, 32)));
        assert_eq!(Cnn::infer_shape(7), None);
        let x = Matrix::zeros(2, 784);
        let logits = mnist.forward(&x);
        assert_eq!((logits.rows(), logits.cols()), (2, 10));
        assert!(mnist.param_count() > 0);

        let cifar = Cnn::new((3, 32, 32), 10, 4, 8, 1);
        let x = Matrix::zeros(1, 3072);
        assert_eq!(cifar.forward(&x).cols(), 10);
    }

    #[test]
    fn cnn_overfits_a_tiny_batch() {
        // 12 samples, 12×12 synthetic images: loss must fall substantially.
        let mut net = Cnn::new((1, 12, 12), 3, 3, 4, 7);
        let x = Matrix::from_fn(12, 144, |r, c| (((r * 53 + c * 17) % 97) as f32 / 97.0) - 0.5);
        let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let mut opt = Optimizer::new(OptimizerKind::Adam, 5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            last = net.train_batch(&mut opt, &x, &labels);
            first.get_or_insert(last);
        }
        let first = first.unwrap();
        assert!(last < first * 0.6, "loss {first} → {last}");
        let acc = accuracy(&net.predict(&x), &labels);
        assert!(acc > 0.6, "memorised most of the batch: {acc}");
    }

    #[test]
    fn cnn_learns_real_synthetic_mnist() {
        // small subset, downscaled epochs — this is the model class of the
        // paper's Figure 7 experiments. CNNs need the spatially-smooth
        // dataset variant (convolution has nothing to exploit in iid
        // prototypes).
        let data = Dataset::synthetic(
            "mnist-spatial",
            500,
            &crate::data::SyntheticSpec::mnist_like_spatial(),
            3,
        );
        let (train, val) = data.split(0.2, 1);
        let mut net = Cnn::new((1, 28, 28), 10, 6, 12, 2);
        let mut opt = Optimizer::new(OptimizerKind::Adam, 3e-3);
        for epoch in 0..6u32 {
            for batch in train.batches(32, 9, epoch) {
                let x = train.x.gather_rows(&batch);
                let y: Vec<usize> = batch.iter().map(|&i| train.y[i]).collect();
                net.train_batch(&mut opt, &x, &y);
            }
        }
        let acc = accuracy(&net.predict(&val.x), &val.y);
        assert!(acc > 0.3, "clearly better than chance (0.1): {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Cnn::new((1, 8, 8), 4, 2, 3, 11);
        let b = Cnn::new((1, 8, 8), 4, 2, 3, 11);
        let x = Matrix::from_fn(2, 64, |r, c| ((r + c) as f32).sin());
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    #[should_panic(expected = "4×4")]
    fn too_small_images_rejected() {
        let _ = Cnn::new((1, 2, 2), 2, 2, 2, 0);
    }
}
