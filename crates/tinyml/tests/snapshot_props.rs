//! Property tests for training snapshots: encode/decode (and a real
//! `ckpt::DirStore` save/load) round-trips random MLP/CNN weights and
//! random optimiser state bit-exactly — including non-finite floats and
//! negative zero, hence the bitwise comparisons.

use proptest::collection::vec;
use proptest::prelude::*;
use tinyml::cnn::Cnn;
use tinyml::net::Model;
use tinyml::optim::{OptimizerKind, OptimizerState, SlotState};
use tinyml::snapshot::TrainSnapshot;
use tinyml::train::History;
use tinyml::Mlp;

fn f32_bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn f64_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Bit-level equality over every float in the snapshot (PartialEq would
/// reject NaN == NaN, which this test deliberately allows).
fn bits_equal(a: &TrainSnapshot, b: &TrainSnapshot) -> bool {
    let slot_bits = |s: &SlotState| match s {
        SlotState::Sgd(v) => (0u8, f32_bits(v), vec![]),
        SlotState::RmsProp(v) => (1, f32_bits(v), vec![]),
        SlotState::Adam(m, v) => (2, f32_bits(m), f32_bits(v)),
    };
    a.seed == b.seed
        && a.epochs_total == b.epochs_total
        && a.next_epoch == b.next_epoch
        && a.params.len() == b.params.len()
        && a.params.iter().zip(&b.params).all(|(x, y)| f32_bits(x) == f32_bits(y))
        && a.opt.kind == b.opt.kind
        && a.opt.weight_decay.to_bits() == b.opt.weight_decay.to_bits()
        && a.opt.t == b.opt.t
        && a.opt.slots.len() == b.opt.slots.len()
        && a.opt.slots.iter().zip(&b.opt.slots).all(|(x, y)| slot_bits(x) == slot_bits(y))
        && f64_bits(&a.history.train_loss) == f64_bits(&b.history.train_loss)
        && f64_bits(&a.history.val_accuracy) == f64_bits(&b.history.val_accuracy)
}

/// Arbitrary f32 bit patterns: exercises subnormals, infinities, NaNs.
fn any_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// Random Adam state with one slot per parameter tensor (matching `lens`).
fn adam_state(lens: Vec<usize>) -> impl Strategy<Value = OptimizerState> {
    let slots: Vec<BoxedStrategy<SlotState>> = lens
        .into_iter()
        .map(|n| {
            (vec(any_f32(), n..=n), vec(any_f32(), n..=n))
                .prop_map(|(m, v)| SlotState::Adam(m, v))
                .boxed()
        })
        .collect();
    (any::<u64>(), any_f32(), slots).prop_map(|(t, wd, slots)| OptimizerState {
        kind: OptimizerKind::Adam,
        weight_decay: wd,
        t,
        slots,
    })
}

/// A full snapshot around the given (already random) model weights.
fn snapshot_around(params: Vec<Vec<f32>>) -> impl Strategy<Value = TrainSnapshot> {
    let lens: Vec<usize> = params.iter().map(Vec::len).collect();
    (any::<u64>(), 1u32..100, vec(any::<f64>(), 0..6), vec(any::<f64>(), 0..6), adam_state(lens))
        .prop_map(move |(seed, epochs_total, tl, va, opt)| TrainSnapshot {
            seed,
            epochs_total,
            next_epoch: epochs_total / 2,
            params: params.clone(),
            opt,
            history: History { train_loss: tl, val_accuracy: va },
        })
}

/// Random MLP architecture + a snapshot of its weights.
fn mlp_case() -> impl Strategy<Value = (usize, Vec<usize>, usize, u64, TrainSnapshot)> {
    (1usize..20, vec(1usize..12, 0..3), 2usize..6, any::<u64>()).prop_flat_map(
        |(dim, hidden, classes, seed)| {
            let net = Mlp::new(dim, &hidden, classes, seed);
            snapshot_around(Model::params(&net))
                .prop_map(move |s| (dim, hidden.clone(), classes, seed, s))
        },
    )
}

/// Random CNN architecture + a snapshot of its weights.
fn cnn_case() -> impl Strategy<Value = (usize, usize, usize, usize, u64, TrainSnapshot)> {
    (4usize..10, 1usize..4, 1usize..4, 2usize..5, any::<u64>()).prop_flat_map(
        |(side, c1, c2, classes, seed)| {
            let net = Cnn::new((1, side, side), classes, c1, c2, seed);
            snapshot_around(net.params()).prop_map(move |s| (side, c1, c2, classes, seed, s))
        },
    )
}

fn store() -> ckpt::DirStore {
    let dir = std::env::temp_dir().join(format!("tinyml-snap-props-{}", std::process::id()));
    ckpt::DirStore::open(dir, 2).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mlp_weights_and_adam_state_round_trip_exactly(
        (dim, hidden, classes, seed, snap) in mlp_case(),
        trial in any::<u64>(),
    ) {
        // In-memory encode/decode is exact…
        let decoded = TrainSnapshot::decode(&snap.encode()).expect("decodes");
        prop_assert!(bits_equal(&decoded, &snap));

        // …and so is the full save/load through the DirStore.
        let s = store();
        s.save(trial, snap.next_epoch, &snap.encode()).unwrap();
        let (epoch, blob) = s.latest(trial).unwrap().expect("stored");
        prop_assert_eq!(epoch, snap.next_epoch);
        let loaded = TrainSnapshot::decode(&blob).expect("decodes from disk");
        prop_assert!(bits_equal(&loaded, &snap));
        s.clear(trial).unwrap();

        // Restoring into a differently-seeded model reproduces the tensors.
        let mut other = Mlp::new(dim, &hidden, classes, seed ^ 0xFFFF);
        prop_assert!(other.restore_params(&loaded.params));
        for (a, b) in Model::params(&other).iter().zip(&snap.params) {
            prop_assert_eq!(f32_bits(a), f32_bits(b));
        }
    }

    #[test]
    fn cnn_weights_and_adam_state_round_trip_exactly(
        (side, c1, c2, classes, seed, snap) in cnn_case(),
    ) {
        let decoded = TrainSnapshot::decode(&snap.encode()).expect("decodes");
        prop_assert!(bits_equal(&decoded, &snap));

        let mut other = Cnn::new((1, side, side), classes, c1, c2, seed.wrapping_add(1));
        prop_assert!(other.restore_params(&decoded.params));
        for (a, b) in other.params().iter().zip(&snap.params) {
            prop_assert_eq!(f32_bits(a), f32_bits(b));
        }

        // Shape mismatch must be rejected without touching the model.
        let mut wrong = Cnn::new((1, side, side), classes, c1 + 1, c2, seed);
        let before = wrong.params();
        prop_assert!(!wrong.restore_params(&decoded.params));
        for (a, b) in wrong.params().iter().zip(&before) {
            prop_assert_eq!(f32_bits(a), f32_bits(b));
        }
    }
}
