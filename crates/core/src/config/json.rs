//! A minimal JSON parser, sufficient for the paper's config files.
//!
//! The approved dependency set has no `serde_json`, and the paper's config
//! format (Listing 1) is a flat object of arrays of scalars:
//!
//! ```json
//! {
//!   "optimizer": ["Adam", "SGD", "RMSprop"],
//!   "num_epochs": [20, 50, 100],
//!   "batch_size": [32, 64, 128]
//! }
//! ```
//!
//! The parser nevertheless implements the full JSON grammar (nested
//! objects/arrays, escapes, exponents, `true`/`false`/`null`) so richer
//! space descriptions — e.g. `{"lr": {"log_uniform": [1e-5, 1e-1]}}` — work
//! too.

use std::collections::BTreeMap;
use std::fmt;

use crate::space::{ConfigValue, ParamDomain, SearchSpace};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as f64, like JavaScript).
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Json>),
    /// Object (order-insensitive).
    Object(BTreeMap<String, Json>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError { message: message.into(), offset: self.pos })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            self.err(format!("expected '{kw}'"))
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or(JsonError {
                                message: "truncated \\u escape".into(),
                                offset: self.pos,
                            })?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or(JsonError {
                                    message: "invalid hex in \\u escape".into(),
                                    offset: self.pos,
                                })?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // re-decode multi-byte UTF-8
                    let start = self.pos - 1;
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end]).map_err(|_| {
                        JsonError { message: "invalid UTF-8".into(), offset: start }
                    })?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Number(n)),
            Err(_) => self.err(format!("invalid number '{text}'")),
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after JSON value");
    }
    Ok(v)
}

fn scalar_to_value(j: &Json) -> Option<ConfigValue> {
    match j {
        Json::String(s) => Some(ConfigValue::Str(s.clone())),
        Json::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(ConfigValue::Int(*n as i64)),
        Json::Number(n) => Some(ConfigValue::Float(*n)),
        Json::Bool(b) => Some(ConfigValue::Str(b.to_string())),
        _ => None,
    }
}

/// Interpret a parsed JSON object as a [`SearchSpace`]:
///
/// * `"name": [v, v, …]` — a choice list (the paper's format);
/// * `"name": {"int_range": [min, max, step]}`;
/// * `"name": {"uniform": [min, max]}`;
/// * `"name": {"log_uniform": [min, max]}`.
pub fn space_from_json(text: &str) -> Result<SearchSpace, JsonError> {
    let root = parse(text)?;
    let Json::Object(map) = root else {
        return Err(JsonError { message: "top level must be an object".into(), offset: 0 });
    };
    let mut space = SearchSpace::new();
    for (name, value) in &map {
        let bad = |msg: &str| JsonError { message: format!("param '{name}': {msg}"), offset: 0 };
        let domain = match value {
            Json::Array(items) => {
                let vals: Option<Vec<ConfigValue>> = items.iter().map(scalar_to_value).collect();
                ParamDomain::Choice(vals.ok_or_else(|| bad("array items must be scalars"))?)
            }
            Json::Object(spec) => {
                let nums = |key: &str, n: usize| -> Result<Vec<f64>, JsonError> {
                    match spec.get(key) {
                        Some(Json::Array(a)) if a.len() == n => a
                            .iter()
                            .map(|j| match j {
                                Json::Number(x) => Ok(*x),
                                _ => Err(bad("range entries must be numbers")),
                            })
                            .collect(),
                        _ => Err(bad(&format!("'{key}' needs an array of {n} numbers"))),
                    }
                };
                if spec.contains_key("int_range") {
                    let v = nums("int_range", 3)?;
                    ParamDomain::IntRange { min: v[0] as i64, max: v[1] as i64, step: v[2] as i64 }
                } else if spec.contains_key("uniform") {
                    let v = nums("uniform", 2)?;
                    ParamDomain::Uniform { min: v[0], max: v[1] }
                } else if spec.contains_key("log_uniform") {
                    let v = nums("log_uniform", 2)?;
                    if v[0] <= 0.0 {
                        return Err(bad("log_uniform min must be > 0"));
                    }
                    ParamDomain::LogUniform { min: v[0], max: v[1] }
                } else {
                    return Err(bad("unknown domain object"));
                }
            }
            _ => return Err(bad("must be an array or a domain object")),
        };
        space = space.with(name, domain);
    }
    Ok(space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_listing_1() {
        let text = r#"{
            "optimizer": ["Adam", "SGD", "RMSprop"],
            "num_epochs": [20, 50, 100],
            "batch_size": [32, 64, 128]
        }"#;
        let space = space_from_json(text).unwrap();
        assert_eq!(space.len(), 3);
        assert_eq!(space.grid_size(), Some(27));
        // BTreeMap ordering: batch_size, num_epochs, optimizer
        let names: Vec<&str> = space.params().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["batch_size", "num_epochs", "optimizer"]);
    }

    #[test]
    fn parses_scalars_arrays_objects() {
        let j = parse(r#"{"a": 1, "b": [true, null, -2.5e2], "c": {"d": "x"}}"#).unwrap();
        let Json::Object(o) = j else { panic!() };
        assert_eq!(o["a"], Json::Number(1.0));
        assert_eq!(o["b"], Json::Array(vec![Json::Bool(true), Json::Null, Json::Number(-250.0)]));
        let Json::Object(c) = &o["c"] else { panic!() };
        assert_eq!(c["d"], Json::String("x".into()));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let j = parse(r#""a\n\t\"\\ A é""#).unwrap();
        assert_eq!(j, Json::String("a\n\t\"\\ A é".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", "\"unterminated"] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn domain_objects_parse() {
        let space = space_from_json(
            r#"{
                "hidden": {"int_range": [16, 64, 16]},
                "momentum": {"uniform": [0.0, 0.99]},
                "lr": {"log_uniform": [1e-5, 1e-1]}
            }"#,
        )
        .unwrap();
        assert_eq!(space.len(), 3);
        assert_eq!(space.grid_size(), None);
        let domains: Vec<&ParamDomain> = space.params().iter().map(|(_, d)| d).collect();
        assert!(matches!(domains[0], ParamDomain::IntRange { min: 16, max: 64, step: 16 }));
        assert!(matches!(domains[1], ParamDomain::LogUniform { .. }));
        assert!(matches!(domains[2], ParamDomain::Uniform { .. }));
    }

    #[test]
    fn log_uniform_requires_positive_min() {
        let e = space_from_json(r#"{"lr": {"log_uniform": [0.0, 1.0]}}"#).unwrap_err();
        assert!(e.message.contains("log_uniform"));
    }

    #[test]
    fn top_level_array_rejected_for_spaces() {
        assert!(space_from_json("[1,2,3]").is_err());
        assert!(space_from_json(r#"{"a": 5}"#).is_err(), "scalar domain is not allowed");
    }

    #[test]
    fn floats_and_ints_distinguished() {
        let space = space_from_json(r#"{"lr": [0.1, 0.01], "n": [1, 2]}"#).unwrap();
        let (_, lr) = &space.params()[0];
        let ParamDomain::Choice(vals) = lr else { panic!() };
        assert_eq!(vals[0], ConfigValue::Float(0.1));
        let (_, n) = &space.params()[1];
        let ParamDomain::Choice(vals) = n else { panic!() };
        assert_eq!(vals[0], ConfigValue::Int(1));
    }
}
