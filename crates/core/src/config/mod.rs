//! Application configuration: the JSON file the paper passes to the HPO
//! application at start ("A JSON file containing all the hyperparameters and
//! their values is passed to this application at start", §4).

pub mod json;
