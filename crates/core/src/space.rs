//! Search-space model.
//!
//! A search space is an ordered set of named parameter domains. The paper's
//! Listing 1 uses pure value lists; we additionally support integer ranges
//! and (log-)uniform continuous ranges so random search and TPE have
//! something real to sample ("HPO over any search space", paper §7).

use std::collections::BTreeMap;
use std::fmt;

/// One concrete hyperparameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// String/categorical value (e.g. `"Adam"`).
    Str(String),
    /// Integer value (e.g. epochs, batch size).
    Int(i64),
    /// Floating-point value (e.g. learning rate).
    Float(f64),
}

impl ConfigValue {
    /// As integer, coercing floats with integral value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ConfigValue::Int(i) => Some(*i),
            ConfigValue::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// As float (ints coerce).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ConfigValue::Float(f) => Some(*f),
            ConfigValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ConfigValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for ConfigValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigValue::Str(s) => write!(f, "{s}"),
            ConfigValue::Int(i) => write!(f, "{i}"),
            ConfigValue::Float(x) => write!(f, "{x}"),
        }
    }
}

/// A concrete assignment of every hyperparameter — the paper's `config`
/// object passed to each experiment task.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Config {
    values: BTreeMap<String, ConfigValue>,
}

impl Config {
    /// Empty config.
    pub fn new() -> Self {
        Config::default()
    }

    /// Set a value (chainable).
    pub fn with(mut self, key: &str, value: ConfigValue) -> Self {
        self.values.insert(key.to_string(), value);
        self
    }

    /// Insert a value.
    pub fn set(&mut self, key: &str, value: ConfigValue) {
        self.values.insert(key.to_string(), value);
    }

    /// Get a value.
    pub fn get(&self, key: &str) -> Option<&ConfigValue> {
        self.values.get(key)
    }

    /// Get an integer parameter.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(ConfigValue::as_int)
    }

    /// Get a float parameter.
    pub fn get_float(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(ConfigValue::as_float)
    }

    /// Get a string parameter.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(ConfigValue::as_str)
    }

    /// Iterate `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ConfigValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the config is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Stable one-line label, e.g. `batch_size=64,num_epochs=50,optimizer=Adam`.
    pub fn label(&self) -> String {
        self.values.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(",")
    }
}

/// The domain of one hyperparameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamDomain {
    /// Explicit value list (what the paper's JSON file holds).
    Choice(Vec<ConfigValue>),
    /// Inclusive integer range with step.
    IntRange {
        /// Low end, inclusive.
        min: i64,
        /// High end, inclusive.
        max: i64,
        /// Step between grid points.
        step: i64,
    },
    /// Uniform continuous range.
    Uniform {
        /// Low end.
        min: f64,
        /// High end.
        max: f64,
    },
    /// Log-uniform continuous range (learning rates).
    LogUniform {
        /// Low end (> 0).
        min: f64,
        /// High end.
        max: f64,
    },
}

impl ParamDomain {
    /// Shortcut: categorical list of strings.
    pub fn choice_strs(values: &[&str]) -> Self {
        ParamDomain::Choice(values.iter().map(|s| ConfigValue::Str(s.to_string())).collect())
    }

    /// Shortcut: categorical list of integers.
    pub fn choice_ints(values: &[i64]) -> Self {
        ParamDomain::Choice(values.iter().map(|&i| ConfigValue::Int(i)).collect())
    }

    /// Number of grid points, or `None` for continuous domains.
    pub fn grid_size(&self) -> Option<usize> {
        match self {
            ParamDomain::Choice(v) => Some(v.len()),
            ParamDomain::IntRange { min, max, step } => {
                if step <= &0 || max < min {
                    Some(0)
                } else {
                    Some(((max - min) / step + 1) as usize)
                }
            }
            _ => None,
        }
    }

    /// The `i`-th grid point of a discrete domain.
    pub fn grid_value(&self, i: usize) -> Option<ConfigValue> {
        match self {
            ParamDomain::Choice(v) => v.get(i).cloned(),
            ParamDomain::IntRange { min, step, .. } => {
                let n = self.grid_size()?;
                (i < n).then(|| ConfigValue::Int(min + step * i as i64))
            }
            _ => None,
        }
    }

    /// Whether a value belongs to the domain (used by property tests).
    pub fn contains(&self, v: &ConfigValue) -> bool {
        match self {
            ParamDomain::Choice(vals) => vals.contains(v),
            ParamDomain::IntRange { min, max, step } => {
                v.as_int().is_some_and(|i| i >= *min && i <= *max && (i - min) % step.max(&1) == 0)
            }
            ParamDomain::Uniform { min, max } => {
                v.as_float().is_some_and(|f| f >= *min && f <= *max)
            }
            ParamDomain::LogUniform { min, max } => {
                v.as_float().is_some_and(|f| f >= *min && f <= *max)
            }
        }
    }
}

/// An ordered collection of named parameter domains.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchSpace {
    params: Vec<(String, ParamDomain)>,
}

impl SearchSpace {
    /// Empty space.
    pub fn new() -> Self {
        SearchSpace::default()
    }

    /// Add a parameter (chainable).
    pub fn with(mut self, name: &str, domain: ParamDomain) -> Self {
        self.params.push((name.to_string(), domain));
        self
    }

    /// Parse from the paper's JSON config format (see [`crate::config::json`]).
    pub fn from_json(text: &str) -> Result<Self, crate::config::json::JsonError> {
        crate::config::json::space_from_json(text)
    }

    /// The paper's exact MNIST/CIFAR grid (Listing 1): 3 optimisers ×
    /// 3 epochs × 3 batch sizes = 27 experiments.
    pub fn paper_grid() -> Self {
        SearchSpace::new()
            .with("optimizer", ParamDomain::choice_strs(&["Adam", "SGD", "RMSprop"]))
            .with("num_epochs", ParamDomain::choice_ints(&[20, 50, 100]))
            .with("batch_size", ParamDomain::choice_ints(&[32, 64, 128]))
    }

    /// Parameters in declaration order.
    pub fn params(&self) -> &[(String, ParamDomain)] {
        &self.params
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total grid size (product of discrete domain sizes); `None` if any
    /// domain is continuous.
    pub fn grid_size(&self) -> Option<usize> {
        self.params
            .iter()
            .map(|(_, d)| d.grid_size())
            .try_fold(1usize, |acc, n| n.map(|n| acc.saturating_mul(n)))
    }

    /// Whether `config` assigns every parameter a value inside its domain.
    pub fn contains(&self, config: &Config) -> bool {
        self.params.len() == config.len()
            && self.params.iter().all(|(name, d)| config.get(name).is_some_and(|v| d.contains(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_value_coercions() {
        assert_eq!(ConfigValue::Int(5).as_int(), Some(5));
        assert_eq!(ConfigValue::Float(5.0).as_int(), Some(5));
        assert_eq!(ConfigValue::Float(5.5).as_int(), None);
        assert_eq!(ConfigValue::Int(5).as_float(), Some(5.0));
        assert_eq!(ConfigValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(ConfigValue::Str("x".into()).as_int(), None);
    }

    #[test]
    fn config_accessors_and_label() {
        let c = Config::new()
            .with("optimizer", ConfigValue::Str("Adam".into()))
            .with("num_epochs", ConfigValue::Int(50));
        assert_eq!(c.get_str("optimizer"), Some("Adam"));
        assert_eq!(c.get_int("num_epochs"), Some(50));
        assert_eq!(c.get_float("num_epochs"), Some(50.0));
        assert!(c.get("missing").is_none());
        assert_eq!(c.label(), "num_epochs=50,optimizer=Adam");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn int_range_grid() {
        let d = ParamDomain::IntRange { min: 10, max: 30, step: 10 };
        assert_eq!(d.grid_size(), Some(3));
        assert_eq!(d.grid_value(0), Some(ConfigValue::Int(10)));
        assert_eq!(d.grid_value(2), Some(ConfigValue::Int(30)));
        assert_eq!(d.grid_value(3), None);
        assert!(d.contains(&ConfigValue::Int(20)));
        assert!(!d.contains(&ConfigValue::Int(25)), "off-step");
        assert!(!d.contains(&ConfigValue::Int(40)));
    }

    #[test]
    fn degenerate_int_range() {
        assert_eq!(ParamDomain::IntRange { min: 5, max: 1, step: 1 }.grid_size(), Some(0));
        assert_eq!(ParamDomain::IntRange { min: 0, max: 10, step: 0 }.grid_size(), Some(0));
    }

    #[test]
    fn continuous_domains_have_no_grid() {
        let u = ParamDomain::Uniform { min: 0.0, max: 1.0 };
        assert_eq!(u.grid_size(), None);
        assert!(u.contains(&ConfigValue::Float(0.5)));
        assert!(!u.contains(&ConfigValue::Float(1.5)));
        let l = ParamDomain::LogUniform { min: 1e-5, max: 1e-1 };
        assert!(l.contains(&ConfigValue::Float(1e-3)));
        assert_eq!(l.grid_size(), None);
    }

    #[test]
    fn paper_grid_is_27() {
        let s = SearchSpace::paper_grid();
        assert_eq!(s.len(), 3);
        assert_eq!(s.grid_size(), Some(27));
    }

    #[test]
    fn space_contains_checks_all_params() {
        let s = SearchSpace::paper_grid();
        let good = Config::new()
            .with("optimizer", ConfigValue::Str("SGD".into()))
            .with("num_epochs", ConfigValue::Int(20))
            .with("batch_size", ConfigValue::Int(64));
        assert!(s.contains(&good));
        let bad_value = Config::new()
            .with("optimizer", ConfigValue::Str("AdaGrad".into()))
            .with("num_epochs", ConfigValue::Int(20))
            .with("batch_size", ConfigValue::Int(64));
        assert!(!s.contains(&bad_value));
        let missing = Config::new().with("optimizer", ConfigValue::Str("SGD".into()));
        assert!(!s.contains(&missing));
    }

    #[test]
    fn mixed_space_grid_size() {
        let s = SearchSpace::new()
            .with("a", ParamDomain::choice_ints(&[1, 2]))
            .with("lr", ParamDomain::LogUniform { min: 1e-4, max: 1e-1 });
        assert_eq!(s.grid_size(), None, "continuous ⇒ no grid");
        assert!(!s.is_empty());
    }
}
